//! The simulated monolithic Linux kernel.
//!
//! Contrast with `bas-minix`: IPC objects (message queues) are *globally
//! named* and guarded only by DAC mode bits at open time; delivered
//! messages carry no kernel identity; `kill` is a direct syscall gated by
//! uid comparison with a root bypass. Every attack in §IV-D.1 flows
//! through one of those three facts.
//!
//! Hot-path layout: queue names are interned at `mq_open` time, so a
//! descriptor carries a dense `u32` queue id and `mq_send`/`mq_receive`
//! never touch a `String`. Payload bytes are staged once into the kernel
//! [`MsgArena`] at the user→kernel boundary; queues and blocked-sender
//! PCBs move the 8-byte [`MsgRef`] handle, and the bytes are copied out
//! exactly once at delivery.

use std::collections::BTreeMap;

use bas_sim::arena::{MsgArena, MsgRef};
use bas_sim::caps::{CapChurnOp, CapLog, CapOp, CapTrace, ChurnKind};
use bas_sim::clock::{CostModel, VirtualClock};
use bas_sim::device::{DeviceBus, DeviceId};
use bas_sim::fault::{IpcFault, IpcFaultState};
use bas_sim::metrics::KernelMetrics;
use bas_sim::process::{Action, Pid, ProcState, ProgramFactory};
use bas_sim::sched::RunQueue;
use bas_sim::time::{SimDuration, SimTime};
use bas_sim::timer::TimerQueue;
use bas_sim::trace::TraceLog;

use crate::cred::{Mode, Uid};
use crate::error::LinuxError;
use crate::mq::{MessageQueue, MqMessage, MQ_MSG_MAX};
use crate::syscall::{MqAccess, Reply, Signal, Syscall};

/// A boxed Linux user process.
pub type LinuxProcess = Box<dyn bas_sim::process::Process<Syscall = Syscall, Reply = Reply>>;

/// `O_CREAT` attributes for `mq_open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MqCreate {
    /// Permission bits for the new queue.
    pub mode: u16,
    /// Maximum number of queued messages.
    pub capacity: usize,
}

/// Kernel construction parameters.
pub struct LinuxConfig {
    /// Maximum process count.
    pub max_procs: usize,
    /// Virtual-time cost model. The monolithic kernel performs mq
    /// operations in a single kernel entry with no extra context switches
    /// — the paper's performance contrast with the microkernels.
    pub cost_model: CostModel,
    /// `/dev` node ownership: device → (owner uid, mode).
    pub device_nodes: BTreeMap<DeviceId, (Uid, Mode)>,
    /// Trace capacity in events.
    pub trace_capacity: usize,
}

impl Default for LinuxConfig {
    fn default() -> Self {
        LinuxConfig {
            max_procs: 64,
            cost_model: CostModel::default(),
            device_nodes: BTreeMap::new(),
            trace_capacity: TraceLog::DEFAULT_CAPACITY,
        }
    }
}

/// An open descriptor: the interned queue id plus the access intents
/// granted at open time. `Copy`, so `mq_send`/`mq_receive` never clone a
/// queue name on the hot path.
#[derive(Debug, Clone, Copy)]
struct OpenQueue {
    qid: u32,
    access: MqAccess,
}

#[derive(Debug)]
enum Block {
    /// Blocked in `mq_send` on a full queue. The payload is already
    /// staged in the arena; the PCB parks only the handle.
    MqSendWait {
        qid: u32,
        msg: MsgRef,
        priority: u32,
        /// Capability-trace seq of the send's `Use` event, carried so the
        /// eventual enqueue (and delivery) keeps its provenance.
        use_seq: Option<u64>,
    },
    /// Blocked in `mq_receive` on an empty queue.
    MqRecvWait { qid: u32 },
}

struct ProcEntry {
    name: String,
    uid: Uid,
    fds: Vec<Option<OpenQueue>>,
    state: ProcState<Block>,
    logic: Option<LinuxProcess>,
    pending_reply: Option<Reply>,
}

/// The simulated Linux kernel.
pub struct LinuxKernel {
    procs: Vec<Option<ProcEntry>>,
    /// Queues addressed by interned id; `None` marks an unlinked slot
    /// (stale descriptors observe `ENOENT`, as before interning).
    queues: Vec<Option<MessageQueue>>,
    /// VFS name → interned queue id, consulted only at open/unlink.
    queue_ids: BTreeMap<String, u32>,
    /// Kernel message arena: payload bytes for queued and parked sends.
    arena: MsgArena,
    programs: Vec<(String, ProgramFactory<Syscall, Reply>)>,
    names: BTreeMap<String, Pid>,
    run_queue: RunQueue,
    timers: TimerQueue,
    clock: VirtualClock,
    metrics: KernelMetrics,
    trace: TraceLog,
    devices: DeviceBus,
    device_nodes: BTreeMap<DeviceId, (Uid, Mode)>,
    max_procs: usize,
    last_run: Option<Pid>,
    ipc_faults: IpcFaultState,
    /// Structured capability-event stream (disabled by default).
    cap_log: CapLog,
    /// Churn ops armed to fire after the Nth successful open check.
    armed_churn: Vec<(CapChurnOp, u32)>,
}

/// The mode triple that governs `uid`'s access to a node owned by
/// `owner`: the owner bits, the group bits, or — mirroring the loose
/// no-group check in [`Mode::allows_with_group`] — the union of the group
/// and other triples.
fn class_bits(uid: Uid, owner: Uid, group: Option<Uid>) -> u16 {
    if uid == owner {
        0o700
    } else if group == Some(uid) {
        0o070
    } else if group.is_some() {
        0o007
    } else {
        0o077
    }
}

/// Trace-only name lookup (runs inside lazy trace closures).
fn qname_of(queues: &[Option<MessageQueue>], qid: u32) -> &str {
    queues
        .get(qid as usize)
        .and_then(Option::as_ref)
        .map_or("?", |q| q.name.as_str())
}

impl std::fmt::Debug for LinuxKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinuxKernel")
            .field("now", &self.clock.now())
            .field("processes", &self.process_count())
            .field("queues", &self.queue_ids.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl LinuxKernel {
    /// Boots an empty kernel.
    pub fn new(config: LinuxConfig) -> Self {
        LinuxKernel {
            procs: Vec::new(),
            queues: Vec::new(),
            queue_ids: BTreeMap::new(),
            arena: MsgArena::with_capacity(config.max_procs),
            programs: Vec::new(),
            names: BTreeMap::new(),
            run_queue: RunQueue::new(),
            timers: TimerQueue::new(),
            clock: VirtualClock::new(config.cost_model),
            metrics: KernelMetrics::default(),
            trace: TraceLog::with_capacity(config.trace_capacity),
            devices: DeviceBus::new(),
            device_nodes: config.device_nodes,
            max_procs: config.max_procs,
            last_run: None,
            ipc_faults: IpcFaultState::default(),
            cap_log: CapLog::new(),
            armed_churn: Vec::new(),
        }
    }

    /// Returns the kernel to the state it had immediately after
    /// [`Self::new`] plus `register_program` calls — the snapshot-fork
    /// boot path. Registered programs, installed devices and the `/dev`
    /// node table survive (boot-template state); processes, queues, the
    /// VFS name table and every other mutable structure are emptied in
    /// place, reusing live allocations. The caller re-runs the same
    /// boot-time queue creation and spawns afterwards, which re-interns
    /// queue ids in creation order — byte-identical to a cold boot.
    pub fn reset_to_boot(&mut self) {
        self.procs.clear();
        self.queues.clear();
        self.queue_ids.clear();
        self.arena.reset_to_capacity(self.max_procs);
        self.names.clear();
        self.run_queue.clear();
        self.timers.clear();
        self.clock.reset();
        self.metrics = KernelMetrics::default();
        self.trace.clear();
        self.last_run = None;
        self.ipc_faults = IpcFaultState::default();
        self.cap_log = CapLog::new();
        self.armed_churn.clear();
    }

    // ----- construction ------------------------------------------------------

    /// Registers a program image for `Fork`; returns nothing (forks refer
    /// to programs by name).
    pub fn register_program(
        &mut self,
        name: impl Into<String>,
        factory: ProgramFactory<Syscall, Reply>,
    ) {
        self.programs.push((name.into(), factory));
    }

    /// Spawns a process directly (init path).
    ///
    /// # Errors
    ///
    /// Returns [`LinuxError::ProcessTableFull`] when at capacity.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        uid: u32,
        logic: LinuxProcess,
    ) -> Result<Pid, LinuxError> {
        if self.process_count() >= self.max_procs {
            return Err(LinuxError::ProcessTableFull);
        }
        let name = name.into();
        let slot = self
            .procs
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.procs.push(None);
                self.procs.len() - 1
            });
        let pid = Pid::new(slot as u32);
        self.procs[slot] = Some(ProcEntry {
            name: name.clone(),
            uid: Uid::new(uid),
            fds: Vec::new(),
            state: ProcState::Runnable,
            logic: Some(logic),
            pending_reply: None,
        });
        self.names.insert(name.clone(), pid);
        self.run_queue.enqueue(pid);
        self.metrics.processes_created += 1;
        let now = self.clock.now();
        self.trace
            .record_with(now, Some(pid), "proc.spawn", || format!("{name} uid={uid}"));
        Ok(pid)
    }

    /// Mutable access to the device bus, for installing plant devices.
    pub fn devices_mut(&mut self) -> &mut DeviceBus {
        &mut self.devices
    }

    // ----- fault injection ---------------------------------------------------

    /// Armed one-shot IPC faults, consumed by `mq_send` calls *after* the
    /// descriptor and DAC checks pass.
    pub fn ipc_faults_mut(&mut self) -> &mut IpcFaultState {
        &mut self.ipc_faults
    }

    /// Read access to the IPC fault queue (applied/pending counters).
    pub fn ipc_faults(&self) -> &IpcFaultState {
        &self.ipc_faults
    }

    // ----- capability churn ---------------------------------------------------

    /// Starts recording the structured capability-event stream.
    pub fn enable_cap_trace(&mut self) {
        self.cap_log.enable();
    }

    /// Snapshot of the capability-event stream recorded so far.
    pub fn cap_trace(&self) -> CapTrace {
        self.cap_log.trace()
    }

    /// Applies a chmod-style churn op: edits the permission triple through
    /// which the live process named `op.subject` reaches the queue named
    /// `op.object`. Revoke clears the triple, attenuate strips its write
    /// bits, grant sets read+write. Returns false when the subject or
    /// queue is unknown or the bits were already in the requested state.
    ///
    /// Open descriptors are deliberately left untouched — exactly Linux's
    /// semantics, and exactly the window the race detector hunts:
    /// `mq_send` trusts the open-time DAC check forever after.
    pub fn apply_cap_churn(&mut self, op: &CapChurnOp) -> bool {
        let Some(uid) = self
            .pid_of(&op.subject)
            .and_then(|p| self.entry_ref(p))
            .map(|e| e.uid)
        else {
            return false;
        };
        let Some(&qid) = self.queue_ids.get(&op.object) else {
            return false;
        };
        let Some(q) = self.queues.get_mut(qid as usize).and_then(Option::as_mut) else {
            return false;
        };
        let class = class_bits(uid, q.owner, q.group);
        let old = q.mode.bits();
        let new = match op.kind {
            ChurnKind::Grant => old | (class & 0o666),
            ChurnKind::Attenuate => old & !(class & 0o222),
            ChurnKind::Revoke => old & !class,
        };
        q.mode = Mode::new(new);
        let changed = new != old;
        let cap_op = match op.kind {
            ChurnKind::Grant => CapOp::Grant,
            ChurnKind::Attenuate => CapOp::Attenuate,
            ChurnKind::Revoke => CapOp::Revoke,
        };
        let now = self.clock.now();
        self.cap_log.record_with(now, cap_op, changed, || {
            (
                op.actor.clone(),
                format!("mq:{}:{}", op.object, op.subject),
                op.object.clone(),
            )
        });
        self.trace.record_with(now, None, "cap.churn", || {
            format!("{} mode {old:04o} -> {new:04o}", op.label())
        });
        changed
    }

    /// Arms a churn op to fire immediately after the `after_checks`-th
    /// subsequent *successful* DAC open check by `op.subject` on
    /// `op.object` — deterministically inside the check→use window.
    pub fn arm_cap_churn(&mut self, op: &CapChurnOp, after_checks: u32) {
        self.armed_churn.push((op.clone(), after_checks));
    }

    fn fire_armed_churn(&mut self, opener: &str, qname: &str) {
        let mut due = Vec::new();
        self.armed_churn.retain_mut(|(op, remaining)| {
            if op.subject != opener || op.object != qname {
                return true;
            }
            if *remaining == 0 {
                due.push(op.clone());
                false
            } else {
                *remaining -= 1;
                true
            }
        });
        for op in due {
            self.apply_cap_churn(&op);
        }
    }

    /// Kills the named process outright (a simulated crash — distinct
    /// from `kill(2)`, which is subject to DAC). Returns false if no live
    /// process bears the name. There is no supervisor: nothing restarts it.
    pub fn kill_named(&mut self, name: &str) -> bool {
        let Some(pid) = self.pid_of(name) else {
            return false;
        };
        let now = self.clock.now();
        self.trace
            .record_with(now, Some(pid), "fault.crash", || format!("killed {name}"));
        self.terminate(pid);
        true
    }

    /// Jumps the kernel clock forward by `d` without running anyone — a
    /// tick-skew fault.
    pub fn skew_clock(&mut self, d: SimDuration) {
        self.clock.advance(d);
        let now = self.clock.now();
        self.trace.record_with(now, None, "fault.clock", || {
            format!("skewed +{}ms", d.as_millis())
        });
    }

    /// Pre-creates a message queue owned by `owner` (scenario-loader
    /// path, mirroring the paper's "scenario process [...] creates 6
    /// message queues").
    pub fn create_queue(
        &mut self,
        name: impl Into<String>,
        owner: Uid,
        mode: Mode,
        capacity: usize,
    ) {
        let name = name.into();
        self.install_queue(MessageQueue::new(name, owner, mode, capacity));
    }

    /// Pre-creates a message queue whose mode's group triple applies to
    /// `group` — the "specifically configured to only allow the correct
    /// user account" setup the paper discusses.
    pub fn create_queue_grouped(
        &mut self,
        name: impl Into<String>,
        owner: Uid,
        group: Uid,
        mode: Mode,
        capacity: usize,
    ) {
        let name = name.into();
        self.install_queue(MessageQueue::new(name, owner, mode, capacity).with_group(group));
    }

    /// Interns (or replaces) a queue under its VFS name; returns the id.
    fn install_queue(&mut self, q: MessageQueue) -> u32 {
        if let Some(&qid) = self.queue_ids.get(&q.name) {
            // Same name re-created: release any payload the old queue
            // still holds before swapping the new one in.
            if let Some(old) = self.queues[qid as usize].take() {
                self.free_queue_slots(old);
            }
            self.queues[qid as usize] = Some(q);
            return qid;
        }
        let slot = self
            .queues
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.queues.push(None);
                self.queues.len() - 1
            });
        self.queue_ids.insert(q.name.clone(), slot as u32);
        self.queues[slot] = Some(q);
        slot as u32
    }

    /// Returns every queued payload slot of a detached queue to the arena.
    fn free_queue_slots(&mut self, mut q: MessageQueue) {
        while let Some(m) = q.pop() {
            self.arena.free(m.msg);
        }
    }

    fn queue_ref(&self, qid: u32) -> Option<&MessageQueue> {
        self.queues.get(qid as usize).and_then(Option::as_ref)
    }

    // ----- introspection -------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Kernel counters.
    pub fn metrics(&self) -> &KernelMetrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Disables tracing (throughput benchmarks).
    pub fn disable_trace(&mut self) {
        self.trace.disable();
    }

    /// True if the process is alive.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.entry_ref(pid).is_some()
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.iter().filter(|p| p.is_some()).count()
    }

    /// Looks up a live process by name.
    pub fn pid_of(&self, name: &str) -> Option<Pid> {
        self.names.get(name).copied().filter(|&p| self.is_alive(p))
    }

    /// Names of live processes, sorted.
    pub fn alive_process_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .procs
            .iter()
            .filter_map(|p| p.as_ref().map(|e| e.name.clone()))
            .collect();
        v.sort();
        v
    }

    /// Live queue names, for diagnostics.
    pub fn queue_names(&self) -> Vec<String> {
        self.queue_ids.keys().cloned().collect()
    }

    /// Depth of a queue, if it exists.
    pub fn queue_len(&self, name: &str) -> Option<usize> {
        self.queue_ids
            .get(name)
            .and_then(|&qid| self.queue_ref(qid))
            .map(MessageQueue::len)
    }

    // ----- execution -------------------------------------------------------------

    /// Runs until virtual time reaches `t`.
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            self.fire_due_timers();
            if self.clock.now() >= t {
                return;
            }
            if let Some(pid) = self.run_queue.dequeue() {
                self.dispatch(pid);
            } else {
                match self.timers.next_deadline() {
                    Some(d) if d <= t => self.clock.advance_to(d),
                    _ => {
                        self.clock.advance_to(t);
                        return;
                    }
                }
            }
        }
    }

    /// Runs until nothing is runnable and no timer is armed.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut steps = 0;
        loop {
            self.fire_due_timers();
            let Some(pid) = self.run_queue.dequeue() else {
                match self.timers.next_deadline() {
                    Some(d) => {
                        self.clock.advance_to(d);
                        continue;
                    }
                    None => return steps,
                }
            };
            self.dispatch(pid);
            steps += 1;
            assert!(steps < 5_000_000, "kernel failed to quiesce");
        }
    }

    fn fire_due_timers(&mut self) {
        for pid in self.timers.pop_due(self.clock.now()) {
            if let Some(entry) = self.entry_mut(pid) {
                if matches!(entry.state, ProcState::Sleeping) {
                    entry.state = ProcState::Runnable;
                    entry.pending_reply = Some(Reply::Ok);
                    self.run_queue.enqueue(pid);
                }
            }
        }
    }

    fn dispatch(&mut self, pid: Pid) {
        let Some(entry) = self.entry_mut(pid) else {
            return;
        };
        if !entry.state.is_runnable() {
            return;
        }
        let mut logic = entry.logic.take().expect("runnable process has logic");
        let reply = entry.pending_reply.take();

        if self.last_run != Some(pid) {
            self.clock.charge_context_switch();
            self.metrics.context_switches += 1;
            self.last_run = Some(pid);
        }
        self.clock.charge_user_compute();

        let action = logic.resume(reply);
        if let Some(entry) = self.entry_mut(pid) {
            entry.logic = Some(logic);
        }

        match action {
            Action::Syscall(sys) => {
                self.metrics.kernel_entries += 1;
                self.clock.charge_kernel_entry();
                self.clock.charge_syscall_dispatch();
                self.handle_syscall(pid, sys);
            }
            Action::Yield => self.run_queue.enqueue(pid),
            Action::Exit(code) => {
                let now = self.clock.now();
                self.trace
                    .record_with(now, Some(pid), "proc.exit", || format!("code={code}"));
                self.terminate(pid);
            }
        }
    }

    // ----- syscalls ---------------------------------------------------------------

    fn handle_syscall(&mut self, pid: Pid, sys: Syscall) {
        match sys {
            Syscall::MqOpen {
                name,
                access,
                create,
            } => self.do_mq_open(pid, name, access, create),
            Syscall::MqSend {
                qd,
                data,
                priority,
                nonblocking,
            } => self.do_mq_send(pid, qd, data, priority, nonblocking),
            Syscall::MqReceive { qd, nonblocking } => self.do_mq_receive(pid, qd, nonblocking),
            Syscall::MqUnlink { name } => self.do_mq_unlink(pid, name),
            Syscall::Kill {
                pid: target,
                signal,
            } => self.do_kill(pid, target, signal),
            Syscall::Fork { program } => self.do_fork(pid, program),
            Syscall::SetUid { uid } => {
                let caller_uid = self.entry_ref(pid).expect("caller").uid;
                let r = if caller_uid.is_root() {
                    self.entry_mut(pid).expect("caller").uid = Uid::new(uid);
                    Reply::Ok
                } else {
                    Reply::Err(LinuxError::NotPermitted)
                };
                self.ready_with(pid, r);
            }
            Syscall::PidOf { name } => {
                let r = match self.pid_of(&name) {
                    Some(p) => Reply::Pid(p),
                    None => Reply::Err(LinuxError::NoSuchProcess),
                };
                self.ready_with(pid, r);
            }
            Syscall::GetPid => self.ready_with(pid, Reply::Pid(pid)),
            Syscall::GetUid => {
                let uid = self.entry_ref(pid).expect("caller").uid.as_u32();
                self.ready_with(pid, Reply::Uid(uid));
            }
            Syscall::Sleep { duration } => {
                let deadline = self.clock.now() + duration;
                self.timers.arm(deadline, pid);
                if let Some(entry) = self.entry_mut(pid) {
                    entry.state = ProcState::Sleeping;
                }
            }
            Syscall::GetTime => {
                let now = self.clock.now();
                self.ready_with(pid, Reply::Time(now));
            }
            Syscall::DevRead { dev } => self.do_device(pid, dev, None),
            Syscall::DevWrite { dev, value } => self.do_device(pid, dev, Some(value)),
        }
    }

    fn do_mq_open(&mut self, pid: Pid, name: String, access: MqAccess, create: Option<MqCreate>) {
        let uid = self.entry_ref(pid).expect("caller").uid;
        let qid = match self.queue_ids.get(&name).copied() {
            None => match create {
                Some(attr) => {
                    let qid = self.install_queue(MessageQueue::new(
                        name.clone(),
                        uid,
                        Mode::new(attr.mode),
                        attr.capacity,
                    ));
                    let now = self.clock.now();
                    self.trace.record_with(now, Some(pid), "mq.create", || {
                        format!("{name} mode={:04o}", attr.mode)
                    });
                    if self.cap_log.enabled() {
                        let subject = self.entry_ref(pid).expect("caller").name.clone();
                        self.cap_log.record_with(now, CapOp::Grant, true, || {
                            (
                                subject.clone(),
                                format!("mq:{name}:{subject}"),
                                name.clone(),
                            )
                        });
                    }
                    qid
                }
                None => {
                    self.ready_with(pid, Reply::Err(LinuxError::NoEntry));
                    return;
                }
            },
            Some(qid) => {
                let q = self.queue_ref(qid).expect("interned name maps to queue");
                let allowed =
                    q.mode
                        .allows_with_group(uid, q.owner, q.group, access.read, access.write);
                if self.cap_log.enabled() || !self.armed_churn.is_empty() {
                    let subject = self.entry_ref(pid).expect("caller").name.clone();
                    let now = self.clock.now();
                    self.cap_log.record_with(now, CapOp::Check, allowed, || {
                        (
                            subject.clone(),
                            format!("mq:{name}:{subject}"),
                            name.clone(),
                        )
                    });
                    if allowed {
                        // The armed revoke lands *after* the DAC check and
                        // *before* the descriptor is handed out — the
                        // descriptor then outlives the permission.
                        self.fire_armed_churn(&subject, &name);
                    }
                }
                if !allowed {
                    self.metrics.access_denied += 1;
                    let now = self.clock.now();
                    self.trace.record_with(now, Some(pid), "dac.deny", || {
                        format!("{uid} denied {name}")
                    });
                    self.ready_with(pid, Reply::Err(LinuxError::AccessDenied));
                    return;
                }
                qid
            }
        };
        let entry = self.entry_mut(pid).expect("caller");
        let fd = entry
            .fds
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                entry.fds.push(None);
                entry.fds.len() - 1
            });
        entry.fds[fd] = Some(OpenQueue { qid, access });
        self.ready_with(pid, Reply::Qd(fd as u32));
    }

    fn open_queue(&self, pid: Pid, qd: u32) -> Result<OpenQueue, LinuxError> {
        self.entry_ref(pid)
            .and_then(|e| e.fds.get(qd as usize))
            .copied()
            .flatten()
            .ok_or(LinuxError::BadDescriptor)
    }

    fn do_mq_send(&mut self, pid: Pid, qd: u32, data: Vec<u8>, priority: u32, nonblocking: bool) {
        let oq = match self.open_queue(pid, qd) {
            Ok(o) => o,
            Err(e) => return self.ready_with(pid, Reply::Err(e)),
        };
        if !oq.access.write {
            return self.ready_with(pid, Reply::Err(LinuxError::BadDescriptor));
        }
        if data.len() > MQ_MSG_MAX {
            return self.ready_with(pid, Reply::Err(LinuxError::MessageTooLong));
        }
        if self.queue_ref(oq.qid).is_none() {
            return self.ready_with(pid, Reply::Err(LinuxError::NoEntry));
        }

        // Scheduled IPC fault (`bas-faults` campaigns). Consumed only
        // after the descriptor checks pass, so an injected fault disturbs
        // authorized traffic but cannot widen authority.
        let fault = self.ipc_faults.pop();
        match fault {
            Some(IpcFault::Drop) => {
                let now = self.clock.now();
                let queues = &self.queues;
                self.trace.record_with(now, Some(pid), "fault.ipc", || {
                    format!("drop {pid} -> {}", qname_of(queues, oq.qid))
                });
                // mq_send reports success; the message never lands.
                return self.ready_with(pid, Reply::Ok);
            }
            Some(IpcFault::Delay(d)) => {
                // The message sits in transit: the kernel pays the
                // latency, then enqueues normally.
                self.clock.advance(d);
                let now = self.clock.now();
                let queues = &self.queues;
                self.trace.record_with(now, Some(pid), "fault.ipc", || {
                    format!(
                        "delay {pid} -> {} +{}ms",
                        qname_of(queues, oq.qid),
                        d.as_millis()
                    )
                });
            }
            Some(IpcFault::Duplicate) | None => {}
        }

        // The send-side capability use. `still_ok` is an observer-only
        // recheck of the *current* mode bits: the kernel itself (like
        // Linux) consults only the stored descriptor, so a send through a
        // revoked-but-open descriptor proceeds — and is recorded with
        // ok=false, the stale-authority evidence the detector consumes.
        let use_seq = if self.cap_log.enabled() {
            let q = self.queue_ref(oq.qid).expect("checked above");
            let e = self.entry_ref(pid).expect("caller");
            let still_ok = q
                .mode
                .allows_with_group(e.uid, q.owner, q.group, false, true);
            let sender = e.name.clone();
            let qname = q.name.clone();
            let now = self.clock.now();
            self.cap_log.record_with(now, CapOp::Use, still_ok, || {
                (sender.clone(), format!("mq:{qname}:{sender}"), qname)
            })
        } else {
            None
        };

        // Stage the payload into the arena once (the user→kernel copy);
        // from here on only the handle moves.
        let msg = self.arena.alloc(&data);
        let q = self.queues[oq.qid as usize]
            .as_mut()
            .expect("checked above");
        if q.is_full() {
            if nonblocking {
                self.arena.free(msg);
                return self.ready_with(pid, Reply::Err(LinuxError::WouldBlock));
            }
            self.metrics.ipc_waits += 1;
            if let Some(entry) = self.entry_mut(pid) {
                entry.state = ProcState::Blocked(Block::MqSendWait {
                    qid: oq.qid,
                    msg,
                    priority,
                    use_seq,
                });
            }
            return;
        }
        // A duplicated send is a second reference to the same slot, not a
        // second copy of the bytes.
        let duplicate = matches!(fault, Some(IpcFault::Duplicate)).then(|| self.arena.dup(msg));
        q.push(MqMessage::new(priority, msg).with_use_seq(use_seq));
        self.note_ipc(oq.qid, pid);
        if let Some(dup) = duplicate {
            // The queue absorbs a duplicate only while it has room; a
            // full buffer loses the transport's re-presented copy.
            let q = self.queues[oq.qid as usize]
                .as_mut()
                .expect("checked above");
            if q.is_full() {
                self.arena.free(dup);
            } else {
                q.push(MqMessage::new(priority, dup).with_use_seq(use_seq));
                let now = self.clock.now();
                let queues = &self.queues;
                self.trace.record_with(now, Some(pid), "fault.ipc", || {
                    format!("duplicate {pid} -> {}", qname_of(queues, oq.qid))
                });
                self.note_ipc(oq.qid, pid);
            }
        }
        self.ready_with(pid, Reply::Ok);
        self.pump_queue(oq.qid);
    }

    fn do_mq_receive(&mut self, pid: Pid, qd: u32, nonblocking: bool) {
        let oq = match self.open_queue(pid, qd) {
            Ok(o) => o,
            Err(e) => return self.ready_with(pid, Reply::Err(e)),
        };
        if !oq.access.read {
            return self.ready_with(pid, Reply::Err(LinuxError::BadDescriptor));
        }
        let Some(q) = self
            .queues
            .get_mut(oq.qid as usize)
            .and_then(Option::as_mut)
        else {
            return self.ready_with(pid, Reply::Err(LinuxError::NoEntry));
        };
        match q.pop() {
            Some(m) => {
                // The kernel→user copy: bytes leave the arena exactly
                // once, and the slot recycles immediately.
                let data = self.arena.get(m.msg).to_vec();
                self.arena.free(m.msg);
                self.note_cap_recv(oq.qid, pid, m.use_seq);
                self.ready_with(
                    pid,
                    Reply::Data {
                        data,
                        priority: m.priority,
                    },
                );
                self.pump_queue(oq.qid);
            }
            None if nonblocking => self.ready_with(pid, Reply::Err(LinuxError::WouldBlock)),
            None => {
                if let Some(entry) = self.entry_mut(pid) {
                    entry.state = ProcState::Blocked(Block::MqRecvWait { qid: oq.qid });
                }
            }
        }
    }

    fn do_mq_unlink(&mut self, pid: Pid, name: String) {
        let uid = self.entry_ref(pid).expect("caller").uid;
        match self.queue_ids.get(&name).copied() {
            None => self.ready_with(pid, Reply::Err(LinuxError::NoEntry)),
            Some(qid) => {
                let owner = self
                    .queue_ref(qid)
                    .expect("interned name maps to queue")
                    .owner;
                if uid.is_root() || uid == owner {
                    self.queue_ids.remove(&name);
                    if let Some(q) = self.queues[qid as usize].take() {
                        self.free_queue_slots(q);
                    }
                    // Processes blocked on the queue get ENOENT; parked
                    // send payloads return to the arena.
                    for p in self.blocked_on_queue(qid) {
                        let parked = self
                            .entry_mut(p)
                            .map(|e| std::mem::replace(&mut e.state, ProcState::Runnable));
                        if let Some(ProcState::Blocked(Block::MqSendWait { msg, .. })) = parked {
                            self.arena.free(msg);
                        }
                        self.ready_with(p, Reply::Err(LinuxError::NoEntry));
                    }
                    self.ready_with(pid, Reply::Ok);
                } else {
                    self.ready_with(pid, Reply::Err(LinuxError::AccessDenied));
                }
            }
        }
    }

    fn do_kill(&mut self, caller: Pid, target: Pid, signal: Signal) {
        let caller_uid = self.entry_ref(caller).expect("caller").uid;
        let Some((target_uid, target_name)) =
            self.entry_ref(target).map(|e| (e.uid, e.name.clone()))
        else {
            return self.ready_with(caller, Reply::Err(LinuxError::NoSuchProcess));
        };
        // The entire permission model: same uid or root.
        if !caller_uid.is_root() && caller_uid != target_uid {
            self.metrics.access_denied += 1;
            let now = self.clock.now();
            self.trace
                .record_with(now, Some(caller), "signal.deny", || {
                    format!("{caller_uid} may not signal {target_uid}")
                });
            return self.ready_with(caller, Reply::Err(LinuxError::NotPermitted));
        }
        let now = self.clock.now();
        self.trace
            .record_with(now, Some(caller), "signal.kill", || {
                format!("{caller} sent {signal:?} to {target} ({target_name})")
            });
        self.terminate(target);
        if target != caller {
            self.ready_with(caller, Reply::Ok);
        }
    }

    fn do_fork(&mut self, caller: Pid, program: String) {
        let uid = self.entry_ref(caller).expect("caller").uid;
        let Some((name, factory)) = self.programs.iter().find(|(n, _)| *n == program) else {
            return self.ready_with(caller, Reply::Err(LinuxError::NoSuchProgram));
        };
        let child_logic = factory();
        let child_name = format!("{name}#{}", self.metrics.processes_created + 1);
        match self.spawn(child_name, uid.as_u32(), child_logic) {
            Ok(child) => self.ready_with(caller, Reply::Pid(child)),
            Err(e) => self.ready_with(caller, Reply::Err(e)),
        }
    }

    fn do_device(&mut self, pid: Pid, dev: DeviceId, write: Option<i64>) {
        let uid = self.entry_ref(pid).expect("caller").uid;
        let Some(&(owner, mode)) = self.device_nodes.get(&dev) else {
            return self.ready_with(pid, Reply::Err(LinuxError::NoEntry));
        };
        let (want_read, want_write) = (write.is_none(), write.is_some());
        if !mode.allows(uid, owner, want_read, want_write) {
            self.metrics.access_denied += 1;
            let now = self.clock.now();
            self.trace
                .record_with(now, Some(pid), "dac.deny", || format!("{uid} denied {dev}"));
            return self.ready_with(pid, Reply::Err(LinuxError::AccessDenied));
        }
        match write {
            Some(value) => match self.devices.write(dev, value) {
                Ok(()) => {
                    let now = self.clock.now();
                    self.trace
                        .record_with(now, Some(pid), "dev.write", || format!("{dev} <- {value}"));
                    self.ready_with(pid, Reply::Ok);
                }
                Err(_) => self.ready_with(pid, Reply::Err(LinuxError::NoEntry)),
            },
            None => match self.devices.read(dev) {
                Ok(v) => self.ready_with(pid, Reply::DevValue(v)),
                Err(_) => self.ready_with(pid, Reply::Err(LinuxError::NoEntry)),
            },
        }
    }

    // ----- queue wake-ups -----------------------------------------------------------

    fn blocked_on_queue(&self, qid: u32) -> Vec<Pid> {
        self.procs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let e = p.as_ref()?;
                let hit = match &e.state {
                    ProcState::Blocked(Block::MqSendWait { qid: q, .. })
                    | ProcState::Blocked(Block::MqRecvWait { qid: q }) => *q == qid,
                    _ => false,
                };
                hit.then(|| Pid::new(i as u32))
            })
            .collect()
    }

    /// Drains wake-up opportunities on a queue until no progress: deliver
    /// to waiting receivers while messages exist; admit waiting senders
    /// while space exists.
    fn pump_queue(&mut self, qid: u32) {
        loop {
            let mut progressed = false;

            // Wake one receiver if a message is available.
            if self.queue_ref(qid).is_some_and(|q| !q.is_empty()) {
                let receiver = self.procs.iter().enumerate().find_map(|(i, p)| {
                    let e = p.as_ref()?;
                    matches!(
                        &e.state,
                        ProcState::Blocked(Block::MqRecvWait { qid: q }) if *q == qid
                    )
                    .then(|| Pid::new(i as u32))
                });
                if let Some(r) = receiver {
                    let m = self.queues[qid as usize]
                        .as_mut()
                        .expect("exists")
                        .pop()
                        .expect("nonempty");
                    let data = self.arena.get(m.msg).to_vec();
                    self.arena.free(m.msg);
                    self.note_cap_recv(qid, r, m.use_seq);
                    self.ready_with(
                        r,
                        Reply::Data {
                            data,
                            priority: m.priority,
                        },
                    );
                    progressed = true;
                }
            }

            // Admit one sender if space is available. The parked handle
            // moves PCB→queue without touching the payload bytes.
            if self.queue_ref(qid).is_some_and(|q| !q.is_full()) {
                let sender = self.procs.iter().enumerate().find_map(|(i, p)| {
                    let e = p.as_ref()?;
                    matches!(
                        &e.state,
                        ProcState::Blocked(Block::MqSendWait { qid: q, .. }) if *q == qid
                    )
                    .then(|| Pid::new(i as u32))
                });
                if let Some(s) = sender {
                    let (msg, priority, use_seq) = {
                        let entry = self.entry_mut(s).expect("sender alive");
                        match std::mem::replace(&mut entry.state, ProcState::Runnable) {
                            ProcState::Blocked(Block::MqSendWait {
                                msg,
                                priority,
                                use_seq,
                                ..
                            }) => (msg, priority, use_seq),
                            _ => unreachable!("sender was send-waiting"),
                        }
                    };
                    self.queues[qid as usize]
                        .as_mut()
                        .expect("exists")
                        .push(MqMessage::new(priority, msg).with_use_seq(use_seq));
                    self.note_ipc(qid, s);
                    self.ready_with(s, Reply::Ok);
                    progressed = true;
                }
            }

            if !progressed {
                return;
            }
        }
    }

    /// Records the receiver-side `Recv` event and the happens-before edge
    /// from the message's send-side `Use`, if capability tracing is on.
    fn note_cap_recv(&mut self, qid: u32, receiver: Pid, use_seq: Option<u64>) {
        if !self.cap_log.enabled() {
            return;
        }
        let qname = qname_of(&self.queues, qid).to_string();
        let Some(who) = self.entry_ref(receiver).map(|e| e.name.clone()) else {
            return;
        };
        let now = self.clock.now();
        let recv_seq = self.cap_log.record_with(now, CapOp::Recv, true, || {
            (who.clone(), format!("mq:{qname}:{who}"), qname)
        });
        self.cap_log.edge(use_seq, recv_seq);
    }

    fn note_ipc(&mut self, qid: u32, sender: Pid) {
        self.metrics.ipc_messages += 1;
        self.clock.charge_ipc_copy(64);
        self.metrics.ipc_bytes += 64;
        self.metrics.hot_path_allocs = self.arena.heap_events();
        let now = self.clock.now();
        let queues = &self.queues;
        self.trace.record_with(now, Some(sender), "mq.send", || {
            format!("{sender} -> {}", qname_of(queues, qid))
        });
    }

    // ----- termination ----------------------------------------------------------------

    fn terminate(&mut self, pid: Pid) {
        let Some(entry) = self.procs.get_mut(pid.as_usize()).and_then(Option::take) else {
            return;
        };
        // A send parked on a full queue still owns its arena slot.
        if let ProcState::Blocked(Block::MqSendWait { msg, .. }) = &entry.state {
            self.arena.free(*msg);
        }
        self.run_queue.remove(pid);
        self.timers.cancel(pid);
        self.names.retain(|_, p| *p != pid);
        self.metrics.processes_reaped += 1;
        if self.last_run == Some(pid) {
            self.last_run = None;
        }
        drop(entry);
    }

    fn ready_with(&mut self, pid: Pid, reply: Reply) {
        if let Some(entry) = self.entry_mut(pid) {
            entry.pending_reply = Some(reply);
            entry.state = ProcState::Runnable;
            self.run_queue.enqueue(pid);
        }
    }

    fn entry_ref(&self, pid: Pid) -> Option<&ProcEntry> {
        self.procs.get(pid.as_usize()).and_then(Option::as_ref)
    }

    fn entry_mut(&mut self, pid: Pid) -> Option<&mut ProcEntry> {
        self.procs.get_mut(pid.as_usize()).and_then(Option::as_mut)
    }
}
