//! Capability churn and the CapEvent stream on the Linux model: chmod
//! edits to queue modes, armed churn firing between the DAC open check
//! and the descriptor handout, and the stale-descriptor TOCTOU that
//! open-time-only enforcement produces.

use bas_linux::cred::{Mode, Uid};
use bas_linux::error::LinuxError;
use bas_linux::kernel::{LinuxConfig, LinuxKernel};
use bas_linux::syscall::{MqAccess, Reply, Syscall};
use bas_sim::caps::{CapChurnOp, CapOp, ChurnKind};
use bas_sim::script::{replies, Script};

type S = Script<Syscall, Reply>;

fn open(name: &str, access: MqAccess) -> Syscall {
    Syscall::MqOpen {
        name: name.into(),
        access,
        create: None,
    }
}

fn send(qd: u32, data: &[u8]) -> Syscall {
    Syscall::MqSend {
        qd,
        data: data.to_vec(),
        priority: 0,
        nonblocking: false,
    }
}

fn recv(qd: u32) -> Syscall {
    Syscall::MqReceive {
        qd,
        nonblocking: false,
    }
}

fn revoke(subject: &str, queue: &str) -> CapChurnOp {
    CapChurnOp::new(ChurnKind::Revoke, subject, queue)
}

#[test]
fn applied_revoke_denies_subsequent_open() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o622), 8);
    k.enable_cap_trace();
    let (tx, tx_log) = S::new(vec![open("/q", MqAccess::WRITE)]).logged();
    k.spawn("tx", 2000, Box::new(tx)).unwrap();

    // Revoke before the open ever runs: a clean denial, no race.
    assert!(k.apply_cap_churn(&revoke("tx", "/q")));
    k.run_to_quiescence();
    assert_eq!(replies(&tx_log), vec![Reply::Err(LinuxError::AccessDenied)]);

    let trace = k.cap_trace();
    let ops: Vec<(CapOp, bool)> = trace.events.iter().map(|e| (e.op, e.ok)).collect();
    assert_eq!(ops, vec![(CapOp::Revoke, true), (CapOp::Check, false)]);
    assert_eq!(trace.events[0].cap, "mq:/q:tx");
}

#[test]
fn armed_revoke_leaves_a_permanently_stale_descriptor() {
    // The Linux-specific shape of the TOCTOU: the DAC check happens once,
    // at open; a chmod landing right after it leaves the descriptor
    // usable forever. Every later send is a stale use.
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o622), 8);
    let (rx, rx_log) = S::new(vec![open("/q", MqAccess::READ), recv(0)]).logged();
    k.spawn("rx", 1000, Box::new(rx)).unwrap();
    k.run_to_quiescence(); // receiver parks in mq_receive
    k.enable_cap_trace();

    let (tx, tx_log) = S::new(vec![
        open("/q", MqAccess::WRITE),
        send(0, &[7]),
        send(0, &[8]),
    ])
    .logged();
    k.spawn("tx", 2000, Box::new(tx)).unwrap();
    k.arm_cap_churn(&revoke("tx", "/q"), 0);
    k.run_to_quiescence();

    // Both sends succeed on the revoked-but-open descriptor.
    assert_eq!(replies(&tx_log), vec![Reply::Qd(0), Reply::Ok, Reply::Ok]);
    assert_eq!(
        replies(&rx_log)[1],
        Reply::Data {
            data: vec![7],
            priority: 0
        }
    );

    let trace = k.cap_trace();
    let ops: Vec<(CapOp, bool)> = trace.events.iter().map(|e| (e.op, e.ok)).collect();
    assert_eq!(
        ops,
        vec![
            (CapOp::Check, true),
            (CapOp::Revoke, true),
            (CapOp::Use, false),
            (CapOp::Recv, true),
            (CapOp::Use, false),
        ]
    );
    // The delivered message's edge connects the stale use to the
    // receiver's observation.
    assert_eq!(
        trace.edges,
        vec![(trace.events[2].seq, trace.events[3].seq)]
    );
    assert_eq!(trace.events[2].subject, "tx");
    assert_eq!(trace.events[3].subject, "rx");
    // The revoke only touched tx's class: the owner still reads.
    assert_eq!(trace.events[1].cap, "mq:/q:tx");
}

#[test]
fn armed_churn_counts_down_matching_checks_only() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o666), 8);
    k.enable_cap_trace();
    // after_checks = 1: the first successful open passes untouched, the
    // second open's caller gets the revoke right after its check.
    k.arm_cap_churn(&revoke("tx", "/q"), 1);
    let (tx, tx_log) = S::new(vec![
        open("/q", MqAccess::WRITE),
        open("/q", MqAccess::WRITE),
        send(0, &[1]),
    ])
    .logged();
    k.spawn("tx", 2000, Box::new(tx)).unwrap();
    k.run_to_quiescence();

    // Both opens succeed (the revoke fires after the second check); the
    // send through the first descriptor is already a stale use.
    assert_eq!(
        replies(&tx_log),
        vec![Reply::Qd(0), Reply::Qd(1), Reply::Ok]
    );
    let trace = k.cap_trace();
    let checks: Vec<bool> = trace
        .events
        .iter()
        .filter(|e| e.op == CapOp::Check)
        .map(|e| e.ok)
        .collect();
    assert_eq!(checks, vec![true, true]);
    let uses: Vec<bool> = trace
        .events
        .iter()
        .filter(|e| e.op == CapOp::Use)
        .map(|e| e.ok)
        .collect();
    assert_eq!(uses, vec![false]);
}

#[test]
fn attenuate_strips_write_but_keeps_read() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o666), 8);
    let (tx, tx_log) = S::new(vec![
        open("/q", MqAccess::WRITE),
        open("/q", MqAccess::READ),
    ])
    .logged();
    k.spawn("tx", 2000, Box::new(tx)).unwrap();

    let op = CapChurnOp::new(ChurnKind::Attenuate, "tx", "/q");
    assert!(k.apply_cap_churn(&op));
    // Second application is a no-op (write bits already gone).
    assert!(!k.apply_cap_churn(&op));
    k.run_to_quiescence();
    assert_eq!(
        replies(&tx_log),
        vec![Reply::Err(LinuxError::AccessDenied), Reply::Qd(0)]
    );
}

#[test]
fn grant_widens_the_subjects_class() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o600), 8);
    let (tx, tx_log) = S::new(vec![open("/q", MqAccess::WRITE)]).logged();
    k.spawn("tx", 2000, Box::new(tx)).unwrap();

    assert!(k.apply_cap_churn(&CapChurnOp::new(ChurnKind::Grant, "tx", "/q")));
    k.run_to_quiescence();
    assert_eq!(replies(&tx_log), vec![Reply::Qd(0)]);

    // Unknown subjects and queues are rejected, not invented.
    assert!(!k.apply_cap_churn(&revoke("nobody", "/q")));
    assert!(!k.apply_cap_churn(&revoke("tx", "/nope")));
}

#[test]
fn parked_sends_keep_their_capability_provenance() {
    // A send parked on a full queue records its Use at syscall time; the
    // seq travels through the PCB and the queue so delivery still gets
    // its happens-before edge.
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o666), 1);
    k.enable_cap_trace();
    let (tx, tx_log) = S::new(vec![
        open("/q", MqAccess::WRITE),
        send(0, &[1]),
        send(0, &[2]),
    ])
    .logged();
    k.spawn("tx", 1000, Box::new(tx)).unwrap();
    k.run_to_quiescence(); // second send parks on the full queue

    let (rx, _rx_log) = S::new(vec![open("/q", MqAccess::READ), recv(0), recv(0)]).logged();
    k.spawn("rx", 1000, Box::new(rx)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&tx_log), vec![Reply::Qd(0), Reply::Ok, Reply::Ok]);

    let trace = k.cap_trace();
    let uses: Vec<u64> = trace
        .events
        .iter()
        .filter(|e| e.op == CapOp::Use)
        .map(|e| e.seq)
        .collect();
    let recvs: Vec<u64> = trace
        .events
        .iter()
        .filter(|e| e.op == CapOp::Recv)
        .map(|e| e.seq)
        .collect();
    assert_eq!(uses.len(), 2);
    assert_eq!(trace.edges, vec![(uses[0], recvs[0]), (uses[1], recvs[1])]);
}
