//! Integration tests for the Linux model: mq semantics, DAC enforcement,
//! the absence of sender identity (the spoofing enabler), signals with
//! root bypass, forks, and device nodes.

use bas_linux::cred::{Mode, Uid};
use bas_linux::error::LinuxError;
use bas_linux::kernel::{LinuxConfig, LinuxKernel, MqCreate};
use bas_linux::syscall::{MqAccess, Reply, Signal, Syscall};
use bas_sim::device::DeviceId;
use bas_sim::script::{replies, Script};
use bas_sim::time::SimDuration;

type S = Script<Syscall, Reply>;

fn open(name: &str, access: MqAccess) -> Syscall {
    Syscall::MqOpen {
        name: name.into(),
        access,
        create: None,
    }
}

fn open_creat(name: &str, access: MqAccess, mode: u16) -> Syscall {
    Syscall::MqOpen {
        name: name.into(),
        access,
        create: Some(MqCreate { mode, capacity: 8 }),
    }
}

fn send(qd: u32, data: &[u8]) -> Syscall {
    Syscall::MqSend {
        qd,
        data: data.to_vec(),
        priority: 0,
        nonblocking: false,
    }
}

fn recv(qd: u32) -> Syscall {
    Syscall::MqReceive {
        qd,
        nonblocking: false,
    }
}

#[test]
fn mq_send_receive_roundtrip() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o666), 8);
    let (rx, rx_log) = S::new(vec![open("/q", MqAccess::READ), recv(0)]).logged();
    k.spawn("rx", 1000, Box::new(rx)).unwrap();
    let (tx, tx_log) = S::new(vec![open("/q", MqAccess::WRITE), send(0, &[7, 8])]).logged();
    k.spawn("tx", 1000, Box::new(tx)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&tx_log), vec![Reply::Qd(0), Reply::Ok]);
    let got = replies(&rx_log);
    assert_eq!(
        got[1],
        Reply::Data {
            data: vec![7, 8],
            priority: 0
        }
    );
}

#[test]
fn messages_carry_no_sender_identity() {
    // Two different processes send identical bytes; the receiver cannot
    // distinguish them — this is the paper's spoofing enabler.
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o666), 8);
    let (rx, rx_log) = S::new(vec![open("/q", MqAccess::READ), recv(0), recv(0)]).logged();
    k.spawn("rx", 1000, Box::new(rx)).unwrap();
    k.spawn(
        "legit",
        1000,
        Box::new(S::new(vec![
            open("/q", MqAccess::WRITE),
            send(0, b"reading:21"),
        ])),
    )
    .unwrap();
    k.spawn(
        "attacker",
        2000, // different uid entirely
        Box::new(S::new(vec![
            open("/q", MqAccess::WRITE),
            send(0, b"reading:21"),
        ])),
    )
    .unwrap();
    k.run_to_quiescence();
    let got = replies(&rx_log);
    let m1 = got[1].clone();
    let m2 = got[2].clone();
    assert_eq!(
        m1, m2,
        "payloads indistinguishable: no kernel-stamped identity"
    );
}

#[test]
fn dac_mode_denies_other_uid_without_permission() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/private", Uid::new(1000), Mode::new(0o600), 8);
    let (intruder, log) = S::new(vec![open("/private", MqAccess::WRITE)]).logged();
    k.spawn("intruder", 2000, Box::new(intruder)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&log), vec![Reply::Err(LinuxError::AccessDenied)]);
    assert_eq!(k.metrics().access_denied, 1);
    assert_eq!(k.trace().events_in("dac.deny").count(), 1);
}

#[test]
fn dac_allows_same_uid_processes_through() {
    // The paper: "Since all five processes are running under the same user
    // account, the file access control mechanism allows the web interface
    // process to read and write all message queues."
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/private", Uid::new(1000), Mode::new(0o600), 8);
    let (same_uid, log) = S::new(vec![open("/private", MqAccess::RW)]).logged();
    k.spawn("same-uid", 1000, Box::new(same_uid)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&log), vec![Reply::Qd(0)]);
}

#[test]
fn root_bypasses_queue_dac() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/private", Uid::new(1000), Mode::new(0o600), 8);
    let (root, log) = S::new(vec![open("/private", MqAccess::RW)]).logged();
    k.spawn("root", 0, Box::new(root)).unwrap();
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Qd(0)],
        "root ignores the 0600 mode"
    );
}

#[test]
fn open_missing_queue_without_create_fails() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    let (p, log) = S::new(vec![open("/nope", MqAccess::READ)]).logged();
    k.spawn("p", 1000, Box::new(p)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&log), vec![Reply::Err(LinuxError::NoEntry)]);
}

#[test]
fn create_then_reopen_by_other_process() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    let (creator, c_log) = S::new(vec![open_creat("/new", MqAccess::WRITE, 0o622)]).logged();
    k.spawn("creator", 1000, Box::new(creator)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&c_log), vec![Reply::Qd(0)]);
    let (other, o_log) = S::new(vec![open("/new", MqAccess::WRITE)]).logged();
    k.spawn("other", 2000, Box::new(other)).unwrap();
    k.run_to_quiescence();
    assert_eq!(
        replies(&o_log),
        vec![Reply::Qd(0)],
        "0o622 grants others write"
    );
}

#[test]
fn full_queue_blocks_sender_until_receiver_drains() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/small", Uid::new(1000), Mode::new(0o666), 1);
    let (tx, tx_log) = S::new(vec![
        open("/small", MqAccess::WRITE),
        send(0, &[1]),
        send(0, &[2]), // queue full: blocks
    ])
    .logged();
    k.spawn("tx", 1000, Box::new(tx)).unwrap();
    k.run_to_quiescence();
    // Sender is now blocked; only the first send completed.
    assert_eq!(replies(&tx_log), vec![Reply::Qd(0), Reply::Ok]);
    assert_eq!(k.queue_len("/small"), Some(1));

    let (rx, rx_log) = S::new(vec![open("/small", MqAccess::READ), recv(0), recv(0)]).logged();
    k.spawn("rx", 1000, Box::new(rx)).unwrap();
    k.run_to_quiescence();
    // Receiver drained both; sender unblocked and finished.
    assert_eq!(replies(&tx_log), vec![Reply::Qd(0), Reply::Ok, Reply::Ok]);
    let got = replies(&rx_log);
    assert_eq!(got[1].data(), Some(&[1u8][..]));
    assert_eq!(got[2].data(), Some(&[2u8][..]));
    // Exactly one send hit the full queue: one ipc_wait of backpressure.
    assert_eq!(k.metrics().ipc_waits, 1);
}

#[test]
fn nonblocking_ops_return_eagain() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/small", Uid::new(1000), Mode::new(0o666), 1);
    let (p, log) = S::new(vec![
        open("/small", MqAccess::RW),
        Syscall::MqReceive {
            qd: 0,
            nonblocking: true,
        }, // empty
        Syscall::MqSend {
            qd: 0,
            data: vec![1],
            priority: 0,
            nonblocking: true,
        },
        Syscall::MqSend {
            qd: 0,
            data: vec![2],
            priority: 0,
            nonblocking: true,
        }, // full
    ])
    .logged();
    k.spawn("p", 1000, Box::new(p)).unwrap();
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![
            Reply::Qd(0),
            Reply::Err(LinuxError::WouldBlock),
            Reply::Ok,
            Reply::Err(LinuxError::WouldBlock),
        ]
    );
}

#[test]
fn kill_same_uid_succeeds_cross_uid_fails() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/park", Uid::new(1000), Mode::new(0o666), 4);
    // The victim parks on a blocking receive (it would otherwise exit when
    // run_to_quiescence fast-forwards any sleep timer).
    let victim = k
        .spawn(
            "victim",
            1000,
            Box::new(S::new(vec![open("/park", MqAccess::READ), recv(0)])),
        )
        .unwrap();
    let (cross, cross_log) = S::new(vec![Syscall::Kill {
        pid: victim,
        signal: Signal::Kill,
    }])
    .logged();
    k.spawn("cross", 2000, Box::new(cross)).unwrap();
    k.run_to_quiescence();
    assert_eq!(
        replies(&cross_log),
        vec![Reply::Err(LinuxError::NotPermitted)]
    );
    assert!(k.is_alive(victim));

    let (same, same_log) = S::new(vec![Syscall::Kill {
        pid: victim,
        signal: Signal::Kill,
    }])
    .logged();
    k.spawn("same", 1000, Box::new(same)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&same_log), vec![Reply::Ok]);
    assert!(!k.is_alive(victim));
    assert_eq!(k.trace().events_in("signal.kill").count(), 1);
}

#[test]
fn root_kills_anyone() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/park", Uid::new(1000), Mode::new(0o666), 4);
    let victim = k
        .spawn(
            "victim",
            1000,
            Box::new(S::new(vec![open("/park", MqAccess::READ), recv(0)])),
        )
        .unwrap();
    let (root, log) = S::new(vec![Syscall::Kill {
        pid: victim,
        signal: Signal::Term,
    }])
    .logged();
    k.spawn("root", 0, Box::new(root)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&log), vec![Reply::Ok]);
    assert!(!k.is_alive(victim));
}

#[test]
fn pidof_models_process_recon() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    let target = k
        .spawn(
            "temp_control",
            1000,
            Box::new(S::new(vec![Syscall::Sleep {
                duration: SimDuration::from_secs(100),
            }])),
        )
        .unwrap();
    let (probe, log) = S::new(vec![
        Syscall::PidOf {
            name: "temp_control".into(),
        },
        Syscall::PidOf {
            name: "ghost".into(),
        },
    ])
    .logged();
    k.spawn("probe", 2000, Box::new(probe)).unwrap();
    k.run_to_quiescence();
    let got = replies(&log);
    assert_eq!(got[0], Reply::Pid(target));
    assert_eq!(got[1], Reply::Err(LinuxError::NoSuchProcess));
}

#[test]
fn fork_bomb_hits_process_table_limit() {
    let mut k = LinuxKernel::new(LinuxConfig {
        max_procs: 8,
        ..LinuxConfig::default()
    });
    k.register_program(
        "sleeper",
        Box::new(|| {
            Box::new(S::new(vec![Syscall::Sleep {
                duration: SimDuration::from_secs(10_000),
            }]))
        }),
    );
    let bomb: Vec<Syscall> = (0..20)
        .map(|_| Syscall::Fork {
            program: "sleeper".into(),
        })
        .collect();
    let (web, log) = S::new(bomb).logged();
    k.spawn("web", 1000, Box::new(web)).unwrap();
    k.run_to_quiescence();
    let got = replies(&log);
    let ok = got.iter().filter(|r| matches!(r, Reply::Pid(_))).count();
    let full = got
        .iter()
        .filter(|r| matches!(r, Reply::Err(LinuxError::ProcessTableFull)))
        .count();
    assert_eq!(ok, 7, "8 slots minus the bomber itself");
    assert_eq!(full, 13);
}

#[test]
fn setuid_root_only() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    let (root, root_log) = S::new(vec![Syscall::SetUid { uid: 1234 }, Syscall::GetUid]).logged();
    k.spawn("root", 0, Box::new(root)).unwrap();
    let (user, user_log) = S::new(vec![Syscall::SetUid { uid: 0 }]).logged();
    k.spawn("user", 1000, Box::new(user)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&root_log), vec![Reply::Ok, Reply::Uid(1234)]);
    assert_eq!(
        replies(&user_log),
        vec![Reply::Err(LinuxError::NotPermitted)]
    );
}

#[test]
fn device_nodes_respect_dac_with_root_bypass() {
    use std::cell::RefCell;
    use std::rc::Rc;
    struct Reg(Rc<RefCell<i64>>);
    impl bas_sim::device::Device for Reg {
        fn read(&mut self) -> i64 {
            *self.0.borrow()
        }
        fn write(&mut self, v: i64) {
            *self.0.borrow_mut() = v;
        }
    }

    let driver_uid = Uid::new(500);
    let mut nodes = std::collections::BTreeMap::new();
    nodes.insert(DeviceId::FAN, (driver_uid, Mode::new(0o600)));
    let mut k = LinuxKernel::new(LinuxConfig {
        device_nodes: nodes,
        ..LinuxConfig::default()
    });
    let cell = Rc::new(RefCell::new(0));
    k.devices_mut()
        .register(DeviceId::FAN, Box::new(Reg(cell.clone())));

    let (driver, d_log) = S::new(vec![Syscall::DevWrite {
        dev: DeviceId::FAN,
        value: 1,
    }])
    .logged();
    k.spawn("driver", 500, Box::new(driver)).unwrap();
    let (user, u_log) = S::new(vec![Syscall::DevWrite {
        dev: DeviceId::FAN,
        value: 0,
    }])
    .logged();
    k.spawn("user", 1000, Box::new(user)).unwrap();
    let (root, r_log) = S::new(vec![Syscall::DevWrite {
        dev: DeviceId::FAN,
        value: 9,
    }])
    .logged();
    k.spawn("root", 0, Box::new(root)).unwrap();
    k.run_to_quiescence();

    assert_eq!(replies(&d_log), vec![Reply::Ok]);
    assert_eq!(replies(&u_log), vec![Reply::Err(LinuxError::AccessDenied)]);
    assert_eq!(
        replies(&r_log),
        vec![Reply::Ok],
        "root drives devices directly"
    );
    assert_eq!(*cell.borrow(), 9);
}

#[test]
fn unlink_wakes_blocked_processes_with_enoent() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/doomed", Uid::new(1000), Mode::new(0o666), 4);
    let (rx, rx_log) = S::new(vec![open("/doomed", MqAccess::READ), recv(0)]).logged();
    k.spawn("rx", 1000, Box::new(rx)).unwrap();
    k.run_to_quiescence(); // rx blocks in receive
    let (owner, o_log) = S::new(vec![Syscall::MqUnlink {
        name: "/doomed".into(),
    }])
    .logged();
    k.spawn("owner", 1000, Box::new(owner)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&o_log), vec![Reply::Ok]);
    let got = replies(&rx_log);
    assert_eq!(got[1], Reply::Err(LinuxError::NoEntry));
}

#[test]
fn priority_ordering_observed_by_receiver() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o666), 8);
    let (tx, _) = S::new(vec![
        open("/q", MqAccess::WRITE),
        Syscall::MqSend {
            qd: 0,
            data: vec![1],
            priority: 0,
            nonblocking: false,
        },
        Syscall::MqSend {
            qd: 0,
            data: vec![2],
            priority: 9,
            nonblocking: false,
        },
    ])
    .logged();
    k.spawn("tx", 1000, Box::new(tx)).unwrap();
    k.run_to_quiescence();
    let (rx, rx_log) = S::new(vec![open("/q", MqAccess::READ), recv(0), recv(0)]).logged();
    k.spawn("rx", 1000, Box::new(rx)).unwrap();
    k.run_to_quiescence();
    let got = replies(&rx_log);
    assert_eq!(got[1].data(), Some(&[2u8][..]), "priority 9 first");
    assert_eq!(got[2].data(), Some(&[1u8][..]));
}
