//! Property-based tests for the Linux model: mq ordering against a
//! reference, and DAC decision laws.

use bas_linux::cred::{Mode, Uid};
use bas_linux::mq::{MessageQueue, MqMessage};
use bas_sim::arena::MsgArena;
use proptest::prelude::*;

proptest! {
    /// Queue delivery order matches a reference stable sort by
    /// (priority desc, arrival asc) — the `mq_send(3)` contract.
    #[test]
    fn mq_order_matches_reference(msgs in prop::collection::vec((0u32..4, any::<u8>()), 0..32)) {
        let mut arena = MsgArena::default();
        let mut q = MessageQueue::new("/p", Uid::new(1), Mode::new(0o600), 64);
        for (prio, byte) in &msgs {
            q.push(MqMessage::new(*prio, arena.alloc(&[*byte])));
        }
        // Reference: stable sort by priority descending.
        let mut expected: Vec<(u32, u8)> = msgs;
        expected.sort_by_key(|(p, _)| std::cmp::Reverse(*p));
        let drained: Vec<(u32, u8)> =
            std::iter::from_fn(|| q.pop()).map(|m| (m.priority, arena.get(m.msg)[0])).collect();
        prop_assert_eq!(drained, expected);
    }

    /// Push/pop conserves messages: nothing duplicated, nothing lost.
    #[test]
    fn mq_conserves_messages(msgs in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut arena = MsgArena::default();
        let mut q = MessageQueue::new("/c", Uid::new(1), Mode::new(0o600), 64);
        for b in &msgs {
            q.push(MqMessage::new(0, arena.alloc(&[*b])));
        }
        prop_assert_eq!(q.len(), msgs.len());
        let mut drained: Vec<u8> =
            std::iter::from_fn(|| q.pop()).map(|m| arena.get(m.msg)[0]).collect();
        let mut original = msgs;
        drained.sort_unstable();
        original.sort_unstable();
        prop_assert_eq!(drained, original);
    }

    /// Root always passes DAC; the owner's access depends only on the
    /// owner triple; a stranger's only on the other triple (no group).
    #[test]
    fn dac_decision_laws(bits in 0u16..0o1000, owner in 1u32..100, who in 1u32..100) {
        let mode = Mode::new(bits);
        let owner = Uid::new(owner);
        let who = Uid::new(who);
        // Root bypass.
        prop_assert!(mode.allows(Uid::ROOT, owner, true, true));
        // Owner: governed by the 0o600 bits.
        let owner_read = bits & 0o400 != 0;
        let owner_write = bits & 0o200 != 0;
        prop_assert_eq!(mode.allows(owner, owner, true, false), owner_read);
        prop_assert_eq!(mode.allows(owner, owner, false, true), owner_write);
        // Stranger (no group set): union of group+other triples.
        if who != owner {
            let r = bits & 0o044 != 0;
            let w = bits & 0o022 != 0;
            prop_assert_eq!(mode.allows(who, owner, true, false), r);
            prop_assert_eq!(mode.allows(who, owner, false, true), w);
        }
    }

    /// With a group set, exactly three disjoint classes decide access.
    #[test]
    fn dac_group_classes_are_disjoint(bits in 0u16..0o1000) {
        let mode = Mode::new(bits);
        let owner = Uid::new(1);
        let group = Uid::new(2);
        let stranger = Uid::new(3);
        let g = Some(group);
        prop_assert_eq!(mode.allows_with_group(owner, owner, g, true, false), bits & 0o400 != 0);
        prop_assert_eq!(mode.allows_with_group(group, owner, g, true, false), bits & 0o040 != 0);
        prop_assert_eq!(mode.allows_with_group(stranger, owner, g, true, false), bits & 0o004 != 0);
        prop_assert_eq!(mode.allows_with_group(owner, owner, g, false, true), bits & 0o200 != 0);
        prop_assert_eq!(mode.allows_with_group(group, owner, g, false, true), bits & 0o020 != 0);
        prop_assert_eq!(mode.allows_with_group(stranger, owner, g, false, true), bits & 0o002 != 0);
    }
}
