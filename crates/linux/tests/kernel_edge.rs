//! Edge-case semantics of the Linux model: unlink permissions, size
//! limits, descriptor direction checks, fork errors, and privilege
//! transitions.

use bas_linux::cred::{Mode, Uid};
use bas_linux::error::LinuxError;
use bas_linux::kernel::{LinuxConfig, LinuxKernel, MqCreate};
use bas_linux::mq::MQ_MSG_MAX;
use bas_linux::syscall::{MqAccess, Reply, Signal, Syscall};
use bas_sim::script::{replies, Script};

type S = Script<Syscall, Reply>;

fn open(name: &str, access: MqAccess) -> Syscall {
    Syscall::MqOpen {
        name: name.into(),
        access,
        create: None,
    }
}

#[test]
fn unlink_requires_ownership_or_root() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/owned", Uid::new(1000), Mode::new(0o666), 4);

    let (stranger, s_log) = S::new(vec![Syscall::MqUnlink {
        name: "/owned".into(),
    }])
    .logged();
    k.spawn("stranger", 2000, Box::new(stranger)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&s_log), vec![Reply::Err(LinuxError::AccessDenied)]);

    let (root, r_log) = S::new(vec![Syscall::MqUnlink {
        name: "/owned".into(),
    }])
    .logged();
    k.spawn("root", 0, Box::new(root)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&r_log), vec![Reply::Ok]);
    assert!(k.queue_len("/owned").is_none());
}

#[test]
fn oversized_message_rejected_with_emsgsize() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o600), 4);
    let (p, log) = S::new(vec![
        open("/q", MqAccess::WRITE),
        Syscall::MqSend {
            qd: 0,
            data: vec![0u8; MQ_MSG_MAX + 1],
            priority: 0,
            nonblocking: true,
        },
    ])
    .logged();
    k.spawn("p", 1000, Box::new(p)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&log)[1], Reply::Err(LinuxError::MessageTooLong));
}

#[test]
fn descriptor_direction_enforced() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/q", Uid::new(1000), Mode::new(0o600), 4);
    let (p, log) = S::new(vec![
        open("/q", MqAccess::READ),
        // Sending on a read-only descriptor fails even though the DAC
        // would have allowed a write open.
        Syscall::MqSend {
            qd: 0,
            data: vec![1],
            priority: 0,
            nonblocking: true,
        },
        // Receiving on a write-only descriptor likewise.
        open("/q", MqAccess::WRITE),
        Syscall::MqReceive {
            qd: 1,
            nonblocking: true,
        },
        // Unknown descriptor.
        Syscall::MqReceive {
            qd: 42,
            nonblocking: true,
        },
    ])
    .logged();
    k.spawn("p", 1000, Box::new(p)).unwrap();
    k.run_to_quiescence();
    let got = replies(&log);
    assert_eq!(got[1], Reply::Err(LinuxError::BadDescriptor));
    assert_eq!(got[3], Reply::Err(LinuxError::BadDescriptor));
    assert_eq!(got[4], Reply::Err(LinuxError::BadDescriptor));
}

#[test]
fn fork_of_unknown_program_fails() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    let (p, log) = S::new(vec![Syscall::Fork {
        program: "ghost".into(),
    }])
    .logged();
    k.spawn("p", 1000, Box::new(p)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&log), vec![Reply::Err(LinuxError::NoSuchProgram)]);
}

#[test]
fn dropping_root_loses_kill_authority() {
    // A root process setuid()s to an unprivileged account and can no
    // longer signal other users' processes — privilege transitions are
    // one-way for non-root.
    let mut k = LinuxKernel::new(LinuxConfig::default());
    k.create_queue("/park", Uid::new(500), Mode::new(0o600), 4);
    let victim = k
        .spawn(
            "victim",
            500,
            Box::new(S::new(vec![
                open("/park", MqAccess::READ),
                Syscall::MqReceive {
                    qd: 0,
                    nonblocking: false,
                },
            ])),
        )
        .unwrap();
    let (dropper, log) = S::new(vec![
        Syscall::SetUid { uid: 1234 },
        Syscall::Kill {
            pid: victim,
            signal: Signal::Kill,
        },
        Syscall::SetUid { uid: 0 }, // cannot climb back
    ])
    .logged();
    k.spawn("dropper", 0, Box::new(dropper)).unwrap();
    k.run_to_quiescence();
    let got = replies(&log);
    assert_eq!(got[0], Reply::Ok);
    assert_eq!(got[1], Reply::Err(LinuxError::NotPermitted));
    assert_eq!(got[2], Reply::Err(LinuxError::NotPermitted));
    assert!(k.is_alive(victim));
}

#[test]
fn create_with_o_creat_then_full_dac_cycle() {
    let mut k = LinuxKernel::new(LinuxConfig::default());
    let (creator, c_log) = S::new(vec![
        Syscall::MqOpen {
            name: "/fresh".into(),
            access: MqAccess::RW,
            create: Some(MqCreate {
                mode: 0o600,
                capacity: 2,
            }),
        },
        Syscall::MqSend {
            qd: 0,
            data: vec![9],
            priority: 0,
            nonblocking: true,
        },
        Syscall::MqReceive {
            qd: 0,
            nonblocking: true,
        },
    ])
    .logged();
    k.spawn("creator", 1000, Box::new(creator)).unwrap();
    k.run_to_quiescence();
    let got = replies(&c_log);
    assert_eq!(got[0], Reply::Qd(0));
    assert_eq!(got[1], Reply::Ok);
    assert_eq!(got[2].data(), Some(&[9u8][..]));

    // Mode 0600 shuts everyone else out.
    let (other, o_log) = S::new(vec![open("/fresh", MqAccess::READ)]).logged();
    k.spawn("other", 2000, Box::new(other)).unwrap();
    k.run_to_quiescence();
    assert_eq!(replies(&o_log), vec![Reply::Err(LinuxError::AccessDenied)]);
}
