//! Policy backends: one compiler per platform.

pub mod acm;
pub mod camkes;
pub mod linux_plan;
