//! Semantic model of the AADL subset.

use serde::{Deserialize, Serialize};

/// Direction of a process port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortDirection {
    /// The process sends on this port.
    Out,
    /// The process receives on this port.
    In,
}

/// An event/data port on a process type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    /// Port name, unique within its process.
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// The message type carried on this port (`BAS::msg_type`), required
    /// for `out` ports so the ACM backend can authorize the channel at
    /// message-type granularity.
    pub msg_type: Option<u32>,
}

/// A process type declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessType {
    /// Type name (e.g. `TempSensorProcess`).
    pub name: String,
    /// Declared ports.
    pub ports: Vec<Port>,
    /// The `BAS::ac_id` property — the access-control identity the
    /// paper's compiler extracts.
    pub ac_id: Option<u32>,
}

impl ProcessType {
    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// A directed port connection inside the system implementation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Connection label (e.g. `c1`).
    pub name: String,
    /// Source `(subcomponent, out-port)`.
    pub from: (String, String),
    /// Sink `(subcomponent, in-port)`.
    pub to: (String, String),
}

/// The system implementation: instances plus connections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemImpl {
    /// Implementation name (e.g. `TempControlSystem.impl`).
    pub name: String,
    /// `(instance name, process type name)` pairs.
    pub subcomponents: Vec<(String, String)>,
    /// Port connections.
    pub connections: Vec<Connection>,
}

impl SystemImpl {
    /// The process type name behind an instance.
    pub fn type_of(&self, instance: &str) -> Option<&str> {
        self.subcomponents
            .iter()
            .find(|(i, _)| i == instance)
            .map(|(_, t)| t.as_str())
    }
}

/// A parsed AADL model: process types plus (at most) one system
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AadlModel {
    /// All process type declarations.
    pub processes: Vec<ProcessType>,
    /// The system implementation, if declared.
    pub system: Option<SystemImpl>,
}

impl AadlModel {
    /// Finds a process type by name.
    pub fn process(&self, name: &str) -> Option<&ProcessType> {
        self.processes.iter().find(|p| p.name == name)
    }

    /// Resolves an instance name to its process type.
    pub fn process_of_instance(&self, instance: &str) -> Option<&ProcessType> {
        let sys = self.system.as_ref()?;
        self.process(sys.type_of(instance)?)
    }

    /// Semantic validation. Checks, in the spirit of the paper's
    /// compiler:
    ///
    /// - every process has a unique `ac_id`,
    /// - subcomponents reference declared process types,
    /// - connections go `out` port → `in` port of declared instances,
    /// - every connected `out` port declares a `msg_type`.
    ///
    /// # Errors
    ///
    /// Returns one message per problem.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();

        let mut ac_ids = std::collections::BTreeMap::new();
        for p in &self.processes {
            match p.ac_id {
                None => problems.push(format!("process {} has no BAS::ac_id", p.name)),
                Some(id) => {
                    if let Some(prev) = ac_ids.insert(id, p.name.clone()) {
                        problems.push(format!("ac_id {id} used by both {prev} and {}", p.name));
                    }
                }
            }
            let mut seen = std::collections::BTreeSet::new();
            for port in &p.ports {
                if !seen.insert(port.name.as_str()) {
                    problems.push(format!("duplicate port {}.{}", p.name, port.name));
                }
            }
        }

        let Some(sys) = &self.system else {
            return if problems.is_empty() {
                Ok(())
            } else {
                Err(problems)
            };
        };

        let mut instances = std::collections::BTreeSet::new();
        for (inst, ty) in &sys.subcomponents {
            if !instances.insert(inst.as_str()) {
                problems.push(format!("duplicate subcomponent '{inst}'"));
            }
            if self.process(ty).is_none() {
                problems.push(format!(
                    "subcomponent '{inst}' references unknown type '{ty}'"
                ));
            }
        }

        for c in &sys.connections {
            let src = self.process_of_instance(&c.from.0);
            let dst = self.process_of_instance(&c.to.0);
            if src.is_none() {
                problems.push(format!(
                    "connection {}: unknown source instance '{}'",
                    c.name, c.from.0
                ));
            }
            if dst.is_none() {
                problems.push(format!(
                    "connection {}: unknown sink instance '{}'",
                    c.name, c.to.0
                ));
            }
            if let Some(src) = src {
                match src.port(&c.from.1) {
                    Some(p) if p.direction == PortDirection::Out => {
                        if p.msg_type.is_none() {
                            problems.push(format!(
                                "connection {}: out port {}.{} has no BAS::msg_type",
                                c.name, c.from.0, c.from.1
                            ));
                        }
                    }
                    Some(_) => problems.push(format!(
                        "connection {}: {}.{} is not an out port",
                        c.name, c.from.0, c.from.1
                    )),
                    None => problems.push(format!(
                        "connection {}: no port {}.{}",
                        c.name, c.from.0, c.from.1
                    )),
                }
            }
            if let Some(dst) = dst {
                match dst.port(&c.to.1) {
                    Some(p) if p.direction == PortDirection::In => {}
                    Some(_) => problems.push(format!(
                        "connection {}: {}.{} is not an in port",
                        c.name, c.to.0, c.to.1
                    )),
                    None => problems.push(format!(
                        "connection {}: no port {}.{}",
                        c.name, c.to.0, c.to.1
                    )),
                }
            }
        }

        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AadlModel {
        AadlModel {
            processes: vec![
                ProcessType {
                    name: "A".into(),
                    ports: vec![Port {
                        name: "o".into(),
                        direction: PortDirection::Out,
                        msg_type: Some(1),
                    }],
                    ac_id: Some(100),
                },
                ProcessType {
                    name: "B".into(),
                    ports: vec![Port {
                        name: "i".into(),
                        direction: PortDirection::In,
                        msg_type: None,
                    }],
                    ac_id: Some(101),
                },
            ],
            system: Some(SystemImpl {
                name: "S.impl".into(),
                subcomponents: vec![("a".into(), "A".into()), ("b".into(), "B".into())],
                connections: vec![Connection {
                    name: "c1".into(),
                    from: ("a".into(), "o".into()),
                    to: ("b".into(), "i".into()),
                }],
            }),
        }
    }

    #[test]
    fn valid_model_validates() {
        assert_eq!(model().validate(), Ok(()));
    }

    #[test]
    fn missing_ac_id_caught() {
        let mut m = model();
        m.processes[0].ac_id = None;
        assert!(m
            .validate()
            .unwrap_err()
            .iter()
            .any(|p| p.contains("ac_id")));
    }

    #[test]
    fn duplicate_ac_id_caught() {
        let mut m = model();
        m.processes[1].ac_id = Some(100);
        assert!(m
            .validate()
            .unwrap_err()
            .iter()
            .any(|p| p.contains("used by both")));
    }

    #[test]
    fn wrong_direction_caught() {
        let mut m = model();
        // Reverse the connection: in → out.
        m.system.as_mut().unwrap().connections[0] = Connection {
            name: "c1".into(),
            from: ("b".into(), "i".into()),
            to: ("a".into(), "o".into()),
        };
        let errs = m.validate().unwrap_err();
        assert!(errs.iter().any(|p| p.contains("not an out port")));
        assert!(errs.iter().any(|p| p.contains("not an in port")));
    }

    #[test]
    fn missing_msg_type_on_connected_out_port_caught() {
        let mut m = model();
        m.processes[0].ports[0].msg_type = None;
        assert!(m
            .validate()
            .unwrap_err()
            .iter()
            .any(|p| p.contains("msg_type")));
    }

    #[test]
    fn unknown_instance_caught() {
        let mut m = model();
        m.system.as_mut().unwrap().connections[0].from.0 = "ghost".into();
        assert!(m
            .validate()
            .unwrap_err()
            .iter()
            .any(|p| p.contains("ghost")));
    }

    #[test]
    fn instance_resolution() {
        let m = model();
        assert_eq!(m.process_of_instance("a").unwrap().name, "A");
        assert!(m.process_of_instance("zz").is_none());
    }
}
