//! # bas-aadl — AADL-subset architecture language and policy backends
//!
//! The paper specifies the scenario "using AADL (the SAE Architecture
//! Analysis Design Language)" and builds "an AADL to C compiler \[that\]
//! can automatically generate the ACM for the AADL specification. Its job
//! is to traverse AADL models, extract various processes and their unique
//! ac_id, generate the matrix data structure [...] based on the specified
//! connections" (§IV). It also reports a partial AADL→CAmkES compiler.
//!
//! This crate implements an AADL-inspired subset sufficient for the
//! scenario, plus *three* backends — one per platform:
//!
//! - [`parser`] — parses process types (with ports and `BAS::ac_id`
//!   properties) and a system implementation (subcomponents +
//!   connections),
//! - [`model`] — the semantic model with validation,
//! - [`backends::acm`] — AADL → [`bas_acm::AccessControlMatrix`] (the
//!   paper's AADL-to-C compiler),
//! - [`backends::camkes`] — AADL → [`bas_camkes::Assembly`] (the paper's
//!   in-progress AADL-to-CAmkES compiler),
//! - [`backends::linux_plan`] — AADL → message-queue plan for the Linux
//!   baseline (queue per in-port, reader/writer sets).
//!
//! ```
//! use bas_aadl::parser::parse;
//!
//! let model = parse(r"
//!     process Sensor
//!     features
//!       data_out: out event data port { BAS::msg_type => 1; };
//!     properties
//!       BAS::ac_id => 100;
//!     end Sensor;
//!
//!     process Control
//!     features
//!       sensor_in: in event data port;
//!     properties
//!       BAS::ac_id => 101;
//!     end Control;
//!
//!     system implementation Scenario.impl
//!     subcomponents
//!       sens: process Sensor.imp;
//!       ctrl: process Control.imp;
//!     connections
//!       c1: port sens.data_out -> ctrl.sensor_in;
//!     end Scenario.impl;
//! ").unwrap();
//! assert!(model.validate().is_ok());
//! let acm = bas_aadl::backends::acm::compile(&model).unwrap();
//! assert!(acm.check(
//!     bas_acm::AcId::new(100),
//!     bas_acm::AcId::new(101),
//!     bas_acm::MsgType::new(1),
//! ).is_allowed());
//! ```

pub mod backends;
pub mod model;
pub mod parser;

pub use model::{AadlModel, Connection, Port, PortDirection, ProcessType, SystemImpl};
pub use parser::{parse, AadlParseError};
