//! AADL → CAmkES: the paper's in-progress compiler.
//!
//! "AADL and CAmkES are similar languages; both describe high-level
//! component behavior. Translating between them is relatively simple
//! because AADL processes and systems are like CAmkES components and
//! assemblies" (§IV-B). The mapping:
//!
//! - each AADL process type → a CAmkES component,
//! - each *in* port → a provided RPC interface (procedure
//!   `port_<name>` with a single `deliver` method),
//! - each connected *out* port → a used interface of the sink's
//!   procedure,
//! - each AADL connection → an `seL4RPCCall` connection.

use std::fmt;

use bas_camkes::assembly::Assembly;
use bas_camkes::component::{Component, Procedure};

use crate::model::{AadlModel, PortDirection};

/// Errors from the CAmkES backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CamkesCompileError {
    /// The model failed validation.
    InvalidModel(Vec<String>),
    /// The model has no system implementation.
    NoSystem,
}

impl fmt::Display for CamkesCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CamkesCompileError::InvalidModel(problems) => {
                write!(f, "invalid aadl model: {}", problems.join("; "))
            }
            CamkesCompileError::NoSystem => write!(f, "no system implementation in model"),
        }
    }
}

impl std::error::Error for CamkesCompileError {}

/// The procedure generated for an in-port.
pub fn port_procedure(port: &str) -> Procedure {
    Procedure::new(format!("port_{port}"), ["deliver"])
}

/// The used-interface name generated on the client side of a connection.
pub fn client_iface(conn_name: &str) -> String {
    format!("use_{conn_name}")
}

/// Compiles a validated model into a CAmkES assembly.
///
/// # Errors
///
/// Returns [`CamkesCompileError::InvalidModel`] or
/// [`CamkesCompileError::NoSystem`].
pub fn compile(model: &AadlModel) -> Result<Assembly, CamkesCompileError> {
    model.validate().map_err(CamkesCompileError::InvalidModel)?;
    let sys = model.system.as_ref().ok_or(CamkesCompileError::NoSystem)?;

    let mut assembly = Assembly::new();
    for (inst, ty_name) in &sys.subcomponents {
        let ty = model.process(ty_name).expect("validated");
        let mut component = Component::new(ty_name.clone());
        // Provided interface per in-port.
        for port in ty.ports.iter().filter(|p| p.direction == PortDirection::In) {
            component =
                component.provides(format!("port_{}", port.name), port_procedure(&port.name));
        }
        // Used interface per outgoing connection from this instance.
        for conn in sys.connections.iter().filter(|c| &c.from.0 == inst) {
            component = component.uses(client_iface(&conn.name), port_procedure(&conn.to.1));
        }
        assembly = assembly.instance(inst.clone(), component);
    }
    for conn in &sys.connections {
        assembly = assembly.rpc_connection(
            conn.name.clone(),
            (conn.from.0.as_str(), &client_iface(&conn.name)),
            (conn.to.0.as_str(), &format!("port_{}", conn.to.1)),
        );
    }
    debug_assert!(
        assembly.validate().is_ok(),
        "backend must emit valid assemblies"
    );
    Ok(assembly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use bas_camkes::codegen;

    const SRC: &str = r"
        process Sensor
        features
          data_out: out event data port { BAS::msg_type => 1; };
        properties
          BAS::ac_id => 100;
        end Sensor;

        process Control
        features
          sensor_in: in event data port;
        properties
          BAS::ac_id => 101;
        end Control;

        system implementation S.impl
        subcomponents
          sens: process Sensor.imp;
          ctrl: process Control.imp;
        connections
          c1: port sens.data_out -> ctrl.sensor_in;
        end S.impl;
    ";

    #[test]
    fn compiles_to_valid_assembly() {
        let assembly = compile(&parse(SRC).unwrap()).unwrap();
        assert!(assembly.validate().is_ok());
        assert_eq!(assembly.instances.len(), 2);
        assert_eq!(assembly.connections.len(), 1);
        let ctrl = assembly.find("ctrl").unwrap();
        assert!(ctrl.component.provided("port_sensor_in").is_some());
        let sens = assembly.find("sens").unwrap();
        assert!(sens.component.used("use_c1").is_some());
    }

    #[test]
    fn assembly_compiles_onward_to_capdl() {
        let assembly = compile(&parse(SRC).unwrap()).unwrap();
        let (spec, glue) = codegen::compile(&assembly).unwrap();
        assert!(spec.validate().is_ok());
        assert!(glue.client_slot("sens", "use_c1").is_some());
        assert!(glue.server_slot("ctrl", "port_sensor_in").is_some());
    }

    #[test]
    fn no_system_rejected() {
        let mut m = parse(SRC).unwrap();
        m.system = None;
        assert_eq!(compile(&m).unwrap_err(), CamkesCompileError::NoSystem);
    }
}
