//! AADL → ACM: the paper's "AADL to C compiler".
//!
//! "This source-to-source compiler can automatically generate the ACM for
//! the AADL specification. Its job is to traverse AADL models, extract
//! various processes and their unique ac_id, generate the matrix data
//! structure [...] based on the specified connections" (§IV).
//!
//! For every connection `a.p -> b.q`, the generated matrix permits:
//!
//! - `a → b` with the `msg_type` of port `p` (the payload channel),
//! - acknowledgments (type 0) in both directions between `a` and `b`,
//!   honoring the Fig. 3 convention that "all confirm messages between
//!   processes be allowed".

use std::fmt;

use bas_acm::{AcId, AccessControlMatrix, MsgType};

use crate::model::AadlModel;

/// Errors from the ACM backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcmCompileError {
    /// The model failed validation; compile only validated models.
    InvalidModel(Vec<String>),
    /// The model has no system implementation to compile.
    NoSystem,
}

impl fmt::Display for AcmCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcmCompileError::InvalidModel(problems) => {
                write!(f, "invalid aadl model: {}", problems.join("; "))
            }
            AcmCompileError::NoSystem => write!(f, "no system implementation in model"),
        }
    }
}

impl std::error::Error for AcmCompileError {}

/// Compiles a validated model into the access-control matrix.
///
/// # Errors
///
/// Returns [`AcmCompileError::InvalidModel`] if validation fails, or
/// [`AcmCompileError::NoSystem`] if the model declares no system
/// implementation.
pub fn compile(model: &AadlModel) -> Result<AccessControlMatrix, AcmCompileError> {
    model.validate().map_err(AcmCompileError::InvalidModel)?;
    let sys = model.system.as_ref().ok_or(AcmCompileError::NoSystem)?;

    let mut builder = AccessControlMatrix::builder();
    for conn in &sys.connections {
        let src = model.process_of_instance(&conn.from.0).expect("validated");
        let dst = model.process_of_instance(&conn.to.0).expect("validated");
        let src_ac = AcId::new(src.ac_id.expect("validated"));
        let dst_ac = AcId::new(dst.ac_id.expect("validated"));
        let mtype = src
            .port(&conn.from.1)
            .expect("validated")
            .msg_type
            .expect("validated");
        builder = builder
            .allow(src_ac, dst_ac, [MsgType::new(mtype)])
            .allow_ack_between(src_ac, dst_ac);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r"
        process Sensor
        features
          data_out: out event data port { BAS::msg_type => 1; };
        properties
          BAS::ac_id => 100;
        end Sensor;

        process Control
        features
          sensor_in: in event data port;
        properties
          BAS::ac_id => 101;
        end Control;

        process Web
        features
          setpoint_out: out event data port { BAS::msg_type => 4; };
        properties
          BAS::ac_id => 104;
        end Web;

        system implementation S.impl
        subcomponents
          sens: process Sensor.imp;
          ctrl: process Control.imp;
          web: process Web.imp;
        connections
          c1: port sens.data_out -> ctrl.sensor_in;
          c2: port web.setpoint_out -> ctrl.sensor_in;
        end S.impl;
    ";

    #[test]
    fn connections_become_typed_channels() {
        let acm = compile(&parse(SRC).unwrap()).unwrap();
        assert!(acm
            .check(AcId::new(100), AcId::new(101), MsgType::new(1))
            .is_allowed());
        assert!(acm
            .check(AcId::new(104), AcId::new(101), MsgType::new(4))
            .is_allowed());
        // Cross-channel types are denied: web may not fake sensor data.
        assert!(!acm
            .check(AcId::new(104), AcId::new(101), MsgType::new(1))
            .is_allowed());
        // No channel at all between web and sensor.
        assert!(!acm
            .check(AcId::new(104), AcId::new(100), MsgType::new(0))
            .is_allowed());
    }

    #[test]
    fn acks_flow_both_ways_on_connected_pairs() {
        let acm = compile(&parse(SRC).unwrap()).unwrap();
        assert!(acm
            .check(AcId::new(101), AcId::new(100), MsgType::ACK)
            .is_allowed());
        assert!(acm
            .check(AcId::new(100), AcId::new(101), MsgType::ACK)
            .is_allowed());
        assert!(acm
            .check(AcId::new(101), AcId::new(104), MsgType::ACK)
            .is_allowed());
    }

    #[test]
    fn invalid_model_rejected() {
        let mut m = parse(SRC).unwrap();
        m.processes[0].ac_id = None;
        assert!(matches!(compile(&m), Err(AcmCompileError::InvalidModel(_))));
    }

    #[test]
    fn no_system_rejected() {
        let mut m = parse(SRC).unwrap();
        m.system = None;
        assert_eq!(compile(&m).unwrap_err(), AcmCompileError::NoSystem);
    }
}
