//! AADL → Linux message-queue plan.
//!
//! The Linux baseline has no compiled-in policy; the closest artifact is
//! the scenario loader's queue setup — "The scenario process in Linux
//! spawns all other processes and creates 6 message queues that are needed
//! for various communications" (§IV-C). This backend derives that plan:
//! one queue per connected in-port, naming its reader and its intended
//! writers, so the loader can choose owners and modes.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::model::AadlModel;

/// One queue the loader must create.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuePlan {
    /// VFS queue name (`/mq_<instance>_<port>`).
    pub name: String,
    /// The instance that reads from the queue.
    pub reader: String,
    /// The instances intended to write to it (DAC cannot actually
    /// enforce this set — that is the point of the paper's Linux
    /// comparison).
    pub writers: Vec<String>,
}

/// The full queue plan.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinuxIpcPlan {
    /// All queues, sorted by name.
    pub queues: Vec<QueuePlan>,
}

impl LinuxIpcPlan {
    /// The queue feeding `instance.port`, if planned.
    pub fn queue_for(&self, instance: &str, port: &str) -> Option<&QueuePlan> {
        let name = queue_name(instance, port);
        self.queues.iter().find(|q| q.name == name)
    }
}

/// The canonical queue name for an in-port.
pub fn queue_name(instance: &str, port: &str) -> String {
    format!("/mq_{instance}_{port}")
}

/// Errors from the Linux backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinuxPlanError {
    /// The model failed validation.
    InvalidModel(Vec<String>),
    /// The model has no system implementation.
    NoSystem,
}

impl fmt::Display for LinuxPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinuxPlanError::InvalidModel(problems) => {
                write!(f, "invalid aadl model: {}", problems.join("; "))
            }
            LinuxPlanError::NoSystem => write!(f, "no system implementation in model"),
        }
    }
}

impl std::error::Error for LinuxPlanError {}

/// Derives the queue plan from a validated model.
///
/// # Errors
///
/// Returns [`LinuxPlanError::InvalidModel`] or [`LinuxPlanError::NoSystem`].
pub fn compile(model: &AadlModel) -> Result<LinuxIpcPlan, LinuxPlanError> {
    model.validate().map_err(LinuxPlanError::InvalidModel)?;
    let sys = model.system.as_ref().ok_or(LinuxPlanError::NoSystem)?;

    let mut queues: BTreeMap<String, QueuePlan> = BTreeMap::new();
    for conn in &sys.connections {
        let name = queue_name(&conn.to.0, &conn.to.1);
        let entry = queues.entry(name.clone()).or_insert_with(|| QueuePlan {
            name,
            reader: conn.to.0.clone(),
            writers: Vec::new(),
        });
        if !entry.writers.contains(&conn.from.0) {
            entry.writers.push(conn.from.0.clone());
        }
    }
    Ok(LinuxIpcPlan {
        queues: queues.into_values().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r"
        process Sensor
        features
          data_out: out event data port { BAS::msg_type => 1; };
        properties
          BAS::ac_id => 100;
        end Sensor;

        process Web
        features
          setpoint_out: out event data port { BAS::msg_type => 4; };
        properties
          BAS::ac_id => 104;
        end Web;

        process Control
        features
          sensor_in: in event data port;
          setpoint_in: in event data port;
        properties
          BAS::ac_id => 101;
        end Control;

        system implementation S.impl
        subcomponents
          sens: process Sensor.imp;
          web: process Web.imp;
          ctrl: process Control.imp;
        connections
          c1: port sens.data_out -> ctrl.sensor_in;
          c2: port web.setpoint_out -> ctrl.setpoint_in;
        end S.impl;
    ";

    #[test]
    fn one_queue_per_connected_in_port() {
        let plan = compile(&parse(SRC).unwrap()).unwrap();
        assert_eq!(plan.queues.len(), 2);
        let q = plan.queue_for("ctrl", "sensor_in").unwrap();
        assert_eq!(q.reader, "ctrl");
        assert_eq!(q.writers, vec!["sens".to_string()]);
        assert_eq!(q.name, "/mq_ctrl_sensor_in");
        assert!(plan.queue_for("ctrl", "nothing").is_none());
    }

    #[test]
    fn multiple_writers_merge_into_one_queue() {
        let src = SRC.replace(
            "c2: port web.setpoint_out -> ctrl.setpoint_in;",
            "c2: port web.setpoint_out -> ctrl.sensor_in;",
        );
        let plan = compile(&parse(&src).unwrap()).unwrap();
        assert_eq!(plan.queues.len(), 1);
        let q = plan.queue_for("ctrl", "sensor_in").unwrap();
        assert_eq!(q.writers, vec!["sens".to_string(), "web".to_string()]);
    }

    #[test]
    fn no_system_rejected() {
        let mut m = parse(SRC).unwrap();
        m.system = None;
        assert_eq!(compile(&m).unwrap_err(), LinuxPlanError::NoSystem);
    }
}
