//! Parser for the AADL subset.
//!
//! Line-oriented; `--` starts a comment, statements end with `;`. The
//! accepted grammar (a faithful-but-small slice of AADL concrete syntax):
//!
//! ```text
//! process <Name>
//! features
//!   <port>: in|out event data port;
//!   <port>: out event data port { BAS::msg_type => <n>; };
//! properties
//!   BAS::ac_id => <n>;
//! end <Name>;
//!
//! system implementation <Name>
//! subcomponents
//!   <inst>: process <Type>[.imp];
//! connections
//!   <cname>: port <inst>.<port> -> <inst>.<port>;
//! end <Name>;
//! ```
//!
//! `process implementation <Name>.imp ... end <Name>.imp;` blocks are
//! accepted and ignored (the subset carries no per-implementation data).

use std::fmt;

use crate::model::{AadlModel, Connection, Port, PortDirection, ProcessType, SystemImpl};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AadlParseError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AadlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aadl parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for AadlParseError {}

fn err(line: usize, message: impl Into<String>) -> AadlParseError {
    AadlParseError {
        line,
        message: message.into(),
    }
}

#[derive(Debug)]
enum State {
    Top,
    Process { ty: ProcessType, section: Section },
    ProcessImpl { name: String },
    SystemImpl { sys: SystemImpl, section: Section },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Features,
    Properties,
    Subcomponents,
    Connections,
}

fn parse_number(s: &str, line: usize, what: &str) -> Result<u32, AadlParseError> {
    s.trim()
        .parse()
        .map_err(|_| err(line, format!("{what} must be a number, got '{s}'")))
}

/// Parses `BAS::ac_id => N` / `BAS::msg_type => N` property text,
/// returning `(key, value)`.
fn parse_property(text: &str, line: usize) -> Result<(String, u32), AadlParseError> {
    let (key, value) = text
        .split_once("=>")
        .ok_or_else(|| err(line, "property needs 'Key => value'"))?;
    Ok((
        key.trim().to_string(),
        parse_number(value, line, "property value")?,
    ))
}

fn parse_port(stmt: &str, line: usize) -> Result<Port, AadlParseError> {
    // <name>: in|out event data port [ { BAS::msg_type => n; } ]
    let (name, rest) = stmt
        .split_once(':')
        .ok_or_else(|| err(line, "feature needs '<name>: <direction> event data port'"))?;
    let rest = rest.trim();
    let (dir_part, after) = match rest.split_once(char::is_whitespace) {
        Some((d, a)) => (d, a.trim()),
        None => return Err(err(line, "feature missing direction")),
    };
    let direction = match dir_part {
        "in" => PortDirection::In,
        "out" => PortDirection::Out,
        other => {
            return Err(err(
                line,
                format!("direction must be in/out, got '{other}'"),
            ))
        }
    };
    let (kind_part, annex) = match after.split_once('{') {
        Some((k, a)) => {
            let a = a
                .strip_suffix('}')
                .ok_or_else(|| err(line, "unterminated '{' in feature"))?;
            (k.trim(), Some(a.trim().trim_end_matches(';').trim()))
        }
        None => (after, None),
    };
    if kind_part != "event data port" && kind_part != "data port" && kind_part != "event port" {
        return Err(err(line, format!("unknown port kind '{kind_part}'")));
    }
    let msg_type = match annex {
        Some(text) if !text.is_empty() => {
            let (key, value) = parse_property(text, line)?;
            if key != "BAS::msg_type" {
                return Err(err(line, format!("unknown port property '{key}'")));
            }
            Some(value)
        }
        _ => None,
    };
    Ok(Port {
        name: name.trim().to_string(),
        direction,
        msg_type,
    })
}

/// Parses AADL-subset source into a model.
///
/// # Errors
///
/// Returns the first syntax error with its line number. Run
/// [`AadlModel::validate`] afterwards for semantic checks.
pub fn parse(input: &str) -> Result<AadlModel, AadlParseError> {
    let mut model = AadlModel::default();
    let mut state = State::Top;

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split("--").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let stmt = line.trim_end_matches(';').trim();

        state = match state {
            State::Top => {
                if let Some(rest) = stmt.strip_prefix("system implementation ") {
                    State::SystemImpl {
                        sys: SystemImpl {
                            name: rest.trim().to_string(),
                            subcomponents: Vec::new(),
                            connections: Vec::new(),
                        },
                        section: Section::None,
                    }
                } else if let Some(rest) = stmt.strip_prefix("process implementation ") {
                    State::ProcessImpl {
                        name: rest.trim().to_string(),
                    }
                } else if let Some(rest) = stmt.strip_prefix("process ") {
                    State::Process {
                        ty: ProcessType {
                            name: rest.trim().to_string(),
                            ports: Vec::new(),
                            ac_id: None,
                        },
                        section: Section::None,
                    }
                } else {
                    return Err(err(
                        lineno,
                        format!("unexpected top-level statement '{stmt}'"),
                    ));
                }
            }
            State::Process { mut ty, section } => {
                if stmt == "features" {
                    State::Process {
                        ty,
                        section: Section::Features,
                    }
                } else if stmt == "properties" {
                    State::Process {
                        ty,
                        section: Section::Properties,
                    }
                } else if let Some(name) = stmt.strip_prefix("end ") {
                    if name.trim() != ty.name {
                        return Err(err(
                            lineno,
                            format!("'end {}' does not match 'process {}'", name.trim(), ty.name),
                        ));
                    }
                    model.processes.push(ty);
                    State::Top
                } else {
                    match section {
                        Section::Features => ty.ports.push(parse_port(stmt, lineno)?),
                        Section::Properties => {
                            let (key, value) = parse_property(stmt, lineno)?;
                            if key == "BAS::ac_id" {
                                ty.ac_id = Some(value);
                            } else {
                                return Err(err(lineno, format!("unknown property '{key}'")));
                            }
                        }
                        _ => {
                            return Err(err(
                                lineno,
                                "statement outside features/properties section",
                            ))
                        }
                    }
                    State::Process { ty, section }
                }
            }
            State::ProcessImpl { name } => {
                if let Some(end_name) = stmt.strip_prefix("end ") {
                    if end_name.trim() != name {
                        return Err(err(lineno, "mismatched process implementation end"));
                    }
                    State::Top
                } else {
                    // Implementation bodies carry no data in this subset.
                    State::ProcessImpl { name }
                }
            }
            State::SystemImpl { mut sys, section } => {
                if stmt == "subcomponents" {
                    State::SystemImpl {
                        sys,
                        section: Section::Subcomponents,
                    }
                } else if stmt == "connections" {
                    State::SystemImpl {
                        sys,
                        section: Section::Connections,
                    }
                } else if let Some(name) = stmt.strip_prefix("end ") {
                    if name.trim() != sys.name {
                        return Err(err(
                            lineno,
                            format!(
                                "'end {}' does not match 'system implementation {}'",
                                name.trim(),
                                sys.name
                            ),
                        ));
                    }
                    if model.system.is_some() {
                        return Err(err(lineno, "multiple system implementations"));
                    }
                    model.system = Some(sys);
                    State::Top
                } else {
                    match section {
                        Section::Subcomponents => {
                            // <inst>: process <Type>[.imp]
                            let (inst, rest) = stmt.split_once(':').ok_or_else(|| {
                                err(lineno, "subcomponent needs '<inst>: process <Type>'")
                            })?;
                            let ty = rest
                                .trim()
                                .strip_prefix("process ")
                                .ok_or_else(|| err(lineno, "subcomponent must be a process"))?
                                .trim();
                            let ty = ty.strip_suffix(".imp").unwrap_or(ty);
                            sys.subcomponents
                                .push((inst.trim().to_string(), ty.to_string()));
                        }
                        Section::Connections => {
                            // <name>: port a.x -> b.y
                            let (cname, rest) = stmt.split_once(':').ok_or_else(|| {
                                err(lineno, "connection needs '<name>: port a.x -> b.y'")
                            })?;
                            let rest = rest
                                .trim()
                                .strip_prefix("port ")
                                .ok_or_else(|| err(lineno, "connection must start with 'port'"))?;
                            let (from, to) = rest
                                .split_once("->")
                                .ok_or_else(|| err(lineno, "connection needs '->'"))?;
                            let split_ref = |s: &str| -> Result<(String, String), AadlParseError> {
                                s.trim()
                                    .split_once('.')
                                    .map(|(a, b)| (a.trim().to_string(), b.trim().to_string()))
                                    .ok_or_else(|| {
                                        err(lineno, "port reference needs '<inst>.<port>'")
                                    })
                            };
                            sys.connections.push(Connection {
                                name: cname.trim().to_string(),
                                from: split_ref(from)?,
                                to: split_ref(to)?,
                            });
                        }
                        _ => {
                            return Err(err(
                                lineno,
                                "statement outside subcomponents/connections section",
                            ))
                        }
                    }
                    State::SystemImpl { sys, section }
                }
            }
        };
    }

    match state {
        State::Top => Ok(model),
        State::Process { ty, .. } => Err(err(
            input.lines().count(),
            format!("unterminated process '{}'", ty.name),
        )),
        State::ProcessImpl { name } => Err(err(
            input.lines().count(),
            format!("unterminated process implementation '{name}'"),
        )),
        State::SystemImpl { sys, .. } => Err(err(
            input.lines().count(),
            format!("unterminated system implementation '{}'", sys.name),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
        -- two processes and a link
        process Sensor
        features
          data_out: out event data port { BAS::msg_type => 1; };
        properties
          BAS::ac_id => 100;
        end Sensor;

        process implementation Sensor.imp
        end Sensor.imp;

        process Control
        features
          sensor_in: in event data port;
          cmd_out: out event data port { BAS::msg_type => 2; };
        properties
          BAS::ac_id => 101;
        end Control;

        system implementation Demo.impl
        subcomponents
          sens: process Sensor.imp;
          ctrl: process Control.imp;
        connections
          c1: port sens.data_out -> ctrl.sensor_in;
        end Demo.impl;
    ";

    #[test]
    fn parses_sample_fully() {
        let m = parse(SAMPLE).unwrap();
        assert_eq!(m.processes.len(), 2);
        let sensor = m.process("Sensor").unwrap();
        assert_eq!(sensor.ac_id, Some(100));
        assert_eq!(sensor.ports[0].msg_type, Some(1));
        assert_eq!(sensor.ports[0].direction, PortDirection::Out);
        let ctrl = m.process("Control").unwrap();
        assert_eq!(ctrl.ports.len(), 2);
        let sys = m.system.as_ref().unwrap();
        assert_eq!(sys.subcomponents.len(), 2);
        assert_eq!(sys.type_of("sens"), Some("Sensor"));
        assert_eq!(sys.connections[0].from, ("sens".into(), "data_out".into()));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn mismatched_end_rejected() {
        let e = parse("process A\nend B;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("does not match"));
    }

    #[test]
    fn unterminated_block_rejected() {
        let e = parse("process A\nfeatures").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn statement_outside_section_rejected() {
        let e = parse("process A\nfoo: in event data port;\nend A;").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn bad_direction_rejected() {
        let e = parse("process A\nfeatures\np: sideways event data port;\nend A;").unwrap_err();
        assert!(e.message.contains("direction"));
    }

    #[test]
    fn unknown_property_rejected() {
        let e = parse("process A\nproperties\nFoo::bar => 3;\nend A;").unwrap_err();
        assert!(e.message.contains("unknown property"));
    }

    #[test]
    fn comments_stripped_anywhere() {
        let m = parse("process A -- trailing\nproperties\nBAS::ac_id => 5; -- x\nend A;").unwrap();
        assert_eq!(m.process("A").unwrap().ac_id, Some(5));
    }

    #[test]
    fn multiple_system_impls_rejected() {
        let src =
            "system implementation S.impl\nend S.impl;\nsystem implementation T.impl\nend T.impl;";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("multiple system"));
    }
}
