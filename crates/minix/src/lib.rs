//! # bas-minix — MINIX 3 microkernel model with ACM enforcement
//!
//! A faithful functional model of the security-enhanced MINIX 3 platform
//! the paper builds (§III-A/B):
//!
//! - **Fixed-format messages** ([`message::Message`]): 64 bytes — a 4-byte
//!   source endpoint, a 4-byte message type, and a 56-byte payload — exactly
//!   the layout the paper describes.
//! - **Endpoints** ([`endpoint::Endpoint`]): "composed of the process slot
//!   number concatenated with a generation number", so a recycled slot
//!   yields a *different* endpoint and stale endpoints fail with
//!   `EDEADSRCDST`.
//! - **Rendezvous IPC** ([`kernel::MinixKernel`]): synchronous
//!   `ipc_send`/`ipc_receive`/`ipc_sendrec`, non-blocking send, and
//!   asynchronous notify, all transiting the kernel. The kernel stamps the
//!   source endpoint on delivery, so sender identity is unforgeable from
//!   user space — the property that defeats spoofing in §IV-D.2.
//! - **ACM enforcement**: the kernel consults a [`bas_acm`]
//!   [`AccessControlMatrix`](bas_acm::AccessControlMatrix) on every message
//!   transfer and drops denied requests.
//! - **PM server** ([`pm`]): fork/fork2/srv_fork2/kill/exit/getpid are only
//!   reachable as messages to the process-management server, which is
//!   itself subject to the ACM ("we incorporated the process management
//!   server with ACM auditing mechanism") and to the quota extension.
//!
//! ```
//! use bas_acm::{AcId, AccessControlMatrix, MsgType};
//! use bas_minix::kernel::{MinixConfig, MinixKernel};
//! use bas_minix::script::ScriptProcess;
//! use bas_minix::syscall::Syscall;
//!
//! // Policy: ac10 may send m1 to ac11; nothing else.
//! let acm = AccessControlMatrix::builder()
//!     .allow(AcId::new(10), AcId::new(11), [MsgType::new(1)])
//!     .build();
//! let mut k = MinixKernel::new(MinixConfig { acm, ..MinixConfig::default() });
//! let receiver = k
//!     .spawn("rx", AcId::new(11), 1000, Box::new(ScriptProcess::new(vec![
//!         Syscall::Receive { from: None },
//!     ])))
//!     .unwrap();
//! k.spawn("tx", AcId::new(10), 1000, Box::new(ScriptProcess::new(vec![
//!     Syscall::send(receiver, 1, [0u8; 0]),
//! ])))
//! .unwrap();
//! k.run_to_quiescence();
//! assert_eq!(k.metrics().ipc_messages, 1);
//! ```

pub mod endpoint;
pub mod error;
pub mod grant;
pub mod kernel;
pub mod message;
pub mod pcb;
pub mod pm;
pub mod script;
pub mod syscall;

pub use endpoint::Endpoint;
pub use error::MinixError;
pub use grant::{BufId, GrantId, GrantPerms, MemoryTable};
pub use kernel::{MinixConfig, MinixKernel};
pub use message::{Message, Payload};
pub use pcb::{BlockReason, Pcb};
pub use syscall::{Reply, Syscall};
