//! Memory grants (MINIX `SAFECOPY` analogue).
//!
//! §III-A: "MINIX 3 IPC directly supports synchronous and asynchronous
//! message passing, and memory grants." A grant is a granter-created
//! window onto one of its own memory buffers, extended to exactly one
//! grantee endpoint with read and/or write permission; the kernel checks
//! the grantee's *kernel-held identity* on every safe-copy, so grants are
//! unforgeable and individually revocable — the same design pressure as
//! the ACM, applied to bulk data.
//!
//! This module holds the data model; the syscalls (`MemCreate`,
//! `GrantCreate`, `SafeCopyFrom`, `SafeCopyTo`, `GrantRevoke`) are wired
//! in [`crate::kernel`].

use serde::{Deserialize, Serialize};

use crate::endpoint::Endpoint;

/// Identifies a memory buffer within its owning process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BufId(pub u32);

/// Identifies a grant within its granting process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GrantId(pub u32);

/// Grant permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrantPerms {
    /// Grantee may copy out of the window.
    pub read: bool,
    /// Grantee may copy into the window.
    pub write: bool,
}

impl GrantPerms {
    /// Read-only grant.
    pub const READ: GrantPerms = GrantPerms {
        read: true,
        write: false,
    };
    /// Write-only grant.
    pub const WRITE: GrantPerms = GrantPerms {
        read: false,
        write: true,
    };
    /// Read-write grant.
    pub const RW: GrantPerms = GrantPerms {
        read: true,
        write: true,
    };
}

/// One grant: a window onto a buffer, for one grantee.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    /// The granter's buffer being exposed.
    pub buf: BufId,
    /// Window start within the buffer.
    pub offset: usize,
    /// Window length.
    pub len: usize,
    /// The only endpoint allowed to use the grant. Endpoint generations
    /// make this temporally precise: a restarted grantee cannot reuse its
    /// predecessor's grants.
    pub grantee: Endpoint,
    /// Permitted directions.
    pub perms: GrantPerms,
}

/// Per-process memory state: owned buffers plus outstanding grants.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTable {
    buffers: Vec<Option<Vec<u8>>>,
    grants: Vec<Option<Grant>>,
}

/// Why a grant operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrantError {
    /// The named buffer does not exist.
    NoSuchBuffer,
    /// The named grant does not exist (or was revoked).
    NoSuchGrant,
    /// The caller is not the grantee of this grant.
    NotGrantee,
    /// The direction is not permitted by the grant.
    PermissionDenied,
    /// The requested range leaves the granted window.
    OutOfBounds,
}

impl std::fmt::Display for GrantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GrantError::NoSuchBuffer => "no such buffer",
            GrantError::NoSuchGrant => "no such grant",
            GrantError::NotGrantee => "caller is not the grantee",
            GrantError::PermissionDenied => "direction not permitted by grant",
            GrantError::OutOfBounds => "range outside the granted window",
        };
        f.write_str(s)
    }
}

impl std::error::Error for GrantError {}

impl MemoryTable {
    /// Allocates a zeroed buffer of `size` bytes.
    pub fn create_buffer(&mut self, size: usize) -> BufId {
        let id = BufId(self.buffers.len() as u32);
        self.buffers.push(Some(vec![0; size]));
        id
    }

    /// Writes `data` into one of the *owner's own* buffers.
    ///
    /// # Errors
    ///
    /// Returns [`GrantError::NoSuchBuffer`] or [`GrantError::OutOfBounds`].
    pub fn write_own(&mut self, buf: BufId, offset: usize, data: &[u8]) -> Result<(), GrantError> {
        let b = self
            .buffers
            .get_mut(buf.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(GrantError::NoSuchBuffer)?;
        let end = offset
            .checked_add(data.len())
            .ok_or(GrantError::OutOfBounds)?;
        if end > b.len() {
            return Err(GrantError::OutOfBounds);
        }
        b[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads from one of the owner's own buffers.
    ///
    /// # Errors
    ///
    /// Returns [`GrantError::NoSuchBuffer`] or [`GrantError::OutOfBounds`].
    pub fn read_own(&self, buf: BufId, offset: usize, len: usize) -> Result<Vec<u8>, GrantError> {
        let b = self
            .buffers
            .get(buf.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(GrantError::NoSuchBuffer)?;
        let end = offset.checked_add(len).ok_or(GrantError::OutOfBounds)?;
        if end > b.len() {
            return Err(GrantError::OutOfBounds);
        }
        Ok(b[offset..end].to_vec())
    }

    /// Creates a grant over a window of an owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`GrantError::NoSuchBuffer`] or [`GrantError::OutOfBounds`].
    pub fn create_grant(
        &mut self,
        buf: BufId,
        offset: usize,
        len: usize,
        grantee: Endpoint,
        perms: GrantPerms,
    ) -> Result<GrantId, GrantError> {
        let b = self
            .buffers
            .get(buf.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(GrantError::NoSuchBuffer)?;
        let end = offset.checked_add(len).ok_or(GrantError::OutOfBounds)?;
        if end > b.len() {
            return Err(GrantError::OutOfBounds);
        }
        let id = GrantId(self.grants.len() as u32);
        self.grants.push(Some(Grant {
            buf,
            offset,
            len,
            grantee,
            perms,
        }));
        Ok(id)
    }

    /// Revokes a grant. Idempotent errors: revoking twice reports
    /// [`GrantError::NoSuchGrant`].
    ///
    /// # Errors
    ///
    /// Returns [`GrantError::NoSuchGrant`] if the grant does not exist.
    pub fn revoke(&mut self, grant: GrantId) -> Result<(), GrantError> {
        let slot = self
            .grants
            .get_mut(grant.0 as usize)
            .ok_or(GrantError::NoSuchGrant)?;
        if slot.take().is_none() {
            return Err(GrantError::NoSuchGrant);
        }
        Ok(())
    }

    /// Validates a grantee's access and resolves the effective buffer
    /// range. `caller` is the kernel-held endpoint of the process
    /// performing the safe-copy.
    ///
    /// # Errors
    ///
    /// Every [`GrantError`] variant can occur.
    fn resolve(
        &self,
        grant: GrantId,
        caller: Endpoint,
        want_read: bool,
        offset: usize,
        len: usize,
    ) -> Result<(BufId, usize), GrantError> {
        let g = self
            .grants
            .get(grant.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(GrantError::NoSuchGrant)?;
        if g.grantee != caller {
            return Err(GrantError::NotGrantee);
        }
        if want_read && !g.perms.read {
            return Err(GrantError::PermissionDenied);
        }
        if !want_read && !g.perms.write {
            return Err(GrantError::PermissionDenied);
        }
        let end = offset.checked_add(len).ok_or(GrantError::OutOfBounds)?;
        if end > g.len {
            return Err(GrantError::OutOfBounds);
        }
        Ok((g.buf, g.offset + offset))
    }

    /// Safe-copy out of the granted window (grantee reads granter
    /// memory).
    ///
    /// # Errors
    ///
    /// See [`GrantError`].
    pub fn safe_copy_from(
        &self,
        grant: GrantId,
        caller: Endpoint,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, GrantError> {
        let (buf, abs) = self.resolve(grant, caller, true, offset, len)?;
        self.read_own(buf, abs, len)
    }

    /// Safe-copy into the granted window (grantee writes granter
    /// memory).
    ///
    /// # Errors
    ///
    /// See [`GrantError`].
    pub fn safe_copy_to(
        &mut self,
        grant: GrantId,
        caller: Endpoint,
        offset: usize,
        data: &[u8],
    ) -> Result<(), GrantError> {
        let (buf, abs) = self.resolve(grant, caller, false, offset, data.len())?;
        self.write_own(buf, abs, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(slot: u16) -> Endpoint {
        Endpoint::new(slot, 0)
    }

    fn table_with_grant(perms: GrantPerms) -> (MemoryTable, BufId, GrantId) {
        let mut t = MemoryTable::default();
        let buf = t.create_buffer(32);
        t.write_own(buf, 0, &[1, 2, 3, 4]).unwrap();
        let g = t.create_grant(buf, 0, 16, ep(5), perms).unwrap();
        (t, buf, g)
    }

    #[test]
    fn grantee_reads_through_read_grant() {
        let (t, _, g) = table_with_grant(GrantPerms::READ);
        assert_eq!(t.safe_copy_from(g, ep(5), 0, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn non_grantee_is_rejected_by_identity() {
        let (t, _, g) = table_with_grant(GrantPerms::RW);
        assert_eq!(
            t.safe_copy_from(g, ep(6), 0, 4),
            Err(GrantError::NotGrantee)
        );
        // Same slot, different generation: also rejected.
        let stale = Endpoint::new(5, 1);
        assert_eq!(
            t.safe_copy_from(g, stale, 0, 4),
            Err(GrantError::NotGrantee)
        );
    }

    #[test]
    fn direction_permissions_enforced() {
        let (mut t, _, g) = table_with_grant(GrantPerms::READ);
        assert_eq!(
            t.safe_copy_to(g, ep(5), 0, &[9]),
            Err(GrantError::PermissionDenied)
        );
        let (t2, _, g2) = table_with_grant(GrantPerms::WRITE);
        assert_eq!(
            t2.safe_copy_from(g2, ep(5), 0, 1),
            Err(GrantError::PermissionDenied)
        );
    }

    #[test]
    fn writes_land_inside_the_window_only() {
        let mut t = MemoryTable::default();
        let buf = t.create_buffer(32);
        // Window covers bytes 8..24.
        let g = t.create_grant(buf, 8, 16, ep(5), GrantPerms::RW).unwrap();
        t.safe_copy_to(g, ep(5), 0, &[0xAA; 4]).unwrap();
        assert_eq!(t.read_own(buf, 8, 4).unwrap(), vec![0xAA; 4]);
        assert_eq!(
            t.read_own(buf, 0, 8).unwrap(),
            vec![0; 8],
            "prefix untouched"
        );
        // Escaping the window is impossible.
        assert_eq!(
            t.safe_copy_to(g, ep(5), 14, &[1, 2, 3]),
            Err(GrantError::OutOfBounds)
        );
        assert_eq!(
            t.safe_copy_from(g, ep(5), 0, 17),
            Err(GrantError::OutOfBounds)
        );
    }

    #[test]
    fn revocation_is_immediate_and_final() {
        let (mut t, _, g) = table_with_grant(GrantPerms::RW);
        assert!(t.safe_copy_from(g, ep(5), 0, 1).is_ok());
        t.revoke(g).unwrap();
        assert_eq!(
            t.safe_copy_from(g, ep(5), 0, 1),
            Err(GrantError::NoSuchGrant)
        );
        assert_eq!(t.revoke(g), Err(GrantError::NoSuchGrant));
    }

    #[test]
    fn grant_over_bad_range_rejected_at_creation() {
        let mut t = MemoryTable::default();
        let buf = t.create_buffer(8);
        assert_eq!(
            t.create_grant(buf, 4, 8, ep(5), GrantPerms::READ),
            Err(GrantError::OutOfBounds)
        );
        assert_eq!(
            t.create_grant(BufId(9), 0, 1, ep(5), GrantPerms::READ),
            Err(GrantError::NoSuchBuffer)
        );
    }

    #[test]
    fn own_buffer_io_bounds_checked() {
        let mut t = MemoryTable::default();
        let buf = t.create_buffer(4);
        assert_eq!(
            t.write_own(buf, 2, &[1, 2, 3]),
            Err(GrantError::OutOfBounds)
        );
        assert_eq!(t.read_own(buf, usize::MAX, 2), Err(GrantError::OutOfBounds));
        assert!(t.write_own(buf, 0, &[7; 4]).is_ok());
        assert_eq!(t.read_own(buf, 0, 4).unwrap(), vec![7; 4]);
    }
}
