//! The MINIX system-call interface exposed to all user processes.
//!
//! §III-B: "we modified the MINIX 3 kernel to bring the message passing
//! primitives to all user processes. Because the kernel facilitates all of
//! the IPC, it is the ideal location to enforce IPC policy."

use bas_acm::AcId;
use bas_sim::device::DeviceId;
use bas_sim::time::{SimDuration, SimTime};

use crate::endpoint::Endpoint;
use crate::error::MinixError;
use crate::grant::{BufId, GrantId, GrantPerms};
use crate::message::{Message, Payload};

/// A system call trapped to the MINIX kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// Blocking rendezvous send (`ipc_send`).
    Send {
        /// Destination endpoint (must be explicitly supplied — §III-A).
        dest: Endpoint,
        /// Message type, checked against the ACM.
        mtype: u32,
        /// 56-byte payload.
        payload: Payload,
    },
    /// Blocking receive (`ipc_receive`), optionally filtered to one source.
    Receive {
        /// `None` receives from any sender.
        from: Option<Endpoint>,
    },
    /// Atomic send-then-receive-reply (`ipc_sendrec`), the RPC primitive.
    SendRec {
        /// Destination endpoint.
        dest: Endpoint,
        /// Message type.
        mtype: u32,
        /// Payload.
        payload: Payload,
    },
    /// Non-blocking send: fails with `ENOTREADY` instead of blocking.
    NbSend {
        /// Destination endpoint.
        dest: Endpoint,
        /// Message type.
        mtype: u32,
        /// Payload.
        payload: Payload,
    },
    /// Asynchronous notification bit (`ipc_notify`). Carries no payload;
    /// subject to the ACM under [`crate::pm::NOTIFY_MTYPE`].
    Notify {
        /// Destination endpoint.
        dest: Endpoint,
    },
    /// Sleep for a duration of virtual time (CLOCK-task analog).
    Sleep {
        /// How long to sleep.
        duration: SimDuration,
    },
    /// Read the virtual clock.
    GetUptime,
    /// Query the caller's own endpoint, `ac_id` and uid.
    WhoAmI,
    /// Resolve a process name to its endpoint (DS-server analog).
    Lookup {
        /// The registered process name.
        name: String,
    },
    /// Read a device register (drivers only; gated by device ownership).
    DevRead {
        /// Target device.
        dev: DeviceId,
    },
    /// Write a device register (drivers only; gated by device ownership).
    DevWrite {
        /// Target device.
        dev: DeviceId,
        /// Value to write.
        value: i64,
    },
    /// Allocates a zeroed memory buffer (grants substrate, §III-A).
    MemCreate {
        /// Buffer size in bytes.
        size: usize,
    },
    /// Writes into one of the caller's own buffers.
    MemWrite {
        /// Target buffer.
        buf: BufId,
        /// Byte offset.
        offset: usize,
        /// Data to write.
        data: Vec<u8>,
    },
    /// Reads from one of the caller's own buffers.
    MemRead {
        /// Source buffer.
        buf: BufId,
        /// Byte offset.
        offset: usize,
        /// Length to read.
        len: usize,
    },
    /// Creates a memory grant over a window of an owned buffer.
    GrantCreate {
        /// Buffer to expose.
        buf: BufId,
        /// Window start.
        offset: usize,
        /// Window length.
        len: usize,
        /// The sole endpoint allowed to use the grant.
        grantee: Endpoint,
        /// Permitted directions.
        perms: GrantPerms,
    },
    /// Revokes one of the caller's grants.
    GrantRevoke {
        /// The grant to revoke.
        grant: GrantId,
    },
    /// Grantee-side: copy out of a granter's granted window.
    SafeCopyFrom {
        /// The granting process.
        granter: Endpoint,
        /// The grant id (communicated by the granter, e.g. in a message).
        grant: GrantId,
        /// Offset within the window.
        offset: usize,
        /// Length to copy.
        len: usize,
    },
    /// Grantee-side: copy into a granter's granted window.
    SafeCopyTo {
        /// The granting process.
        granter: Endpoint,
        /// The grant id.
        grant: GrantId,
        /// Offset within the window.
        offset: usize,
        /// Data to copy in.
        data: Vec<u8>,
    },
}

impl Syscall {
    /// Convenience constructor for [`Syscall::Send`] with a byte-slice
    /// payload.
    pub fn send(dest: Endpoint, mtype: u32, payload: impl AsRef<[u8]>) -> Syscall {
        Syscall::Send {
            dest,
            mtype,
            payload: Payload::from_bytes(payload.as_ref()),
        }
    }

    /// Convenience constructor for [`Syscall::SendRec`].
    pub fn sendrec(dest: Endpoint, mtype: u32, payload: impl AsRef<[u8]>) -> Syscall {
        Syscall::SendRec {
            dest,
            mtype,
            payload: Payload::from_bytes(payload.as_ref()),
        }
    }

    /// Convenience constructor for [`Syscall::NbSend`].
    pub fn nb_send(dest: Endpoint, mtype: u32, payload: impl AsRef<[u8]>) -> Syscall {
        Syscall::NbSend {
            dest,
            mtype,
            payload: Payload::from_bytes(payload.as_ref()),
        }
    }
}

/// The kernel's reply to a system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The call completed.
    Ok,
    /// A message was delivered to the caller (`Receive`/`SendRec`).
    Msg(Message),
    /// The current virtual time (`GetUptime`).
    Uptime(SimTime),
    /// The caller's identity (`WhoAmI`).
    Ident {
        /// The caller's endpoint.
        endpoint: Endpoint,
        /// The caller's access-control identity.
        ac_id: AcId,
        /// The caller's uid.
        uid: u32,
    },
    /// A name-service result (`Lookup`).
    Resolved(Endpoint),
    /// A device register value (`DevRead`).
    DevValue(i64),
    /// A freshly created buffer (`MemCreate`).
    Buf(BufId),
    /// A freshly created grant (`GrantCreate`).
    Granted(GrantId),
    /// Bytes copied out (`MemRead`, `SafeCopyFrom`).
    Bytes(Vec<u8>),
    /// The call failed.
    Err(MinixError),
}

impl Reply {
    /// Extracts a delivered message, if this reply carries one.
    pub fn message(&self) -> Option<&Message> {
        match self {
            Reply::Msg(m) => Some(m),
            _ => None,
        }
    }

    /// Extracts the error, if this reply is one.
    pub fn err(&self) -> Option<MinixError> {
        match self {
            Reply::Err(e) => Some(*e),
            _ => None,
        }
    }

    /// True if the reply is not an error.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Err(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_variants() {
        let ep = Endpoint::new(1, 0);
        match Syscall::send(ep, 3, [1u8, 2]) {
            Syscall::Send {
                dest,
                mtype,
                payload,
            } => {
                assert_eq!(dest, ep);
                assert_eq!(mtype, 3);
                assert_eq!(payload.as_bytes()[..2], [1, 2]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(matches!(
            Syscall::sendrec(ep, 1, []),
            Syscall::SendRec { .. }
        ));
        assert!(matches!(
            Syscall::nb_send(ep, 1, []),
            Syscall::NbSend { .. }
        ));
    }

    #[test]
    fn reply_accessors() {
        let msg = Message::new(Endpoint::new(2, 0), 1, Payload::zeroed());
        assert_eq!(Reply::Msg(msg).message(), Some(&msg));
        assert_eq!(Reply::Ok.message(), None);
        assert_eq!(
            Reply::Err(MinixError::CallDenied).err(),
            Some(MinixError::CallDenied)
        );
        assert!(Reply::Ok.is_ok());
        assert!(!Reply::Err(MinixError::NotReady).is_ok());
    }
}
