//! MINIX-style error codes surfaced to user processes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors returned by the simulated MINIX kernel and PM server.
///
/// Named after the real MINIX 3 errno values where one exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MinixError {
    /// Destination or source endpoint is invalid, dead, or from a stale
    /// generation (`EDEADSRCDST`).
    DeadSourceOrDestination,
    /// The ACM denied the transfer (`ECALLDENIED`): the paper's kernel
    /// "will be denied and the request will be dropped".
    CallDenied,
    /// Non-blocking send found no ready receiver (`ENOTREADY`).
    NotReady,
    /// The caller lacks permission for a PM operation (`EPERM`).
    PermissionDenied,
    /// The process table is full (`ENOMEM` analog, `EAGAIN` in POSIX fork).
    ProcessTableFull,
    /// Unknown program name passed to `fork2` (`ESRCH` analog).
    NoSuchProgram,
    /// Target process does not exist (`ESRCH`).
    NoSuchProcess,
    /// A per-identity syscall quota was exhausted (the ACM quota
    /// extension).
    QuotaExceeded,
    /// Device not present or not owned by the caller (`ENXIO`/`EACCES`).
    DeviceAccessDenied,
    /// Malformed request payload (`EINVAL`).
    InvalidArgument,
}

impl MinixError {
    /// Stable numeric code used inside message payloads.
    pub const fn code(self) -> u32 {
        match self {
            MinixError::DeadSourceOrDestination => 1,
            MinixError::CallDenied => 2,
            MinixError::NotReady => 3,
            MinixError::PermissionDenied => 4,
            MinixError::ProcessTableFull => 5,
            MinixError::NoSuchProgram => 6,
            MinixError::NoSuchProcess => 7,
            MinixError::QuotaExceeded => 8,
            MinixError::DeviceAccessDenied => 9,
            MinixError::InvalidArgument => 10,
        }
    }

    /// Inverse of [`MinixError::code`].
    pub const fn from_code(code: u32) -> Option<MinixError> {
        Some(match code {
            1 => MinixError::DeadSourceOrDestination,
            2 => MinixError::CallDenied,
            3 => MinixError::NotReady,
            4 => MinixError::PermissionDenied,
            5 => MinixError::ProcessTableFull,
            6 => MinixError::NoSuchProgram,
            7 => MinixError::NoSuchProcess,
            8 => MinixError::QuotaExceeded,
            9 => MinixError::DeviceAccessDenied,
            10 => MinixError::InvalidArgument,
            _ => return None,
        })
    }
}

impl fmt::Display for MinixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MinixError::DeadSourceOrDestination => "dead or invalid source/destination endpoint",
            MinixError::CallDenied => "call denied by access control matrix",
            MinixError::NotReady => "destination not ready for non-blocking send",
            MinixError::PermissionDenied => "permission denied",
            MinixError::ProcessTableFull => "process table full",
            MinixError::NoSuchProgram => "no such program image",
            MinixError::NoSuchProcess => "no such process",
            MinixError::QuotaExceeded => "syscall quota exceeded",
            MinixError::DeviceAccessDenied => "device access denied",
            MinixError::InvalidArgument => "invalid argument",
        };
        f.write_str(s)
    }
}

impl std::error::Error for MinixError {}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [MinixError; 10] = [
        MinixError::DeadSourceOrDestination,
        MinixError::CallDenied,
        MinixError::NotReady,
        MinixError::PermissionDenied,
        MinixError::ProcessTableFull,
        MinixError::NoSuchProgram,
        MinixError::NoSuchProcess,
        MinixError::QuotaExceeded,
        MinixError::DeviceAccessDenied,
        MinixError::InvalidArgument,
    ];

    #[test]
    fn codes_roundtrip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for e in ALL {
            assert_eq!(MinixError::from_code(e.code()), Some(e));
            assert!(seen.insert(e.code()), "duplicate code {}", e.code());
        }
        assert_eq!(MinixError::from_code(0), None);
        assert_eq!(MinixError::from_code(999), None);
    }

    #[test]
    fn display_is_lowercase_prose() {
        for e in ALL {
            let s = format!("{e}");
            assert!(!s.is_empty());
            assert_eq!(s, s.to_lowercase());
        }
    }
}
