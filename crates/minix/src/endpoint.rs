//! MINIX endpoints: process-slot number plus generation.
//!
//! §III-A: "An endpoint identifies a process uniquely among the operating
//! system. It is composed of the process slot number concatenated with a
//! generation number for IPC addressing which is stored in the PCB."

use std::fmt;

use serde::{Deserialize, Serialize};

/// A MINIX IPC address.
///
/// The generation number makes endpoints *temporally* unique: when a slot
/// is reused after a process dies, the generation increments, so messages
/// addressed to the dead process cannot reach its successor.
///
/// ```
/// use bas_minix::endpoint::Endpoint;
///
/// let e = Endpoint::new(5, 2);
/// assert_eq!(e.slot(), 5);
/// assert_eq!(e.generation(), 2);
/// assert_eq!(Endpoint::from_raw(e.as_raw()), e);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    slot: u16,
    generation: u16,
}

impl Endpoint {
    /// Creates an endpoint from slot and generation.
    pub const fn new(slot: u16, generation: u16) -> Self {
        Endpoint { slot, generation }
    }

    /// The process-table slot.
    pub const fn slot(self) -> u16 {
        self.slot
    }

    /// The slot's generation at endpoint creation.
    pub const fn generation(self) -> u16 {
        self.generation
    }

    /// Packs the endpoint into the 4-byte wire form used in message
    /// headers (slot in the high half-word).
    pub const fn as_raw(self) -> u32 {
        (self.slot as u32) << 16 | self.generation as u32
    }

    /// Unpacks a wire-form endpoint.
    pub const fn from_raw(raw: u32) -> Self {
        Endpoint {
            slot: (raw >> 16) as u16,
            generation: raw as u16,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}.{}", self.slot, self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip_covers_extremes() {
        for (slot, generation) in [(0, 0), (1, 0), (0xffff, 0xffff), (7, 32_000)] {
            let e = Endpoint::new(slot, generation);
            assert_eq!(Endpoint::from_raw(e.as_raw()), e);
        }
    }

    #[test]
    fn different_generations_differ() {
        assert_ne!(Endpoint::new(3, 0), Endpoint::new(3, 1));
        assert_ne!(Endpoint::new(3, 0).as_raw(), Endpoint::new(3, 1).as_raw());
    }

    #[test]
    fn display_shows_slot_and_generation() {
        assert_eq!(format!("{}", Endpoint::new(4, 9)), "ep4.9");
    }
}
