//! Process control blocks.
//!
//! §III-B: "Our second modification to MINIX 3 is on the process control
//! block (PCB) data structure. We added a field called access control ID
//! (ac_id) [...] We use the added ac_id field to uniquely identify each
//! process and enforce the control policy."

use bas_acm::AcId;
use bas_sim::arena::MsgRef;
use bas_sim::process::Pid;

use crate::endpoint::Endpoint;
use crate::grant::MemoryTable;

/// Why a process is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Blocked in `ipc_send` waiting for `dest` to receive. The outgoing
    /// payload is parked in the kernel message arena; only its 8-byte
    /// handle sits in the PCB.
    Sending {
        /// Rendezvous partner.
        dest: Endpoint,
        /// Pending message type.
        mtype: u32,
        /// Arena handle to the staged payload (owns one slot reference;
        /// the kernel frees it at delivery or abort).
        msg: MsgRef,
        /// True if this send is the first half of a `sendrec` and the
        /// process must transition to receiving the reply afterwards.
        sendrec: bool,
    },
    /// Blocked in `ipc_receive`.
    Receiving {
        /// Source filter (`None` = any).
        from: Option<Endpoint>,
    },
}

/// The kernel-held state of one process.
#[derive(Debug)]
pub struct Pcb {
    /// Kernel process id (slot index).
    pub pid: Pid,
    /// IPC address (slot + generation).
    pub endpoint: Endpoint,
    /// Registered name (for the name service and traces).
    pub name: String,
    /// The paper's access-control identity, immutable after load.
    pub ac_id: AcId,
    /// POSIX-style uid; *not* consulted for IPC policy (the point of the
    /// paper: "user privilege is not directly tied with access control and
    /// IPC").
    pub uid: u32,
    /// Pending asynchronous notifications, by sender endpoint, in arrival
    /// order.
    pub pending_notifies: Vec<Endpoint>,
    /// The process's simulated memory: owned buffers plus outstanding
    /// grants (§III-A's "memory grants").
    pub memory: MemoryTable,
}

impl Pcb {
    /// Creates a PCB.
    pub fn new(
        pid: Pid,
        endpoint: Endpoint,
        name: impl Into<String>,
        ac_id: AcId,
        uid: u32,
    ) -> Self {
        Pcb {
            pid,
            endpoint,
            name: name.into(),
            ac_id,
            uid,
            pending_notifies: Vec::new(),
            memory: MemoryTable::default(),
        }
    }

    /// Queues a notification from `source` unless one from the same source
    /// is already pending (MINIX notifications are single bits per
    /// sender).
    pub fn queue_notify(&mut self, source: Endpoint) {
        if !self.pending_notifies.contains(&source) {
            self.pending_notifies.push(source);
        }
    }

    /// Dequeues the first pending notification matching the receive
    /// filter.
    pub fn take_notify(&mut self, filter: Option<Endpoint>) -> Option<Endpoint> {
        let idx = match filter {
            None => (!self.pending_notifies.is_empty()).then_some(0)?,
            Some(f) => self.pending_notifies.iter().position(|&s| s == f)?,
        };
        Some(self.pending_notifies.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcb() -> Pcb {
        Pcb::new(Pid::new(1), Endpoint::new(1, 0), "t", AcId::new(100), 1000)
    }

    #[test]
    fn notify_bits_deduplicate_per_sender() {
        let mut p = pcb();
        let a = Endpoint::new(2, 0);
        p.queue_notify(a);
        p.queue_notify(a);
        assert_eq!(p.pending_notifies.len(), 1);
    }

    #[test]
    fn take_notify_respects_filter() {
        let mut p = pcb();
        let a = Endpoint::new(2, 0);
        let b = Endpoint::new(3, 0);
        p.queue_notify(a);
        p.queue_notify(b);
        assert_eq!(p.take_notify(Some(b)), Some(b));
        assert_eq!(p.take_notify(Some(b)), None);
        assert_eq!(p.take_notify(None), Some(a));
        assert_eq!(p.take_notify(None), None);
    }
}
