//! The simulated security-enhanced MINIX 3 kernel.
//!
//! Everything the paper relies on happens here, at the same enforcement
//! points as in the real system:
//!
//! 1. **All IPC transits the kernel** — there is no user-space channel.
//! 2. **Sender identity is kernel-stamped** — `do_send` writes the caller's
//!    endpoint into the delivered message; user input cannot influence it.
//! 3. **The ACM is consulted on every transfer** — before rendezvous, on
//!    non-blocking sends, and on notifications; denied requests are dropped
//!    with `ECALLDENIED`.
//! 4. **PM operations are messages** — `fork2`/`kill`/`exit` reach the PM
//!    server only through `do_send`, so the ACM gates them too.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use bas_acm::{
    AcId, AccessControlMatrix, DelegationLog, MsgType, MsgTypeSet, QuotaTable, SyscallClass,
};
use bas_sim::arena::{MsgArena, MsgRef};
use bas_sim::caps::{CapChurnOp, CapLog, CapOp, CapTrace, ChurnKind};
use bas_sim::clock::{CostModel, VirtualClock};
use bas_sim::device::{DeviceBus, DeviceId};
use bas_sim::fault::{IpcFault, IpcFaultState};
use bas_sim::metrics::KernelMetrics;
use bas_sim::process::{Action, Pid, ProcState, ProgramFactory};
use bas_sim::sched::RunQueue;
use bas_sim::time::SimDuration;
use bas_sim::time::SimTime;
use bas_sim::timer::TimerQueue;
use bas_sim::trace::TraceLog;

use crate::endpoint::Endpoint;
use crate::error::MinixError;
use crate::grant::{GrantError, GrantId};
use crate::message::{Message, Payload};
use crate::pcb::{BlockReason, Pcb};
use crate::pm;
use crate::syscall::{Reply, Syscall};

/// A boxed MINIX user process.
pub type MinixProcess = Box<dyn bas_sim::process::Process<Syscall = Syscall, Reply = Reply>>;

/// Kernel construction parameters.
pub struct MinixConfig {
    /// Maximum number of process slots (including the PM slot). The fork
    /// bomb experiment exhausts this.
    pub max_procs: usize,
    /// Virtual-time cost model.
    pub cost_model: CostModel,
    /// The compiled-in access-control matrix.
    pub acm: AccessControlMatrix,
    /// Optional per-identity syscall quotas (the paper's future-work
    /// extension; empty = unlimited).
    pub quotas: QuotaTable,
    /// Which access-control identity owns each device.
    pub device_owners: BTreeMap<DeviceId, AcId>,
    /// Trace capacity in events.
    pub trace_capacity: usize,
}

impl Default for MinixConfig {
    fn default() -> Self {
        MinixConfig {
            max_procs: 32,
            cost_model: CostModel::default(),
            acm: AccessControlMatrix::deny_all(),
            quotas: QuotaTable::new(),
            device_owners: BTreeMap::new(),
            trace_capacity: TraceLog::DEFAULT_CAPACITY,
        }
    }
}

struct ProcEntry {
    pcb: Pcb,
    state: ProcState<BlockReason>,
    logic: Option<MinixProcess>,
    pending_reply: Option<Reply>,
}

struct Slot {
    generation: u16,
    entry: Option<ProcEntry>,
}

/// The simulated MINIX 3 kernel with ACM enforcement.
pub struct MinixKernel {
    slots: Vec<Slot>,
    run_queue: RunQueue,
    timers: TimerQueue,
    clock: VirtualClock,
    metrics: KernelMetrics,
    trace: TraceLog,
    devices: DeviceBus,
    programs: Vec<(String, ProgramFactory<Syscall, Reply>)>,
    names: BTreeMap<String, Endpoint>,
    /// The live ACM. Shared (`Arc`) so a fleet of forked kernels can point
    /// at one boot matrix; copy-on-write via [`Arc::make_mut`] the moment
    /// a churn op mutates it, so sharing never changes semantics.
    acm: Arc<AccessControlMatrix>,
    /// The boot-time ACM, kept so [`Self::reset_to_boot`] can restore the
    /// pristine matrix after runtime churn.
    boot_acm: Arc<AccessControlMatrix>,
    quotas: QuotaTable,
    device_owners: BTreeMap<DeviceId, AcId>,
    last_run: Option<Pid>,
    ipc_faults: IpcFaultState,
    /// Fixed-slot message arena: every in-flight payload lives here and
    /// moves as an 8-byte [`MsgRef`] (blocked-sender PCBs, the dup stash).
    /// Bytes are copied once in at `do_send` and once out at delivery.
    arena: MsgArena,
    /// Duplicated messages awaiting redelivery: `(source, dest, mtype,
    /// slot)`. Rendezvous IPC has no queue to double-enqueue into, so a
    /// `Duplicate` fault refcounts the slot here (no byte copy) and
    /// `do_receive` replays it on the destination's next receive.
    dup_stash: VecDeque<(Endpoint, Endpoint, u32, MsgRef)>,
    /// Capability-operation event stream (disabled by default).
    cap_log: CapLog,
    /// Armed churn ops: each fires once its matching successful admission
    /// check count reaches zero — deterministically *inside* the
    /// check→delivery window, which is the race the detector hunts.
    armed_churn: Vec<(CapChurnOp, u32)>,
    /// Provenance of runtime ACM mutations (audited by `bas-analysis`).
    delegations: DelegationLog,
}

impl std::fmt::Debug for MinixKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MinixKernel")
            .field("now", &self.clock.now())
            .field("processes", &self.process_count())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl MinixKernel {
    /// Boots a kernel: slot 0 is reserved for the PM server.
    pub fn new(mut config: MinixConfig) -> Self {
        let acm = Arc::new(std::mem::replace(
            &mut config.acm,
            AccessControlMatrix::deny_all(),
        ));
        MinixKernel::with_shared_acm(config, acm)
    }

    /// Boots a kernel whose ACM is shared with other kernels behind an
    /// `Arc` — the snapshot-fork boot path, where every benign instance of
    /// a template points at one boot matrix. `config.acm` is ignored.
    /// Runtime churn copies on write, so sharing is unobservable.
    pub fn with_shared_acm(config: MinixConfig, acm: Arc<AccessControlMatrix>) -> Self {
        assert!(config.max_procs >= 2, "need at least PM plus one process");
        let mut slots = Vec::with_capacity(config.max_procs);
        for _ in 0..config.max_procs {
            slots.push(Slot {
                generation: 0,
                entry: None,
            });
        }
        let mut names = BTreeMap::new();
        names.insert("pm".to_string(), pm::PM_ENDPOINT);
        MinixKernel {
            slots,
            run_queue: RunQueue::new(),
            timers: TimerQueue::new(),
            clock: VirtualClock::new(config.cost_model),
            metrics: KernelMetrics::default(),
            trace: TraceLog::with_capacity(config.trace_capacity),
            devices: DeviceBus::new(),
            programs: Vec::new(),
            names,
            acm: acm.clone(),
            boot_acm: acm,
            quotas: config.quotas,
            device_owners: config.device_owners,
            last_run: None,
            ipc_faults: IpcFaultState::default(),
            // One parked message per process slot is the structural bound
            // for rendezvous IPC; pre-warming keeps the hot path free of
            // slot-table growth.
            arena: MsgArena::with_capacity(config.max_procs),
            dup_stash: VecDeque::new(),
            cap_log: CapLog::new(),
            armed_churn: Vec::new(),
            delegations: DelegationLog::new(),
        }
    }

    // ----- construction-time API ------------------------------------------------

    /// Registers a program image that `fork2` can instantiate; returns its
    /// program id.
    pub fn register_program(
        &mut self,
        name: impl Into<String>,
        factory: ProgramFactory<Syscall, Reply>,
    ) -> u32 {
        self.programs.push((name.into(), factory));
        (self.programs.len() - 1) as u32
    }

    /// Loads a process directly (boot-time loader path; at runtime use PM
    /// `fork2` messages).
    ///
    /// # Errors
    ///
    /// Returns [`MinixError::ProcessTableFull`] when no slot is free.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        ac_id: AcId,
        uid: u32,
        logic: MinixProcess,
    ) -> Result<Endpoint, MinixError> {
        let name = name.into();
        let slot_idx = self
            .slots
            .iter()
            .enumerate()
            .skip(1) // slot 0 is PM
            .find(|(_, s)| s.entry.is_none())
            .map(|(i, _)| i)
            .ok_or(MinixError::ProcessTableFull)?;
        let generation = self.slots[slot_idx].generation;
        let endpoint = Endpoint::new(slot_idx as u16, generation);
        let pid = Pid::new(slot_idx as u32);
        self.slots[slot_idx].entry = Some(ProcEntry {
            pcb: Pcb::new(pid, endpoint, name.clone(), ac_id, uid),
            state: ProcState::Runnable,
            logic: Some(logic),
            pending_reply: None,
        });
        self.names.insert(name.clone(), endpoint);
        self.run_queue.enqueue(pid);
        self.metrics.processes_created += 1;
        self.trace
            .record_with(self.clock.now(), Some(pid), "proc.spawn", || {
                format!("{name} ac={ac_id} uid={uid} ep={endpoint}")
            });
        Ok(endpoint)
    }

    /// Mutable access to the device bus, for installing plant devices.
    pub fn devices_mut(&mut self) -> &mut DeviceBus {
        &mut self.devices
    }

    /// Returns the kernel to the state it had immediately after
    /// [`Self::new`] plus `register_program` calls — the snapshot-fork
    /// boot path. Registered programs and installed devices survive (both
    /// are boot-template state); everything mutable — processes, queues,
    /// timers, clock, metrics, traces, arena, runtime ACM churn, quota
    /// usage — is restored to its pristine boot value, reusing the live
    /// allocations instead of reallocating them. The caller re-runs the
    /// same boot-time `spawn` calls afterwards; byte-identity with a cold
    /// boot follows because the re-run population code observes exactly
    /// the state a fresh kernel presents.
    pub fn reset_to_boot(&mut self) {
        for slot in &mut self.slots {
            // Only touched slots need work: a slot with generation 0 and
            // no entry is already in its post-`new` state.
            if slot.generation != 0 || slot.entry.is_some() {
                slot.generation = 0;
                slot.entry = None;
            }
        }
        self.run_queue.clear();
        self.timers.clear();
        self.clock.reset();
        self.metrics = KernelMetrics::default();
        self.trace.clear();
        // The PM name is the only boot-time entry; every other name was
        // inserted by a spawn and dies with its process table.
        self.names.retain(|name, _| name == "pm");
        self.acm = self.boot_acm.clone();
        self.quotas.reset_usage();
        self.last_run = None;
        self.ipc_faults = IpcFaultState::default();
        self.arena.reset_to_capacity(self.slots.len());
        self.dup_stash.clear();
        self.cap_log = CapLog::new();
        self.armed_churn.clear();
        self.delegations = DelegationLog::new();
    }

    // ----- fault injection -------------------------------------------------------

    /// Armed one-shot IPC faults, consumed by application sends *after*
    /// the ACM and quota gates (PM traffic is exempt).
    pub fn ipc_faults_mut(&mut self) -> &mut IpcFaultState {
        &mut self.ipc_faults
    }

    /// Read access to the IPC fault queue (applied/pending counters).
    pub fn ipc_faults(&self) -> &IpcFaultState {
        &self.ipc_faults
    }

    /// Kills the named process outright (a simulated hardware/software
    /// crash — distinct from a PM kill, which is subject to DAC). Returns
    /// false if no live process bears the name. PM itself cannot crash.
    pub fn kill_named(&mut self, name: &str) -> bool {
        let Some(pid) = self.endpoint_of(name).and_then(|ep| self.lookup_live(ep)) else {
            return false;
        };
        self.trace
            .record_with(self.clock.now(), Some(pid), "fault.crash", || {
                format!("killed {name}")
            });
        self.terminate(pid);
        true
    }

    /// Jumps the kernel clock forward by `d` without running anyone — a
    /// tick-skew fault. The plant integrates the gap with whatever the
    /// actuators last held.
    pub fn skew_clock(&mut self, d: SimDuration) {
        self.clock.advance(d);
        self.trace
            .record_with(self.clock.now(), None, "fault.clock", || {
                format!("skewed +{}ms", d.as_millis())
            });
    }

    // ----- introspection --------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Kernel counters.
    pub fn metrics(&self) -> &KernelMetrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Disables tracing (throughput benchmarks).
    pub fn disable_trace(&mut self) {
        self.trace.disable();
    }

    /// The compiled-in ACM.
    pub fn acm(&self) -> &AccessControlMatrix {
        &self.acm
    }

    /// Enables capability-operation recording (idempotent).
    pub fn enable_cap_trace(&mut self) {
        self.cap_log.enable();
    }

    /// Snapshots the capability-operation stream.
    pub fn cap_trace(&self) -> CapTrace {
        self.cap_log.trace()
    }

    /// Provenance log of runtime ACM mutations.
    pub fn delegations(&self) -> &DelegationLog {
        &self.delegations
    }

    /// Applies a mid-run capability mutation immediately. `subject` and
    /// `object` are process names; the op edits the ACM row between their
    /// access-control identities. Returns `false` if either name is
    /// unknown or the op was a no-op (e.g. revoking an absent row).
    pub fn apply_cap_churn(&mut self, op: &CapChurnOp) -> bool {
        let Some(sub_ac) = self.ac_of_name(&op.subject) else {
            return false;
        };
        let Some(dst_ac) = self.ac_of_name(&op.object) else {
            return false;
        };
        // Platform interpretation of the abstract op: grants install the
        // full type set; attenuation strips every payload-carrying type,
        // keeping only acknowledgments.
        let types = match op.kind {
            ChurnKind::Attenuate => MsgTypeSet::of([MsgType::ACK]),
            _ => MsgTypeSet::All,
        };
        self.churn_acm(
            op.kind,
            op.actor.clone(),
            pm::PM_AC_ID,
            sub_ac,
            dst_ac,
            types,
            &op.subject,
            &op.object,
        )
    }

    /// Arms `op` to fire right after the `after_checks`-th *successful*
    /// admission check on the same `subject → object` row. `0` fires on
    /// the next matching check. Firing inside the check→delivery window is
    /// what makes TOCTOU schedules deterministic on rendezvous IPC, where
    /// the parked-send window is microseconds wide.
    pub fn arm_cap_churn(&mut self, op: &CapChurnOp, after_checks: u32) {
        self.armed_churn.push((op.clone(), after_checks));
    }

    /// Resolves a process name to its access-control identity.
    fn ac_of_name(&self, name: &str) -> Option<AcId> {
        if name == "pm" {
            return Some(pm::PM_AC_ID);
        }
        let ep = self.names.get(name).copied()?;
        let pid = self.lookup_live(ep)?;
        Some(self.entry_ref(pid)?.pcb.ac_id)
    }

    /// Resolves an access-control identity back to a live process name
    /// (the first live holder; scenario identities are one-per-process).
    fn name_of_ac(&self, ac: AcId) -> Option<String> {
        if ac == pm::PM_AC_ID {
            return Some("pm".to_string());
        }
        self.slots.iter().find_map(|s| {
            let e = s.entry.as_ref()?;
            (e.pcb.ac_id == ac).then(|| e.pcb.name.clone())
        })
    }

    /// The shared ACM-churn routine behind both the platform hook and the
    /// PM RPCs: mutates the matrix, keeps delegation provenance, and emits
    /// the write event. `types` is the installed set for grants and the
    /// keep set for attenuation (ignored by revoke). Returns whether the
    /// matrix changed.
    #[allow(clippy::too_many_arguments)]
    fn churn_acm(
        &mut self,
        kind: ChurnKind,
        actor: String,
        grantor: AcId,
        sub_ac: AcId,
        dst_ac: AcId,
        types: MsgTypeSet,
        sub_name: &str,
        dst_name: &str,
    ) -> bool {
        // Copy-on-write: churn is the only ACM mutation, so forked kernels
        // share the boot matrix until the first churn op unshares it here.
        let changed = match kind {
            ChurnKind::Grant => {
                Arc::make_mut(&mut self.acm).grant_types(sub_ac, dst_ac, types);
                self.delegations.delegate(grantor, sub_ac, dst_ac, types);
                true
            }
            ChurnKind::Attenuate => {
                self.delegations.attenuate(sub_ac, dst_ac, types);
                Arc::make_mut(&mut self.acm).attenuate_types(sub_ac, dst_ac, types)
            }
            ChurnKind::Revoke => {
                self.delegations.revoke(sub_ac, dst_ac);
                Arc::make_mut(&mut self.acm).revoke_channel(sub_ac, dst_ac)
            }
        };
        let op = match kind {
            ChurnKind::Grant => CapOp::Grant,
            ChurnKind::Attenuate => CapOp::Attenuate,
            ChurnKind::Revoke => CapOp::Revoke,
        };
        self.cap_log.record_with(self.clock.now(), op, changed, || {
            (
                actor.clone(),
                format!("acm:{sub_ac}->{dst_ac}"),
                dst_name.to_string(),
            )
        });
        self.trace
            .record_with(self.clock.now(), None, "cap.churn", || {
                format!(
                    "{actor}: {} {sub_name}({sub_ac}) -> {dst_name}({dst_ac})",
                    kind.label()
                )
            });
        changed
    }

    /// Fires any armed churn op matching a successful admission check on
    /// `sub_name → dst_name`.
    fn fire_armed_churn(&mut self, sub_name: &str, dst_name: &str) {
        let mut due = Vec::new();
        self.armed_churn.retain_mut(|(op, remaining)| {
            if op.subject == sub_name && op.object == dst_name {
                if *remaining == 0 {
                    due.push(op.clone());
                    return false;
                }
                *remaining -= 1;
            }
            true
        });
        for op in due {
            self.apply_cap_churn(&op);
        }
    }

    /// Reads a window of a live process's memory buffer — a debugger-style
    /// introspection hook used by tests and experiments (e.g. to inspect
    /// the controller's environment log).
    ///
    /// # Errors
    ///
    /// Returns `None` if the endpoint is dead or the read is invalid.
    pub fn read_process_buffer(
        &self,
        ep: Endpoint,
        buf: crate::grant::BufId,
        offset: usize,
        len: usize,
    ) -> Option<Vec<u8>> {
        let pid = self.lookup_live(ep)?;
        self.entry_ref(pid)?
            .pcb
            .memory
            .read_own(buf, offset, len)
            .ok()
    }

    /// True if the endpoint names a live process (PM counts as live).
    pub fn is_alive(&self, ep: Endpoint) -> bool {
        if ep == pm::PM_ENDPOINT {
            return true;
        }
        self.lookup_live(ep).is_some()
    }

    /// Resolves a registered process name.
    pub fn endpoint_of(&self, name: &str) -> Option<Endpoint> {
        self.names
            .get(name)
            .copied()
            .filter(|&ep| self.is_alive(ep))
    }

    /// Number of live user processes (excluding PM).
    pub fn process_count(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_some()).count()
    }

    /// Names of live processes, sorted.
    pub fn alive_process_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .slots
            .iter()
            .filter_map(|s| s.entry.as_ref().map(|e| e.pcb.name.clone()))
            .collect();
        v.sort();
        v
    }

    // ----- execution ------------------------------------------------------------

    /// Runs until virtual time reaches `t` (or everything is idle with no
    /// timer before `t`, in which case the clock advances to `t`).
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            self.fire_due_timers();
            if self.clock.now() >= t {
                return;
            }
            if let Some(pid) = self.run_queue.dequeue() {
                self.dispatch(pid);
            } else {
                match self.timers.next_deadline() {
                    Some(d) if d <= t => self.clock.advance_to(d),
                    _ => {
                        self.clock.advance_to(t);
                        return;
                    }
                }
            }
        }
    }

    /// Runs until no process is runnable and no timer is armed, up to
    /// `max_steps` dispatches (a safety bound for tests).
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut steps = 0;
        loop {
            self.fire_due_timers();
            let Some(pid) = self.run_queue.dequeue() else {
                match self.timers.next_deadline() {
                    Some(d) => {
                        self.clock.advance_to(d);
                        continue;
                    }
                    None => return steps,
                }
            };
            self.dispatch(pid);
            steps += 1;
            assert!(steps < 5_000_000, "kernel failed to quiesce");
        }
    }

    fn fire_due_timers(&mut self) {
        for pid in self.timers.pop_due(self.clock.now()) {
            if let Some(entry) = self.entry_mut(pid) {
                if matches!(entry.state, ProcState::Sleeping) {
                    entry.state = ProcState::Runnable;
                    entry.pending_reply = Some(Reply::Ok);
                    self.run_queue.enqueue(pid);
                }
            }
        }
    }

    fn dispatch(&mut self, pid: Pid) {
        let Some(entry) = self.entry_mut(pid) else {
            return;
        };
        if !entry.state.is_runnable() {
            return; // stale queue entry
        }
        let mut logic = entry.logic.take().expect("runnable process has logic");
        let reply = entry.pending_reply.take();

        if self.last_run != Some(pid) {
            self.clock.charge_context_switch();
            self.metrics.context_switches += 1;
            self.last_run = Some(pid);
        }
        self.clock.charge_user_compute();

        let action = logic.resume(reply);

        // The process may have been... it cannot have been killed during
        // resume (resume has no kernel access), so the slot is intact.
        if let Some(entry) = self.entry_mut(pid) {
            entry.logic = Some(logic);
        }

        match action {
            Action::Syscall(sys) => {
                self.metrics.kernel_entries += 1;
                self.clock.charge_kernel_entry();
                self.clock.charge_syscall_dispatch();
                self.handle_syscall(pid, sys);
            }
            Action::Yield => {
                self.run_queue.enqueue(pid);
            }
            Action::Exit(code) => {
                self.trace
                    .record_with(self.clock.now(), Some(pid), "proc.exit", || {
                        format!("code={code}")
                    });
                self.terminate(pid);
            }
        }
    }

    // ----- syscall handling -----------------------------------------------------

    fn handle_syscall(&mut self, pid: Pid, sys: Syscall) {
        match sys {
            Syscall::Send {
                dest,
                mtype,
                payload,
            } => self.do_send(pid, dest, mtype, payload, true, false),
            Syscall::SendRec {
                dest,
                mtype,
                payload,
            } => self.do_send(pid, dest, mtype, payload, true, true),
            Syscall::NbSend {
                dest,
                mtype,
                payload,
            } => self.do_send(pid, dest, mtype, payload, false, false),
            Syscall::Receive { from } => self.do_receive(pid, from),
            Syscall::Notify { dest } => self.do_notify(pid, dest),
            Syscall::Sleep { duration } => {
                let deadline = self.clock.now() + duration;
                self.timers.arm(deadline, pid);
                if let Some(entry) = self.entry_mut(pid) {
                    entry.state = ProcState::Sleeping;
                }
            }
            Syscall::GetUptime => {
                let now = self.clock.now();
                self.ready_with(pid, Reply::Uptime(now));
            }
            Syscall::WhoAmI => {
                let reply = self.entry_ref(pid).map(|e| Reply::Ident {
                    endpoint: e.pcb.endpoint,
                    ac_id: e.pcb.ac_id,
                    uid: e.pcb.uid,
                });
                if let Some(r) = reply {
                    self.ready_with(pid, r);
                }
            }
            Syscall::Lookup { name } => {
                let reply = match self.endpoint_of(&name) {
                    Some(ep) => Reply::Resolved(ep),
                    None => Reply::Err(MinixError::NoSuchProcess),
                };
                self.ready_with(pid, reply);
            }
            Syscall::DevRead { dev } => self.do_device(pid, dev, None),
            Syscall::DevWrite { dev, value } => self.do_device(pid, dev, Some(value)),
            Syscall::MemCreate { size } => {
                let reply = match self.entry_mut(pid) {
                    Some(e) => Reply::Buf(e.pcb.memory.create_buffer(size)),
                    None => return,
                };
                self.ready_with(pid, reply);
            }
            Syscall::MemWrite { buf, offset, data } => {
                let reply = match self.entry_mut(pid) {
                    Some(e) => match e.pcb.memory.write_own(buf, offset, &data) {
                        Ok(()) => Reply::Ok,
                        Err(err) => Reply::Err(grant_errno(err)),
                    },
                    None => return,
                };
                self.ready_with(pid, reply);
            }
            Syscall::MemRead { buf, offset, len } => {
                let reply = match self.entry_ref(pid) {
                    Some(e) => match e.pcb.memory.read_own(buf, offset, len) {
                        Ok(bytes) => Reply::Bytes(bytes),
                        Err(err) => Reply::Err(grant_errno(err)),
                    },
                    None => return,
                };
                self.ready_with(pid, reply);
            }
            Syscall::GrantCreate {
                buf,
                offset,
                len,
                grantee,
                perms,
            } => {
                let reply = match self.entry_mut(pid) {
                    Some(e) => match e.pcb.memory.create_grant(buf, offset, len, grantee, perms) {
                        Ok(g) => Reply::Granted(g),
                        Err(err) => Reply::Err(grant_errno(err)),
                    },
                    None => return,
                };
                self.ready_with(pid, reply);
            }
            Syscall::GrantRevoke { grant } => {
                let reply = match self.entry_mut(pid) {
                    Some(e) => match e.pcb.memory.revoke(grant) {
                        Ok(()) => Reply::Ok,
                        Err(err) => Reply::Err(grant_errno(err)),
                    },
                    None => return,
                };
                self.ready_with(pid, reply);
            }
            Syscall::SafeCopyFrom {
                granter,
                grant,
                offset,
                len,
            } => self.do_safe_copy(pid, granter, grant, offset, SafeCopyDir::From(len)),
            Syscall::SafeCopyTo {
                granter,
                grant,
                offset,
                data,
            } => self.do_safe_copy(pid, granter, grant, offset, SafeCopyDir::To(data)),
        }
    }

    /// Performs a safe-copy on behalf of `caller` against `granter`'s
    /// grant table. The caller's identity is its kernel-held endpoint —
    /// exactly as unforgeable as message sources — and the *grant itself*
    /// is the authorization, so no ACM row is consulted: the granter
    /// opted in explicitly.
    fn do_safe_copy(
        &mut self,
        caller: Pid,
        granter: Endpoint,
        grant: GrantId,
        offset: usize,
        dir: SafeCopyDir,
    ) {
        let Some(caller_ep) = self.entry_ref(caller).map(|e| e.pcb.endpoint) else {
            return;
        };
        let Some(granter_pid) = self.lookup_live(granter) else {
            self.ready_with(caller, Reply::Err(MinixError::DeadSourceOrDestination));
            return;
        };
        let result = {
            let granter_entry = self.entry_mut(granter_pid).expect("live");
            match dir {
                SafeCopyDir::From(len) => granter_entry
                    .pcb
                    .memory
                    .safe_copy_from(grant, caller_ep, offset, len)
                    .map(Reply::Bytes),
                SafeCopyDir::To(ref data) => granter_entry
                    .pcb
                    .memory
                    .safe_copy_to(grant, caller_ep, offset, data)
                    .map(|()| Reply::Ok),
            }
        };
        match result {
            Ok(reply) => {
                let bytes = match dir {
                    SafeCopyDir::From(len) => len,
                    SafeCopyDir::To(ref data) => data.len(),
                };
                self.metrics.ipc_bytes += bytes as u64;
                self.clock.charge_ipc_copy(bytes);
                self.ready_with(caller, reply);
            }
            Err(err) => {
                if matches!(err, GrantError::NotGrantee | GrantError::PermissionDenied) {
                    self.metrics.access_denied += 1;
                    self.trace
                        .record_with(self.clock.now(), Some(caller), "grant.deny", || {
                            format!("{caller_ep} on grant {grant:?} of {granter}: {err}")
                        });
                }
                self.ready_with(caller, Reply::Err(grant_errno(err)));
            }
        }
    }

    fn do_device(&mut self, pid: Pid, dev: DeviceId, write: Option<i64>) {
        let Some(ac) = self.entry_ref(pid).map(|e| e.pcb.ac_id) else {
            return;
        };
        if self.device_owners.get(&dev) != Some(&ac) {
            self.metrics.access_denied += 1;
            self.trace
                .record_with(self.clock.now(), Some(pid), "dev.deny", || {
                    format!("{dev} not owned by {ac}")
                });
            self.ready_with(pid, Reply::Err(MinixError::DeviceAccessDenied));
            return;
        }
        if let Some(value) = write {
            if self.quotas.charge(ac, SyscallClass::DeviceWrite).is_err() {
                self.ready_with(pid, Reply::Err(MinixError::QuotaExceeded));
                return;
            }
            match self.devices.write(dev, value) {
                Ok(()) => {
                    self.trace
                        .record_with(self.clock.now(), Some(pid), "dev.write", || {
                            format!("{dev} <- {value}")
                        });
                    self.ready_with(pid, Reply::Ok);
                }
                Err(_) => self.ready_with(pid, Reply::Err(MinixError::InvalidArgument)),
            }
        } else {
            match self.devices.read(dev) {
                Ok(v) => self.ready_with(pid, Reply::DevValue(v)),
                Err(_) => self.ready_with(pid, Reply::Err(MinixError::InvalidArgument)),
            }
        }
    }

    fn do_send(
        &mut self,
        caller: Pid,
        dest: Endpoint,
        mtype: u32,
        payload: Payload,
        blocking: bool,
        sendrec: bool,
    ) {
        let Some((caller_ep, caller_ac)) = self
            .entry_ref(caller)
            .map(|e| (e.pcb.endpoint, e.pcb.ac_id))
        else {
            return;
        };

        // 1. Destination validity (slot + generation).
        let dest_ac = if dest == pm::PM_ENDPOINT {
            pm::PM_AC_ID
        } else {
            match self.lookup_live(dest) {
                Some(pid) => self.entry_ref(pid).expect("live").pcb.ac_id,
                None => {
                    self.metrics.syscall_errors += 1;
                    self.ready_with(caller, Reply::Err(MinixError::DeadSourceOrDestination));
                    return;
                }
            }
        };

        // 2. The mandatory ACM check — the paper's contribution.
        let decision = self.acm.check(caller_ac, dest_ac, MsgType::new(mtype));
        // Capability-stream instrumentation (application IPC only — PM
        // control traffic is not a churnable right). A successful check
        // may trip an armed churn op: the mutation then lands *between*
        // this admission check and the delivery that trusts it.
        if dest != pm::PM_ENDPOINT && (self.cap_log.enabled() || !self.armed_churn.is_empty()) {
            let sub_name = self
                .entry_ref(caller)
                .map(|e| e.pcb.name.clone())
                .unwrap_or_default();
            let dst_name = self
                .lookup_live(dest)
                .and_then(|p| self.entry_ref(p))
                .map(|e| e.pcb.name.clone())
                .unwrap_or_default();
            self.cap_log.record_with(
                self.clock.now(),
                CapOp::Check,
                decision.is_allowed(),
                || {
                    (
                        sub_name.clone(),
                        format!("acm:{caller_ac}->{dest_ac}"),
                        dst_name.clone(),
                    )
                },
            );
            if decision.is_allowed() {
                self.fire_armed_churn(&sub_name, &dst_name);
            }
        }
        if !decision.is_allowed() {
            self.metrics.access_denied += 1;
            self.trace
                .record_with(self.clock.now(), Some(caller), "acm.deny", || {
                    format!("{caller_ac} -> {dest_ac} m{mtype}: {decision}")
                });
            self.ready_with(caller, Reply::Err(MinixError::CallDenied));
            return;
        }

        // 3. Optional send quota (flooding bound).
        if self.quotas.charge(caller_ac, SyscallClass::Send).is_err() {
            self.metrics.access_denied += 1;
            self.trace
                .record_with(self.clock.now(), Some(caller), "quota.deny", || {
                    format!("{caller_ac} send quota exhausted")
                });
            self.ready_with(caller, Reply::Err(MinixError::QuotaExceeded));
            return;
        }

        // 4. PM is handled synchronously inside the kernel model, but the
        // *cost* is the real system's: PM is a user-space server, so every
        // PM operation pays the round trip — two context switches (to PM
        // and back) and PM's own kernel entry for its receive. PM traffic
        // never parks, so it bypasses the arena entirely.
        if dest == pm::PM_ENDPOINT {
            self.metrics.ipc_messages += 1;
            self.metrics.ipc_bytes += Message::WIRE_SIZE as u64;
            self.clock.charge_ipc_copy(Message::WIRE_SIZE);
            self.metrics.context_switches += 2;
            self.clock.charge_context_switch();
            self.clock.charge_context_switch();
            self.metrics.kernel_entries += 1;
            self.clock.charge_kernel_entry();
            if let Some((rtype, rpayload)) = self.handle_pm(caller, mtype, payload) {
                if sendrec {
                    self.ready_with(
                        caller,
                        Reply::Msg(Message::new(pm::PM_ENDPOINT, rtype, rpayload)),
                    );
                } else {
                    self.ready_with(caller, Reply::Ok);
                }
            }
            return;
        }

        // Stage the payload into the arena: the one user→kernel copy.
        // Everything downstream (fault stash, blocked-sender PCB, delivery)
        // moves the 8-byte handle.
        let msg = self.arena.alloc(payload.as_bytes());

        // 3b. Scheduled IPC fault (`bas-faults` campaigns). Consumed only
        // *after* the ACM and quota gates and never on PM traffic, so an
        // injected fault can disturb authorized application IPC but can
        // neither widen authority nor corrupt platform management.
        if let Some(fault) = self.ipc_faults.pop() {
            match fault {
                IpcFault::Drop => {
                    self.trace
                        .record_with(self.clock.now(), Some(caller), "fault.ipc", || {
                            format!("drop {caller_ep} -> {dest} m{mtype}")
                        });
                    self.arena.free(msg);
                    // A plain send looks delivered; a sendrec fails so
                    // the caller cannot hang on a reply that will
                    // never arrive.
                    if sendrec {
                        self.ready_with(caller, Reply::Err(MinixError::NotReady));
                    } else {
                        self.ready_with(caller, Reply::Ok);
                    }
                    return;
                }
                IpcFault::Delay(d) => {
                    // The message sits in transit: the kernel pays the
                    // latency, then delivery proceeds normally.
                    self.clock.advance(d);
                    self.trace
                        .record_with(self.clock.now(), Some(caller), "fault.ipc", || {
                            format!("delay {caller_ep} -> {dest} m{mtype} +{}ms", d.as_millis())
                        });
                }
                IpcFault::Duplicate => {
                    self.trace
                        .record_with(self.clock.now(), Some(caller), "fault.ipc", || {
                            format!("duplicate {caller_ep} -> {dest} m{mtype}")
                        });
                    // Refcount the slot instead of copying the payload.
                    let dup = self.arena.dup(msg);
                    self.dup_stash.push_back((caller_ep, dest, mtype, dup));
                }
            }
        }

        // 5. Rendezvous.
        let dest_pid = self.lookup_live(dest).expect("validated above");
        let dest_ready = matches!(
            self.entry_ref(dest_pid).expect("live").state,
            ProcState::Blocked(BlockReason::Receiving { from })
                if from.is_none() || from == Some(caller_ep)
        );

        if dest_ready {
            self.deliver(caller_ep, dest_pid, mtype, msg);
            if sendrec {
                if let Some(entry) = self.entry_mut(caller) {
                    entry.state = ProcState::Blocked(BlockReason::Receiving { from: Some(dest) });
                }
            } else {
                self.ready_with(caller, Reply::Ok);
            }
        } else if blocking {
            self.metrics.ipc_waits += 1;
            if let Some(entry) = self.entry_mut(caller) {
                entry.state = ProcState::Blocked(BlockReason::Sending {
                    dest,
                    mtype,
                    msg,
                    sendrec,
                });
            }
        } else {
            self.arena.free(msg);
            self.ready_with(caller, Reply::Err(MinixError::NotReady));
        }
    }

    fn do_receive(&mut self, caller: Pid, from: Option<Endpoint>) {
        let Some(caller_ep) = self.entry_ref(caller).map(|e| e.pcb.endpoint) else {
            return;
        };

        // Pending notifications have delivery priority (as in MINIX 3).
        let notify = self.entry_mut(caller).and_then(|e| e.pcb.take_notify(from));
        if let Some(source) = notify {
            self.ready_with(
                caller,
                Reply::Msg(Message::new(source, pm::NOTIFY_MTYPE, Payload::zeroed())),
            );
            return;
        }

        // Stashed duplicates (Duplicate IPC fault) replay ahead of new
        // rendezvous partners, mimicking a transport that re-presented an
        // already-consumed message.
        let dup_idx = self.dup_stash.iter().position(|(src, dest, _, _)| {
            *dest == caller_ep && (from.is_none() || from == Some(*src))
        });
        if let Some(idx) = dup_idx {
            let (src, _, mtype, msg) = self.dup_stash.remove(idx).expect("index valid");
            self.deliver(src, caller, mtype, msg);
            return;
        }

        // Find the lowest-slot sender blocked on us that matches the filter.
        let candidate = self.slots.iter().enumerate().find_map(|(idx, s)| {
            let entry = s.entry.as_ref()?;
            match &entry.state {
                ProcState::Blocked(BlockReason::Sending { dest, .. })
                    if *dest == caller_ep
                        && (from.is_none() || from == Some(entry.pcb.endpoint)) =>
                {
                    Some(Pid::new(idx as u32))
                }
                _ => None,
            }
        });

        match candidate {
            Some(sender_pid) => {
                let (sender_ep, mtype, msg, sendrec) = {
                    let entry = self.entry_ref(sender_pid).expect("candidate live");
                    match &entry.state {
                        ProcState::Blocked(BlockReason::Sending {
                            mtype,
                            msg,
                            sendrec,
                            ..
                        }) => (entry.pcb.endpoint, *mtype, *msg, *sendrec),
                        _ => unreachable!("candidate was sending"),
                    }
                };
                self.deliver(sender_ep, caller, mtype, msg);
                if sendrec {
                    if let Some(entry) = self.entry_mut(sender_pid) {
                        entry.state = ProcState::Blocked(BlockReason::Receiving {
                            from: Some(caller_ep),
                        });
                    }
                } else {
                    self.ready_with(sender_pid, Reply::Ok);
                }
            }
            None => {
                if let Some(entry) = self.entry_mut(caller) {
                    entry.state = ProcState::Blocked(BlockReason::Receiving { from });
                }
            }
        }
    }

    fn do_notify(&mut self, caller: Pid, dest: Endpoint) {
        let Some((caller_ep, caller_ac)) = self
            .entry_ref(caller)
            .map(|e| (e.pcb.endpoint, e.pcb.ac_id))
        else {
            return;
        };
        let Some(dest_pid) = self.lookup_live(dest) else {
            self.ready_with(caller, Reply::Err(MinixError::DeadSourceOrDestination));
            return;
        };
        let dest_ac = self.entry_ref(dest_pid).expect("live").pcb.ac_id;
        if !self
            .acm
            .check(caller_ac, dest_ac, MsgType::new(pm::NOTIFY_MTYPE))
            .is_allowed()
        {
            self.metrics.access_denied += 1;
            self.trace
                .record_with(self.clock.now(), Some(caller), "acm.deny", || {
                    format!("{caller_ac} -> {dest_ac} notify")
                });
            self.ready_with(caller, Reply::Err(MinixError::CallDenied));
            return;
        }

        let dest_waiting = matches!(
            self.entry_ref(dest_pid).expect("live").state,
            ProcState::Blocked(BlockReason::Receiving { from })
                if from.is_none() || from == Some(caller_ep)
        );
        if dest_waiting {
            self.ready_with(
                dest_pid,
                Reply::Msg(Message::new(caller_ep, pm::NOTIFY_MTYPE, Payload::zeroed())),
            );
            self.metrics.ipc_messages += 1;
        } else if let Some(entry) = self.entry_mut(dest_pid) {
            entry.pcb.queue_notify(caller_ep);
        }
        // Notify never blocks the caller.
        self.ready_with(caller, Reply::Ok);
    }

    /// Copies the staged message out of the arena (the one kernel→user
    /// copy), recycles its slot, and makes `dest` runnable with it.
    fn deliver(&mut self, source: Endpoint, dest: Pid, mtype: u32, msg: MsgRef) {
        self.metrics.ipc_messages += 1;
        self.metrics.ipc_bytes += Message::WIRE_SIZE as u64;
        self.clock.charge_ipc_copy(Message::WIRE_SIZE);
        self.trace
            .record_with(self.clock.now(), Some(dest), "ipc.deliver", || {
                format!("{source} -> {dest} m{mtype}")
            });
        // Capability-stream instrumentation: the delivery *uses* the right
        // that `do_send` admitted, without re-checking it — exactly MINIX's
        // behavior. The recorded `ok` is an observer-only recheck against
        // the *current* ACM; `ok = false` on a delivered message is the
        // stale-handle use the race detector flags.
        if self.cap_log.enabled() {
            if let Some((src_ac, src_name)) = self
                .lookup_live(source)
                .and_then(|p| self.entry_ref(p))
                .map(|e| (e.pcb.ac_id, e.pcb.name.clone()))
            {
                let dst = self.entry_ref(dest).expect("delivery target live");
                let (dst_ac, dst_name) = (dst.pcb.ac_id, dst.pcb.name.clone());
                let still_ok = self
                    .acm
                    .check(src_ac, dst_ac, MsgType::new(mtype))
                    .is_allowed();
                let now = self.clock.now();
                let use_seq = self.cap_log.record_with(now, CapOp::Use, still_ok, || {
                    (
                        src_name.clone(),
                        format!("acm:{src_ac}->{dst_ac}"),
                        dst_name.clone(),
                    )
                });
                let recv_seq = self.cap_log.record_with(now, CapOp::Recv, true, || {
                    (
                        dst_name.clone(),
                        format!("acm:{src_ac}->{dst_ac}"),
                        dst_name.clone(),
                    )
                });
                self.cap_log.edge(use_seq, recv_seq);
            }
        }
        let payload = Payload::from_bytes(self.arena.get(msg));
        self.arena.free(msg);
        self.metrics.hot_path_allocs = self.arena.heap_events();
        self.ready_with(dest, Reply::Msg(Message::new(source, mtype, payload)));
    }

    fn ready_with(&mut self, pid: Pid, reply: Reply) {
        if let Some(entry) = self.entry_mut(pid) {
            entry.pending_reply = Some(reply);
            entry.state = ProcState::Runnable;
            self.run_queue.enqueue(pid);
        }
    }

    // ----- PM server -------------------------------------------------------------

    /// Handles a message addressed to PM; returns the reply `(mtype,
    /// payload)` or `None` when the caller terminated.
    fn handle_pm(&mut self, caller: Pid, mtype: u32, payload: Payload) -> Option<(u32, Payload)> {
        let (caller_ac, caller_uid, caller_ep) = {
            let e = self.entry_ref(caller)?;
            (e.pcb.ac_id, e.pcb.uid, e.pcb.endpoint)
        };
        match mtype {
            pm::PM_FORK2 | pm::PM_SRV_FORK2 => {
                if self.quotas.charge(caller_ac, SyscallClass::Fork).is_err() {
                    self.trace
                        .record_with(self.clock.now(), Some(caller), "quota.deny", || {
                            format!("{caller_ac} fork quota exhausted")
                        });
                    return Some((pm::PM_ERR, pm::encode_err(MinixError::QuotaExceeded)));
                }
                let (program_id, child_ac, child_uid) = pm::decode_fork2(&payload);
                let Some((prog_name, factory)) = self.programs.get(program_id as usize) else {
                    return Some((pm::PM_ERR, pm::encode_err(MinixError::NoSuchProgram)));
                };
                let child_logic = factory();
                // First instance of a program keeps the program name (so
                // name-service lookups find the well-known processes);
                // further instances — e.g. fork-bomb children — get a
                // uniquifying suffix.
                let child_name = if self.names.contains_key(prog_name.as_str()) {
                    format!("{prog_name}#{}", self.metrics.processes_created + 1)
                } else {
                    prog_name.clone()
                };
                match self.spawn(child_name, child_ac, child_uid, child_logic) {
                    Ok(child_ep) => Some((pm::PM_OK, pm::encode_fork2_ok(child_ep))),
                    Err(e) => Some((pm::PM_ERR, pm::encode_err(e))),
                }
            }
            pm::PM_KILL => {
                let target = pm::decode_kill(&payload);
                if target == pm::PM_ENDPOINT {
                    return Some((pm::PM_ERR, pm::encode_err(MinixError::PermissionDenied)));
                }
                if self.quotas.charge(caller_ac, SyscallClass::Kill).is_err() {
                    return Some((pm::PM_ERR, pm::encode_err(MinixError::QuotaExceeded)));
                }
                let Some(target_pid) = self.lookup_live(target) else {
                    return Some((pm::PM_ERR, pm::encode_err(MinixError::NoSuchProcess)));
                };
                let target_uid = self.entry_ref(target_pid).expect("live").pcb.uid;
                // POSIX-style DAC check. Note: on MINIX this is *in
                // addition to* the ACM having allowed the KILL message type
                // at all.
                if caller_uid != 0 && caller_uid != target_uid {
                    return Some((pm::PM_ERR, pm::encode_err(MinixError::PermissionDenied)));
                }
                self.trace
                    .record_with(self.clock.now(), Some(caller), "pm.kill", || {
                        format!("{caller_ep} killed {target}")
                    });
                self.terminate(target_pid);
                if target_pid == caller {
                    return None;
                }
                Some((pm::PM_OK, Payload::zeroed()))
            }
            pm::PM_EXIT => {
                self.trace.record(
                    self.clock.now(),
                    Some(caller),
                    "proc.exit",
                    "pm exit".into(),
                );
                self.terminate(caller);
                None
            }
            pm::PM_GETPID => {
                let mut p = Payload::zeroed();
                p.write_u32(0, caller.as_u32());
                p.write_u32(4, caller_ep.as_raw());
                Some((pm::PM_OK, p))
            }
            pm::PM_DELEGATE | pm::PM_REVOKE | pm::PM_ATTENUATE => {
                // Runtime policy churn as a PM RPC. The ACM already gated
                // whether the caller may send this message type to PM at
                // all (step 2 of `do_send`), mirroring how the paper's
                // policy gates `kill`. Delegation is additionally bounded
                // by the grantor's own authority: a caller can only hand
                // out (a subset of) rights it holds itself.
                let (sub_ac, dst_ac, types) = pm::decode_cap_rpc(&payload);
                let kind = match mtype {
                    pm::PM_DELEGATE => ChurnKind::Grant,
                    pm::PM_REVOKE => ChurnKind::Revoke,
                    _ => ChurnKind::Attenuate,
                };
                let actor = self
                    .entry_ref(caller)
                    .map(|e| e.pcb.name.clone())
                    .unwrap_or_else(|| format!("{caller_ep}"));
                if kind == ChurnKind::Grant && caller_ac != pm::PM_AC_ID {
                    let own = self
                        .acm
                        .channel(caller_ac, dst_ac)
                        .unwrap_or(MsgTypeSet::EMPTY);
                    if types.intersect(own) != types {
                        self.metrics.access_denied += 1;
                        return Some((pm::PM_ERR, pm::encode_err(MinixError::PermissionDenied)));
                    }
                }
                let sub_name = self
                    .name_of_ac(sub_ac)
                    .unwrap_or_else(|| format!("{sub_ac}"));
                let dst_name = self
                    .name_of_ac(dst_ac)
                    .unwrap_or_else(|| format!("{dst_ac}"));
                let changed = self.churn_acm(
                    kind, actor, caller_ac, sub_ac, dst_ac, types, &sub_name, &dst_name,
                );
                let mut p = Payload::zeroed();
                p.write_u32(0, u32::from(changed));
                Some((pm::PM_OK, p))
            }
            _ => Some((pm::PM_ERR, pm::encode_err(MinixError::InvalidArgument))),
        }
    }

    // ----- termination -----------------------------------------------------------

    fn terminate(&mut self, pid: Pid) {
        let Some(entry) = self
            .slots
            .get_mut(pid.as_usize())
            .and_then(|s| s.entry.take())
        else {
            return;
        };
        let dead_ep = entry.pcb.endpoint;
        // The dead process may hold a staged send; recycle its slot.
        if let ProcState::Blocked(BlockReason::Sending { msg, .. }) = entry.state {
            self.arena.free(msg);
        }
        self.slots[pid.as_usize()].generation =
            self.slots[pid.as_usize()].generation.wrapping_add(1);
        self.run_queue.remove(pid);
        self.timers.cancel(pid);
        self.names.retain(|_, ep| *ep != dead_ep);
        let arena = &mut self.arena;
        self.dup_stash.retain(|(src, dest, _, msg)| {
            let keep = *src != dead_ep && *dest != dead_ep;
            if !keep {
                arena.free(*msg);
            }
            keep
        });
        self.metrics.processes_reaped += 1;
        if self.last_run == Some(pid) {
            self.last_run = None;
        }

        // Unblock anyone waiting on the dead process.
        let waiters: Vec<Pid> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(idx, s)| {
                let e = s.entry.as_ref()?;
                let blocked_on_dead = match &e.state {
                    ProcState::Blocked(BlockReason::Sending { dest, .. }) => *dest == dead_ep,
                    ProcState::Blocked(BlockReason::Receiving { from }) => *from == Some(dead_ep),
                    _ => false,
                };
                blocked_on_dead.then(|| Pid::new(idx as u32))
            })
            .collect();
        for w in waiters {
            // A waiter parked in a send to the dead process still owns a
            // staged slot; recycle it before unblocking with an error.
            let parked = match self.entry_ref(w).map(|e| &e.state) {
                Some(ProcState::Blocked(BlockReason::Sending { msg, .. })) => Some(*msg),
                _ => None,
            };
            if let Some(m) = parked {
                self.arena.free(m);
            }
            self.ready_with(w, Reply::Err(MinixError::DeadSourceOrDestination));
        }
    }

    // ----- slot helpers ---------------------------------------------------------

    fn lookup_live(&self, ep: Endpoint) -> Option<Pid> {
        let slot = self.slots.get(ep.slot() as usize)?;
        let entry = slot.entry.as_ref()?;
        (entry.pcb.endpoint == ep).then_some(entry.pcb.pid)
    }

    fn entry_ref(&self, pid: Pid) -> Option<&ProcEntry> {
        self.slots
            .get(pid.as_usize())
            .and_then(|s| s.entry.as_ref())
    }

    fn entry_mut(&mut self, pid: Pid) -> Option<&mut ProcEntry> {
        self.slots
            .get_mut(pid.as_usize())
            .and_then(|s| s.entry.as_mut())
    }
}

enum SafeCopyDir {
    From(usize),
    To(Vec<u8>),
}

/// Maps grant-table failures to MINIX errnos.
fn grant_errno(err: GrantError) -> MinixError {
    match err {
        GrantError::NotGrantee | GrantError::PermissionDenied => MinixError::PermissionDenied,
        GrantError::NoSuchBuffer | GrantError::NoSuchGrant | GrantError::OutOfBounds => {
            MinixError::InvalidArgument
        }
    }
}
