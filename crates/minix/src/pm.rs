//! Process-management (PM) server protocol.
//!
//! §III-A: "in MINIX 3 all POSIX-compliant system calls such as fork, kill,
//! exit, etc. can only be invoked by sending a message through kernel IPC
//! primitives between the caller process and the process management (PM)
//! process." The reproduction keeps that shape: there is no `fork` or
//! `kill` trap — processes *message* PM, and because every message transits
//! the kernel, the ACM gates which process may ask PM for which operation.
//! That is exactly how the paper stops the root-privileged web interface
//! from killing the controller: "the policy explicitly disallowed the web
//! interface process to use kill system call."
//!
//! This module defines the wire protocol (message types and payload
//! layouts) plus an ACM policy helper; the handler lives in
//! [`crate::kernel`] because it manipulates the process table.

use bas_acm::{AcId, AcmBuilder, MsgType, MsgTypeSet};

use crate::endpoint::Endpoint;
use crate::error::MinixError;
use crate::message::Payload;

/// PM's access-control identity (system range).
pub const PM_AC_ID: AcId = AcId::new(1);

/// PM's well-known endpoint: slot 0, generation 0 (PM never dies).
pub const PM_ENDPOINT: Endpoint = Endpoint::new(0, 0);

/// Message type used for kernel notifications and generic acknowledgments
/// (type 0 is "reserved to indicate an acknowledgment to the caller").
pub const NOTIFY_MTYPE: u32 = 0;

/// `fork2(program, ac_id, uid)` — load a registered program image as a new
/// process with an explicit access-control identity (replaces `fork()`).
pub const PM_FORK2: u32 = 1;
/// `srv_fork2` — the system-server variant of `fork2` used during boot.
pub const PM_SRV_FORK2: u32 = 2;
/// `kill(endpoint)` — terminate another process.
pub const PM_KILL: u32 = 3;
/// `exit()` — terminate the caller.
pub const PM_EXIT: u32 = 4;
/// `getpid()` — query the caller's pid.
pub const PM_GETPID: u32 = 5;
/// `delegate(subject, receiver, types)` — install (or widen) the ACM row
/// `subject → receiver` with `types`. Mirrors MINIX's reincarnation-server
/// pattern: policy mutation is itself an RPC that the ACM must authorize.
pub const PM_DELEGATE: u32 = 6;
/// `revoke(subject, receiver)` — remove the ACM row `subject → receiver`.
pub const PM_REVOKE: u32 = 7;
/// `attenuate(subject, receiver, keep)` — narrow the row to `keep`.
pub const PM_ATTENUATE: u32 = 8;

/// PM success reply type (payload is operation-specific).
pub const PM_OK: u32 = 0;
/// PM error reply type (payload carries a [`MinixError`] code at offset 0).
pub const PM_ERR: u32 = 63;

/// Encodes a `fork2`/`srv_fork2` request payload.
pub fn encode_fork2(program_id: u32, ac_id: AcId, uid: u32) -> Payload {
    let mut p = Payload::zeroed();
    p.write_u32(0, program_id);
    p.write_u32(4, ac_id.as_u32());
    p.write_u32(8, uid);
    p
}

/// Decodes a `fork2` request payload as `(program_id, ac_id, uid)`.
pub fn decode_fork2(p: &Payload) -> (u32, AcId, u32) {
    (p.read_u32(0), AcId::new(p.read_u32(4)), p.read_u32(8))
}

/// Encodes a `fork2` success reply carrying the child endpoint.
pub fn encode_fork2_ok(child: Endpoint) -> Payload {
    let mut p = Payload::zeroed();
    p.write_u32(0, child.as_raw());
    p
}

/// Decodes a `fork2` success reply.
pub fn decode_fork2_ok(p: &Payload) -> Endpoint {
    Endpoint::from_raw(p.read_u32(0))
}

/// Encodes a `kill` request for `target`.
pub fn encode_kill(target: Endpoint) -> Payload {
    let mut p = Payload::zeroed();
    p.write_u32(0, target.as_raw());
    p
}

/// Decodes a `kill` request.
pub fn decode_kill(p: &Payload) -> Endpoint {
    Endpoint::from_raw(p.read_u32(0))
}

/// Encodes a capability-churn request (`delegate`/`revoke`/`attenuate`):
/// the `subject → receiver` row plus a type set (ignored by `revoke`).
pub fn encode_cap_rpc(subject: AcId, receiver: AcId, types: MsgTypeSet) -> Payload {
    let mut p = Payload::zeroed();
    p.write_u32(0, subject.as_u32());
    p.write_u32(4, receiver.as_u32());
    match types {
        MsgTypeSet::All => p.write_u32(8, 1),
        MsgTypeSet::Bitmap(bits) => {
            p.write_u32(12, (bits & 0xffff_ffff) as u32);
            p.write_u32(16, (bits >> 32) as u32);
        }
    }
    p
}

/// Decodes a capability-churn request as `(subject, receiver, types)`.
pub fn decode_cap_rpc(p: &Payload) -> (AcId, AcId, MsgTypeSet) {
    let subject = AcId::new(p.read_u32(0));
    let receiver = AcId::new(p.read_u32(4));
    let types = if p.read_u32(8) == 1 {
        MsgTypeSet::All
    } else {
        MsgTypeSet::Bitmap(p.read_u32(12) as u64 | ((p.read_u32(16) as u64) << 32))
    };
    (subject, receiver, types)
}

/// Encodes a PM error reply.
pub fn encode_err(e: MinixError) -> Payload {
    let mut p = Payload::zeroed();
    p.write_u32(0, e.code());
    p
}

/// Decodes a PM error reply, if the payload holds a known code.
pub fn decode_err(p: &Payload) -> Option<MinixError> {
    MinixError::from_code(p.read_u32(0))
}

/// Grants `ac` the given PM operations (plus the PM reply channel back).
///
/// Every process that talks to PM needs two ACM rows: `ac → PM` for the
/// permitted request types, and `PM → ac` for `PM_OK`/`PM_ERR` replies.
pub fn allow_pm_ops<I: IntoIterator<Item = u32>>(
    builder: AcmBuilder,
    ac: AcId,
    ops: I,
) -> AcmBuilder {
    builder
        .allow(ac, PM_AC_ID, ops.into_iter().map(MsgType::new))
        .allow(PM_AC_ID, ac, [MsgType::new(PM_OK), MsgType::new(PM_ERR)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_acm::AccessControlMatrix;

    #[test]
    fn fork2_payload_roundtrip() {
        let p = encode_fork2(7, AcId::new(104), 33);
        assert_eq!(decode_fork2(&p), (7, AcId::new(104), 33));
    }

    #[test]
    fn fork2_reply_roundtrip() {
        let child = Endpoint::new(9, 3);
        assert_eq!(decode_fork2_ok(&encode_fork2_ok(child)), child);
    }

    #[test]
    fn kill_payload_roundtrip() {
        let target = Endpoint::new(2, 1);
        assert_eq!(decode_kill(&encode_kill(target)), target);
    }

    #[test]
    fn err_payload_roundtrip() {
        let p = encode_err(MinixError::PermissionDenied);
        assert_eq!(decode_err(&p), Some(MinixError::PermissionDenied));
        assert_eq!(decode_err(&Payload::zeroed()), None);
    }

    #[test]
    fn allow_pm_ops_grants_request_and_reply_rows() {
        let ac = AcId::new(104);
        let acm: AccessControlMatrix =
            allow_pm_ops(AccessControlMatrix::builder(), ac, [PM_FORK2, PM_GETPID]).build();
        assert!(acm.check(ac, PM_AC_ID, MsgType::new(PM_FORK2)).is_allowed());
        assert!(acm
            .check(ac, PM_AC_ID, MsgType::new(PM_GETPID))
            .is_allowed());
        assert!(!acm.check(ac, PM_AC_ID, MsgType::new(PM_KILL)).is_allowed());
        assert!(acm.check(PM_AC_ID, ac, MsgType::new(PM_OK)).is_allowed());
        assert!(acm.check(PM_AC_ID, ac, MsgType::new(PM_ERR)).is_allowed());
    }

    #[test]
    fn cap_rpc_roundtrip() {
        let all = encode_cap_rpc(AcId::new(104), AcId::new(100), MsgTypeSet::All);
        assert_eq!(
            decode_cap_rpc(&all),
            (AcId::new(104), AcId::new(100), MsgTypeSet::All)
        );
        let wide = MsgTypeSet::Bitmap(0xdead_beef_0000_0042);
        let bm = encode_cap_rpc(AcId::new(1), AcId::new(2), wide);
        assert_eq!(decode_cap_rpc(&bm), (AcId::new(1), AcId::new(2), wide));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pm_reply_types_fit_acm_bitmap() {
        // PM_ERR is the highest type and must stay inside the 64-bit
        // bitmap representation.
        assert!(PM_ERR < 64);
    }
}
