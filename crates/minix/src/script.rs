//! Scripted processes: linear syscall sequences for tests and attacks.
//!
//! Many experiments (and most unit tests) need a process that issues a
//! fixed sequence of system calls and records the kernel's replies — e.g.
//! the §IV-D spoofing attack is literally "send these forged messages and
//! see what comes back". [`ScriptProcess`] is that, with an optional shared
//! reply log the test can inspect after the kernel has consumed the
//! process.

use std::cell::RefCell;
use std::rc::Rc;

use bas_sim::process::{Action, Process};

use crate::syscall::{Reply, Syscall};

/// Shared handle to a script's recorded replies.
///
/// Entry *i* is the reply that arrived before issuing step *i* (so entry 0
/// is always `None`, and the reply to the final syscall lands in the entry
/// pushed on the script's last resume).
pub type ReplyLog = Rc<RefCell<Vec<Option<Reply>>>>;

/// A process that executes a fixed list of syscalls in order and then
/// exits (or loops forever).
///
/// ```
/// use bas_minix::script::ScriptProcess;
/// use bas_minix::syscall::Syscall;
/// use bas_sim::process::{Action, Process};
///
/// let mut p = ScriptProcess::new(vec![Syscall::GetUptime]);
/// assert!(matches!(p.resume(None), Action::Syscall(Syscall::GetUptime)));
/// assert!(matches!(p.resume(None), Action::Exit(0)));
/// ```
pub struct ScriptProcess {
    name: String,
    steps: Vec<Syscall>,
    idx: usize,
    log: Option<ReplyLog>,
    looping: bool,
}

impl ScriptProcess {
    /// A script that runs once and exits with code 0.
    pub fn new(steps: Vec<Syscall>) -> Self {
        ScriptProcess {
            name: "script".into(),
            steps,
            idx: 0,
            log: None,
            looping: false,
        }
    }

    /// A named one-shot script.
    pub fn named(name: impl Into<String>, steps: Vec<Syscall>) -> Self {
        ScriptProcess {
            name: name.into(),
            ..ScriptProcess::new(steps)
        }
    }

    /// A one-shot script plus a shared log of every reply it receives.
    pub fn with_log(steps: Vec<Syscall>) -> (Self, ReplyLog) {
        let log: ReplyLog = Rc::new(RefCell::new(Vec::new()));
        let p = ScriptProcess {
            log: Some(log.clone()),
            ..ScriptProcess::new(steps)
        };
        (p, log)
    }

    /// A script that repeats its steps forever (flooding attacks, periodic
    /// stubs).
    pub fn looping(steps: Vec<Syscall>) -> Self {
        assert!(!steps.is_empty(), "looping script needs at least one step");
        ScriptProcess {
            looping: true,
            ..ScriptProcess::new(steps)
        }
    }

    /// Attaches a shared reply log to any script.
    pub fn logged(mut self) -> (Self, ReplyLog) {
        let log: ReplyLog = Rc::new(RefCell::new(Vec::new()));
        self.log = Some(log.clone());
        (self, log)
    }
}

impl Process for ScriptProcess {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        if let Some(log) = &self.log {
            log.borrow_mut().push(reply);
        }
        if self.idx >= self.steps.len() {
            if self.looping {
                self.idx = 0;
            } else {
                return Action::Exit(0);
            }
        }
        let step = self.steps[self.idx].clone();
        self.idx += 1;
        Action::Syscall(step)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Extracts the non-`None` replies from a [`ReplyLog`].
pub fn collected_replies(log: &ReplyLog) -> Vec<Reply> {
    log.borrow().iter().flatten().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Endpoint;

    #[test]
    fn one_shot_script_exits_after_steps() {
        let mut p = ScriptProcess::new(vec![Syscall::GetUptime, Syscall::WhoAmI]);
        assert!(matches!(
            p.resume(None),
            Action::Syscall(Syscall::GetUptime)
        ));
        assert!(matches!(
            p.resume(Some(Reply::Ok)),
            Action::Syscall(Syscall::WhoAmI)
        ));
        assert!(matches!(p.resume(Some(Reply::Ok)), Action::Exit(0)));
    }

    #[test]
    fn looping_script_wraps_around() {
        let mut p = ScriptProcess::looping(vec![Syscall::GetUptime]);
        for _ in 0..10 {
            assert!(matches!(
                p.resume(None),
                Action::Syscall(Syscall::GetUptime)
            ));
        }
    }

    #[test]
    fn log_captures_replies_in_order() {
        let (mut p, log) = ScriptProcess::with_log(vec![
            Syscall::GetUptime,
            Syscall::send(Endpoint::new(1, 0), 1, []),
        ]);
        let _ = p.resume(None);
        let _ = p.resume(Some(Reply::Ok));
        let _ = p.resume(Some(Reply::Ok));
        let replies = collected_replies(&log);
        assert_eq!(replies, vec![Reply::Ok, Reply::Ok]);
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(log.borrow()[0], None);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_looping_script_rejected() {
        let _ = ScriptProcess::looping(vec![]);
    }
}
