//! MINIX 3 fixed-format messages.
//!
//! §III-A: "In MINIX 3, messages are fixed-size 64 byte buffers, which
//! includes a 4 byte endpoint identifier, a 4 byte message type field, and
//! 56 byte payload."

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::endpoint::Endpoint;

/// Size of the payload portion of a message, in bytes.
pub const PAYLOAD_LEN: usize = 56;

/// The 56-byte message payload with bounds-checked field codecs.
///
/// ```
/// use bas_minix::message::Payload;
///
/// let mut p = Payload::zeroed();
/// p.write_i32(0, -42);
/// p.write_u64(8, 7_000_000_000);
/// assert_eq!(p.read_i32(0), -42);
/// assert_eq!(p.read_u64(8), 7_000_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Payload([u8; PAYLOAD_LEN]);

impl Payload {
    /// An all-zero payload.
    pub const fn zeroed() -> Self {
        Payload([0; PAYLOAD_LEN])
    }

    /// Builds a payload from up to 56 leading bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than [`PAYLOAD_LEN`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= PAYLOAD_LEN,
            "payload too large: {}",
            bytes.len()
        );
        let mut buf = [0u8; PAYLOAD_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        Payload(buf)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; PAYLOAD_LEN] {
        &self.0
    }

    /// Writes a little-endian `u32` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the payload.
    pub fn write_u32(&mut self, offset: usize, value: u32) {
        self.0[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the payload.
    pub fn read_u32(&self, offset: usize) -> u32 {
        u32::from_le_bytes(self.0[offset..offset + 4].try_into().expect("4 bytes"))
    }

    /// Writes a little-endian `i32` at `offset`.
    pub fn write_i32(&mut self, offset: usize, value: i32) {
        self.write_u32(offset, value as u32);
    }

    /// Reads a little-endian `i32` at `offset`.
    pub fn read_i32(&self, offset: usize) -> i32 {
        self.read_u32(offset) as i32
    }

    /// Writes a little-endian `u64` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the payload.
    pub fn write_u64(&mut self, offset: usize, value: u64) {
        self.0[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the payload.
    pub fn read_u64(&self, offset: usize) -> u64 {
        u64::from_le_bytes(self.0[offset..offset + 8].try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `i64` at `offset`.
    pub fn write_i64(&mut self, offset: usize, value: i64) {
        self.write_u64(offset, value as u64);
    }

    /// Reads a little-endian `i64` at `offset`.
    pub fn read_i64(&self, offset: usize) -> i64 {
        self.read_u64(offset) as i64
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::zeroed()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print the non-zero prefix only; full 56-byte dumps drown traces.
        let last_nonzero = self.0.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        write!(f, "Payload({:02x?}…)", &self.0[..last_nonzero.min(16)])
    }
}

/// A complete 64-byte MINIX message as delivered to a receiver.
///
/// `source` is stamped by the kernel at delivery time — user processes
/// cannot forge it, which is the heart of the paper's spoofing defense:
/// "The web interface process in user land cannot change a process's
/// identity stored in the kernel PCB."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sender endpoint, kernel-stamped.
    pub source: Endpoint,
    /// Message type (the ACM's authorization unit).
    pub mtype: u32,
    /// 56-byte payload.
    pub payload: Payload,
}

impl Message {
    /// Total wire size of a message, in bytes.
    pub const WIRE_SIZE: usize = 4 + 4 + PAYLOAD_LEN;

    /// Creates a message (used by kernel code; `source` is authoritative
    /// only when produced by the kernel).
    pub fn new(source: Endpoint, mtype: u32, payload: Payload) -> Self {
        Message {
            source,
            mtype,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_is_64_bytes() {
        assert_eq!(Message::WIRE_SIZE, 64);
        assert_eq!(PAYLOAD_LEN, 56);
    }

    #[test]
    fn payload_codecs_roundtrip() {
        let mut p = Payload::zeroed();
        p.write_u32(0, 0xdead_beef);
        p.write_i32(4, -7);
        p.write_u64(8, u64::MAX);
        p.write_i64(16, i64::MIN);
        assert_eq!(p.read_u32(0), 0xdead_beef);
        assert_eq!(p.read_i32(4), -7);
        assert_eq!(p.read_u64(8), u64::MAX);
        assert_eq!(p.read_i64(16), i64::MIN);
    }

    #[test]
    fn payload_fields_do_not_overlap_adjacent() {
        let mut p = Payload::zeroed();
        p.write_u32(0, 1);
        p.write_u32(4, 2);
        assert_eq!(p.read_u32(0), 1);
        assert_eq!(p.read_u32(4), 2);
    }

    #[test]
    #[should_panic]
    fn payload_write_out_of_bounds_panics() {
        let mut p = Payload::zeroed();
        p.write_u64(PAYLOAD_LEN - 4, 1);
    }

    #[test]
    fn from_bytes_pads_with_zeros() {
        let p = Payload::from_bytes(&[1, 2, 3]);
        assert_eq!(p.as_bytes()[0..3], [1, 2, 3]);
        assert_eq!(p.as_bytes()[3..], [0u8; 53]);
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn from_bytes_rejects_oversized() {
        let _ = Payload::from_bytes(&[0u8; 57]);
    }

    #[test]
    fn debug_output_is_truncated() {
        let p = Payload::from_bytes(&[0xab; 56]);
        let s = format!("{p:?}");
        assert!(s.len() < 120, "debug too long: {s}");
    }
}
