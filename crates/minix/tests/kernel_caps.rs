//! Capability churn and the CapEvent stream on the MINIX kernel:
//! runtime ACM mutation (hook + PM RPCs), armed churn firing inside the
//! check→delivery window, and the emitted TOCTOU evidence.

use bas_acm::{AcId, AccessControlMatrix, MsgType, MsgTypeSet};
use bas_minix::error::MinixError;
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::pm;
use bas_minix::script::{collected_replies, ScriptProcess};
use bas_minix::syscall::{Reply, Syscall};
use bas_sim::caps::{CapChurnOp, CapOp, ChurnKind};
use bas_sim::clock::CostModel;

const TX: AcId = AcId::new(10);
const RX: AcId = AcId::new(11);

fn kernel_with(acm: AccessControlMatrix) -> MinixKernel {
    MinixKernel::new(MinixConfig {
        acm,
        cost_model: CostModel::default(),
        ..MinixConfig::default()
    })
}

fn open_acm() -> AccessControlMatrix {
    AccessControlMatrix::builder()
        .allow_all_types(TX, RX)
        .allow_all_types(RX, TX)
        .build()
}

#[test]
fn applied_revoke_denies_subsequent_sends() {
    let mut k = kernel_with(open_acm());
    k.enable_cap_trace();
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::send(rx, 7, [1u8])]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();

    // Revoke before the sender ever runs: a clean denial, no race.
    assert!(k.apply_cap_churn(&CapChurnOp::new(ChurnKind::Revoke, "tx", "rx")));
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&tx_log),
        vec![Reply::Err(MinixError::CallDenied)]
    );

    let trace = k.cap_trace();
    let ops: Vec<CapOp> = trace.events.iter().map(|e| e.op).collect();
    // Revoke, then the failed admission check. No Use: nothing delivered.
    assert_eq!(ops, vec![CapOp::Revoke, CapOp::Check]);
    assert!(!trace.events[1].ok);
    assert_eq!(trace.events[0].cap, format!("acm:{TX}->{RX}"));
}

#[test]
fn armed_revoke_fires_inside_the_toctou_window() {
    let mut k = kernel_with(open_acm());
    k.enable_cap_trace();
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    // Let the receiver park in Receive so the send rendezvouses instantly
    // — the adversarial case for time-based churn, trivial for armed churn.
    k.run_to_quiescence();
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::send(rx, 7, [1u8])]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();

    k.arm_cap_churn(&CapChurnOp::new(ChurnKind::Revoke, "tx", "rx"), 0);
    k.run_to_quiescence();

    // The message was delivered anyway: the kernel checked at admission,
    // the revoke landed, and delivery trusted the stale admission.
    assert_eq!(collected_replies(&tx_log), vec![Reply::Ok]);
    assert_eq!(k.metrics().ipc_messages, 1);

    let trace = k.cap_trace();
    let ops: Vec<(CapOp, bool)> = trace.events.iter().map(|e| (e.op, e.ok)).collect();
    assert_eq!(
        ops,
        vec![
            (CapOp::Check, true),
            (CapOp::Revoke, true),
            (CapOp::Use, false),
            (CapOp::Recv, true),
        ]
    );
    // The IPC edge connects the stale use to the receiver's observation.
    let use_seq = trace.events[2].seq;
    let recv_seq = trace.events[3].seq;
    assert_eq!(trace.edges, vec![(use_seq, recv_seq)]);
    assert_eq!(trace.events[2].subject, "tx");
    assert_eq!(trace.events[3].subject, "rx");
}

#[test]
fn armed_churn_counts_down_matching_checks_only() {
    let mut k = kernel_with(open_acm());
    k.enable_cap_trace();
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![
                Syscall::Receive { from: None },
                Syscall::Receive { from: None },
            ])),
        )
        .unwrap();
    k.run_to_quiescence();
    let (tx_script, tx_log) = ScriptProcess::new(vec![
        Syscall::send(rx, 1, [1u8]),
        Syscall::send(rx, 2, [2u8]),
    ])
    .logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();

    // after_checks = 1: the first send passes untouched, the second is the
    // victim.
    k.arm_cap_churn(&CapChurnOp::new(ChurnKind::Revoke, "tx", "rx"), 1);
    k.run_to_quiescence();
    assert_eq!(collected_replies(&tx_log), vec![Reply::Ok, Reply::Ok]);

    let trace = k.cap_trace();
    let uses: Vec<bool> = trace
        .events
        .iter()
        .filter(|e| e.op == CapOp::Use)
        .map(|e| e.ok)
        .collect();
    assert_eq!(uses, vec![true, false]);
}

#[test]
fn attenuate_keeps_only_acks() {
    let mut k = kernel_with(open_acm());
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    let (tx_script, tx_log) = ScriptProcess::new(vec![
        Syscall::send(rx, 5, [1u8]),
        Syscall::send(rx, MsgType::ACK.as_u32(), [0u8; 0]),
    ])
    .logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    assert!(k.apply_cap_churn(&CapChurnOp::new(ChurnKind::Attenuate, "tx", "rx")));
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&tx_log),
        vec![Reply::Err(MinixError::CallDenied), Reply::Ok]
    );
}

#[test]
fn pm_revoke_rpc_cuts_the_row_and_logs_provenance() {
    // rx revokes tx's row to itself via the PM RPC; the ACM must authorize
    // the RPC itself (PM_REVOKE message type on rx → PM).
    let acm = pm::allow_pm_ops(
        AccessControlMatrix::builder()
            .allow_all_types(TX, RX)
            .allow_all_types(RX, TX),
        RX,
        [pm::PM_REVOKE],
    )
    .build();
    let mut k = kernel_with(acm);
    k.enable_cap_trace();
    let (rx_script, rx_log) = ScriptProcess::new(vec![Syscall::sendrec(
        pm::PM_ENDPOINT,
        pm::PM_REVOKE,
        pm::encode_cap_rpc(TX, RX, MsgTypeSet::All).as_bytes(),
    )])
    .logged();
    k.spawn("rx", RX, 1000, Box::new(rx_script)).unwrap();
    k.run_to_quiescence();

    let replies = collected_replies(&rx_log);
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].message().expect("pm reply").mtype, pm::PM_OK);

    // The row is gone.
    assert!(!k.acm().check(TX, RX, MsgType::new(7)).is_allowed());
    let trace = k.cap_trace();
    let rev = trace
        .events
        .iter()
        .find(|e| e.op == CapOp::Revoke)
        .expect("revoke event");
    assert_eq!(rev.subject, "rx");
    assert_eq!(rev.cap, format!("acm:{TX}->{RX}"));
}

#[test]
fn pm_delegate_rpc_is_bounded_by_grantor_authority() {
    // tx may only send type 5 to rx; tx tries to delegate {5, 9} — denied.
    let acm = pm::allow_pm_ops(
        AccessControlMatrix::builder().allow(TX, RX, [MsgType::new(5)]),
        TX,
        [pm::PM_DELEGATE],
    )
    .build();
    let mut k = kernel_with(acm);
    let (tx_script, tx_log) = ScriptProcess::new(vec![
        Syscall::sendrec(
            pm::PM_ENDPOINT,
            pm::PM_DELEGATE,
            pm::encode_cap_rpc(RX, RX, MsgTypeSet::of([MsgType::new(5), MsgType::new(9)]))
                .as_bytes(),
        ),
        Syscall::sendrec(
            pm::PM_ENDPOINT,
            pm::PM_DELEGATE,
            pm::encode_cap_rpc(RX, RX, MsgTypeSet::of([MsgType::new(5)])).as_bytes(),
        ),
    ])
    .logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.spawn(
        "rx",
        RX,
        1000,
        Box::new(ScriptProcess::new(vec![Syscall::GetUptime])),
    )
    .unwrap();
    k.run_to_quiescence();

    let replies = collected_replies(&tx_log);
    assert_eq!(replies.len(), 2);
    // Over-broad delegation rejected; subset delegation accepted.
    assert_eq!(replies[0].message().expect("reply").mtype, pm::PM_ERR);
    assert_eq!(replies[1].message().expect("reply").mtype, pm::PM_OK);
    assert!(k.acm().check(RX, RX, MsgType::new(5)).is_allowed());
    assert!(!k.acm().check(RX, RX, MsgType::new(9)).is_allowed());
    assert_eq!(k.delegations().records.len(), 1);
    assert_eq!(k.delegations().records[0].grantor, TX);
}
