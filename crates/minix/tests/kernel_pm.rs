//! Integration tests for the PM server: fork2, kill (with ACM auditing and
//! DAC), exit, getpid, fork bombs and quotas, and device ownership.

use bas_acm::{AcId, AccessControlMatrix, QuotaTable, SyscallClass};
use bas_minix::error::MinixError;
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::pm::{
    self, decode_err, decode_fork2_ok, encode_fork2, encode_kill, PM_ENDPOINT, PM_ERR, PM_EXIT,
    PM_FORK2, PM_GETPID, PM_KILL, PM_OK,
};
use bas_minix::script::{collected_replies, ScriptProcess};
use bas_minix::syscall::{Reply, Syscall};
use bas_sim::device::DeviceId;

const LOADER: AcId = AcId::new(2);
const CHILD: AcId = AcId::new(100);
const WEB: AcId = AcId::new(104);

fn pm_acm(kill_for_loader: bool) -> AccessControlMatrix {
    let b = AccessControlMatrix::builder();
    let b = pm::allow_pm_ops(
        b,
        LOADER,
        if kill_for_loader {
            vec![PM_FORK2, PM_KILL, PM_EXIT, PM_GETPID]
        } else {
            vec![PM_FORK2, PM_EXIT, PM_GETPID]
        },
    );
    // Web interface may fork (the paper notes it can) but never kill.
    pm::allow_pm_ops(b, WEB, [PM_FORK2]).build()
}

#[test]
fn fork2_loads_registered_program_with_given_ac_id() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(false),
        ..MinixConfig::default()
    });
    let prog = k.register_program(
        "worker",
        Box::new(|| Box::new(ScriptProcess::new(vec![Syscall::WhoAmI]))),
    );
    let (loader, log) = ScriptProcess::new(vec![Syscall::SendRec {
        dest: PM_ENDPOINT,
        mtype: PM_FORK2,
        payload: encode_fork2(prog, CHILD, 1234),
    }])
    .logged();
    k.spawn("loader", LOADER, 0, Box::new(loader)).unwrap();
    k.run_to_quiescence();
    let replies = collected_replies(&log);
    let msg = replies[0].message().expect("PM replied");
    assert_eq!(msg.source, PM_ENDPOINT);
    assert_eq!(msg.mtype, PM_OK);
    let child_ep = decode_fork2_ok(&msg.payload);
    // Child ran and exited (its WhoAmI completed); it was created.
    assert_eq!(k.metrics().processes_created, 2);
    assert!(child_ep.slot() > 0);
}

#[test]
fn fork2_unknown_program_errors() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(false),
        ..MinixConfig::default()
    });
    let (loader, log) = ScriptProcess::new(vec![Syscall::SendRec {
        dest: PM_ENDPOINT,
        mtype: PM_FORK2,
        payload: encode_fork2(99, CHILD, 0),
    }])
    .logged();
    k.spawn("loader", LOADER, 0, Box::new(loader)).unwrap();
    k.run_to_quiescence();
    let msg = *collected_replies(&log)[0].message().unwrap();
    assert_eq!(msg.mtype, PM_ERR);
    assert_eq!(decode_err(&msg.payload), Some(MinixError::NoSuchProgram));
}

#[test]
fn kill_requires_acm_channel_web_interface_denied() {
    // The paper's key result: even with root, the web interface cannot
    // kill, because the ACM denies the KILL message type to PM.
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(true),
        ..MinixConfig::default()
    });
    let victim = k
        .spawn(
            "victim",
            CHILD,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    let (web, log) = ScriptProcess::new(vec![Syscall::SendRec {
        dest: PM_ENDPOINT,
        mtype: PM_KILL,
        payload: encode_kill(victim),
    }])
    .logged();
    k.spawn("web", WEB, 0, Box::new(web)).unwrap(); // uid 0 = root!
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&log),
        vec![Reply::Err(MinixError::CallDenied)],
        "ACM drops the KILL request before PM sees it, root or not"
    );
    assert!(k.is_alive(victim), "victim unharmed");
    assert_eq!(k.metrics().access_denied, 1);
}

#[test]
fn kill_allowed_by_acm_still_needs_uid_permission() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(true),
        ..MinixConfig::default()
    });
    let victim = k
        .spawn(
            "victim",
            CHILD,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    // Loader is allowed KILL by ACM but runs as uid 42 ≠ victim's 1000.
    let (loader, log) = ScriptProcess::new(vec![Syscall::SendRec {
        dest: PM_ENDPOINT,
        mtype: PM_KILL,
        payload: encode_kill(victim),
    }])
    .logged();
    k.spawn("loader", LOADER, 42, Box::new(loader)).unwrap();
    k.run_to_quiescence();
    let msg = *collected_replies(&log)[0].message().unwrap();
    assert_eq!(msg.mtype, PM_ERR);
    assert_eq!(decode_err(&msg.payload), Some(MinixError::PermissionDenied));
    assert!(k.is_alive(victim));
}

#[test]
fn root_with_acm_permission_can_kill() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(true),
        ..MinixConfig::default()
    });
    let victim = k
        .spawn(
            "victim",
            CHILD,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    let (loader, log) = ScriptProcess::new(vec![Syscall::SendRec {
        dest: PM_ENDPOINT,
        mtype: PM_KILL,
        payload: encode_kill(victim),
    }])
    .logged();
    k.spawn("loader", LOADER, 0, Box::new(loader)).unwrap();
    k.run_to_quiescence();
    let msg = *collected_replies(&log)[0].message().unwrap();
    assert_eq!(msg.mtype, PM_OK);
    assert!(!k.is_alive(victim));
    assert_eq!(k.trace().events_in("pm.kill").count(), 1);
}

#[test]
fn pm_itself_cannot_be_killed() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(true),
        ..MinixConfig::default()
    });
    let (loader, log) = ScriptProcess::new(vec![Syscall::SendRec {
        dest: PM_ENDPOINT,
        mtype: PM_KILL,
        payload: encode_kill(PM_ENDPOINT),
    }])
    .logged();
    k.spawn("loader", LOADER, 0, Box::new(loader)).unwrap();
    k.run_to_quiescence();
    let msg = *collected_replies(&log)[0].message().unwrap();
    assert_eq!(decode_err(&msg.payload), Some(MinixError::PermissionDenied));
}

#[test]
fn exit_via_pm_terminates_caller() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(false),
        ..MinixConfig::default()
    });
    let p = k
        .spawn(
            "quitter",
            LOADER,
            0,
            Box::new(ScriptProcess::new(vec![
                Syscall::Send {
                    dest: PM_ENDPOINT,
                    mtype: PM_EXIT,
                    payload: bas_minix::message::Payload::zeroed(),
                },
                // Never reached:
                Syscall::GetUptime,
            ])),
        )
        .unwrap();
    k.run_to_quiescence();
    assert!(!k.is_alive(p));
    assert_eq!(k.metrics().processes_reaped, 1);
}

#[test]
fn getpid_returns_pid_and_endpoint() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(false),
        ..MinixConfig::default()
    });
    let (p, log) = ScriptProcess::new(vec![Syscall::SendRec {
        dest: PM_ENDPOINT,
        mtype: PM_GETPID,
        payload: bas_minix::message::Payload::zeroed(),
    }])
    .logged();
    let ep = k.spawn("asker", LOADER, 0, Box::new(p)).unwrap();
    k.run_to_quiescence();
    let msg = *collected_replies(&log)[0].message().unwrap();
    assert_eq!(msg.mtype, PM_OK);
    assert_eq!(msg.payload.read_u32(0), u32::from(ep.slot()));
    assert_eq!(msg.payload.read_u32(4), ep.as_raw());
}

#[test]
fn fork_bomb_fills_process_table_without_quota() {
    // §IV-D.2: "because web interface process has the privilege to fork
    // children processes, it can potentially launch a fork bomb to eat up
    // system resources. This is problematic..."
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(false),
        max_procs: 8,
        ..MinixConfig::default()
    });
    let prog = k.register_program(
        "sleeper",
        Box::new(|| Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }]))),
    );
    let bomb: Vec<Syscall> = (0..20)
        .map(|_| Syscall::SendRec {
            dest: PM_ENDPOINT,
            mtype: PM_FORK2,
            payload: encode_fork2(prog, CHILD, 1000),
        })
        .collect();
    let (web, log) = ScriptProcess::new(bomb).logged();
    k.spawn("web", WEB, 1000, Box::new(web)).unwrap();
    k.run_to_quiescence();
    let replies = collected_replies(&log);
    let full_errors = replies
        .iter()
        .filter_map(|r| r.message())
        .filter(|m| {
            m.mtype == PM_ERR && decode_err(&m.payload) == Some(MinixError::ProcessTableFull)
        })
        .count();
    assert!(full_errors > 0, "table eventually full");
    // 8 slots minus PM (slot 0) minus the web process itself = 6 sleeper
    // children; the web process exits after its script, the sleepers
    // remain blocked in receive.
    assert_eq!(
        k.process_count(),
        6,
        "sleeper children fill every remaining slot"
    );
}

#[test]
fn fork_quota_contains_fork_bomb() {
    // The paper's proposed fix: "using the ACM to give each system call a
    // quota."
    let mut quotas = QuotaTable::new();
    quotas.set_limit(WEB, SyscallClass::Fork, 2);
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(false),
        quotas,
        max_procs: 32,
        ..MinixConfig::default()
    });
    let prog = k.register_program(
        "sleeper",
        Box::new(|| Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }]))),
    );
    let bomb: Vec<Syscall> = (0..10)
        .map(|_| Syscall::SendRec {
            dest: PM_ENDPOINT,
            mtype: PM_FORK2,
            payload: encode_fork2(prog, CHILD, 1000),
        })
        .collect();
    let (web, log) = ScriptProcess::new(bomb).logged();
    k.spawn("web", WEB, 1000, Box::new(web)).unwrap();
    k.run_to_quiescence();
    let replies = collected_replies(&log);
    let ok = replies
        .iter()
        .filter_map(|r| r.message())
        .filter(|m| m.mtype == PM_OK)
        .count();
    let quota_errors = replies
        .iter()
        .filter_map(|r| r.message())
        .filter(|m| decode_err(&m.payload) == Some(MinixError::QuotaExceeded))
        .count();
    assert_eq!(ok, 2, "only the quota'd forks succeed");
    assert_eq!(quota_errors, 8);
    assert_eq!(k.trace().events_in("quota.deny").count(), 8);
}

#[test]
fn device_access_gated_by_ownership() {
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Reg(Rc<RefCell<i64>>);
    impl bas_sim::device::Device for Reg {
        fn read(&mut self) -> i64 {
            *self.0.borrow()
        }
        fn write(&mut self, v: i64) {
            *self.0.borrow_mut() = v;
        }
    }

    let dev = DeviceId::FAN;
    let mut owners = std::collections::BTreeMap::new();
    owners.insert(dev, CHILD); // the driver identity owns the fan
    let mut k = MinixKernel::new(MinixConfig {
        acm: AccessControlMatrix::deny_all(),
        device_owners: owners,
        ..MinixConfig::default()
    });
    let cell = Rc::new(RefCell::new(0));
    k.devices_mut().register(dev, Box::new(Reg(cell.clone())));

    // The driver can write.
    let (driver, driver_log) =
        ScriptProcess::new(vec![Syscall::DevWrite { dev, value: 1 }]).logged();
    k.spawn("driver", CHILD, 1000, Box::new(driver)).unwrap();
    // The web interface cannot — not even as root.
    let (web, web_log) = ScriptProcess::new(vec![Syscall::DevWrite { dev, value: 0 }]).logged();
    k.spawn("web", WEB, 0, Box::new(web)).unwrap();
    k.run_to_quiescence();

    assert_eq!(collected_replies(&driver_log), vec![Reply::Ok]);
    assert_eq!(
        collected_replies(&web_log),
        vec![Reply::Err(MinixError::DeviceAccessDenied)]
    );
    assert_eq!(
        *cell.borrow(),
        1,
        "driver's write landed; attacker's was dropped"
    );
    assert_eq!(k.trace().events_in("dev.deny").count(), 1);
}

#[test]
fn sleep_advances_virtual_time_accurately() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: pm_acm(false),
        ..MinixConfig::default()
    });
    let (p, log) = ScriptProcess::new(vec![
        Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_secs(5),
        },
        Syscall::GetUptime,
    ])
    .logged();
    k.spawn("sleeper", LOADER, 0, Box::new(p)).unwrap();
    k.run_to_quiescence();
    let replies = collected_replies(&log);
    assert_eq!(replies[0], Reply::Ok);
    match replies[1] {
        Reply::Uptime(t) => assert!(t.as_secs() >= 5, "woke at {t}"),
        ref other => panic!("expected uptime, got {other:?}"),
    }
}
