//! Edge-case semantics of the MINIX kernel model: deadlocks the kernel
//! must tolerate, notification filtering, send quotas, and self-sends.

use bas_acm::{AcId, AccessControlMatrix, QuotaTable, SyscallClass};
use bas_minix::error::MinixError;
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::script::{collected_replies, ScriptProcess};
use bas_minix::syscall::{Reply, Syscall};

const A: AcId = AcId::new(10);
const B: AcId = AcId::new(11);
const C: AcId = AcId::new(12);

fn open_acm() -> AccessControlMatrix {
    AccessControlMatrix::builder()
        .allow_all_types(A, B)
        .allow_all_types(B, A)
        .allow_all_types(C, B)
        .allow_all_types(B, C)
        .allow_all_types(A, C)
        .allow_all_types(C, A)
        .build()
}

#[test]
fn mutual_sendrec_deadlocks_without_crashing_the_kernel() {
    // Two processes sendrec each other: a classic rendezvous deadlock.
    // The kernel must quiesce (both parked in SENDING) rather than spin
    // or panic — and both processes stay alive (a real watchdog would
    // resolve this; the kernel's job is just to stay consistent).
    let mut k = MinixKernel::new(MinixConfig {
        acm: open_acm(),
        ..MinixConfig::default()
    });
    // Deterministic slot prediction: first spawn = slot 1, second = 2.
    let b_predicted = bas_minix::endpoint::Endpoint::new(2, 0);
    let a = k
        .spawn(
            "a",
            A,
            0,
            Box::new(ScriptProcess::new(vec![Syscall::sendrec(
                b_predicted,
                1,
                [],
            )])),
        )
        .unwrap();
    let b = k
        .spawn(
            "b",
            B,
            0,
            Box::new(ScriptProcess::new(vec![Syscall::sendrec(a, 1, [])])),
        )
        .unwrap();
    assert_eq!(b, b_predicted);
    let steps = k.run_to_quiescence();
    assert!(steps < 100, "deadlock must not livelock the scheduler");
    assert!(k.is_alive(a) && k.is_alive(b), "both parked, neither dead");
    assert_eq!(k.metrics().ipc_messages, 0, "no rendezvous ever completed");
}

#[test]
fn send_to_self_parks_the_sender() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: open_acm(),
        ..MinixConfig::default()
    });
    let self_ep = bas_minix::endpoint::Endpoint::new(1, 0);
    let a = k
        .spawn(
            "a",
            A,
            0,
            Box::new(ScriptProcess::new(vec![Syscall::send(self_ep, 1, [])])),
        )
        .unwrap();
    assert_eq!(a, self_ep);
    // Self-send needs an ACM row A->A to even pass the check; deny-all
    // would reject it. Grant it to exercise the rendezvous path.
    let mut k2 = MinixKernel::new(MinixConfig {
        acm: AccessControlMatrix::builder().allow_all_types(A, A).build(),
        ..MinixConfig::default()
    });
    let a2 = k2
        .spawn(
            "a",
            A,
            0,
            Box::new(ScriptProcess::new(vec![Syscall::send(self_ep, 1, [])])),
        )
        .unwrap();
    k2.run_to_quiescence();
    assert!(k2.is_alive(a2), "parked in SENDING to itself, not crashed");
    assert_eq!(k2.metrics().ipc_messages, 0);
}

#[test]
fn notify_bits_from_two_senders_deliver_separately() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: open_acm(),
        ..MinixConfig::default()
    });
    let rx_predicted = bas_minix::endpoint::Endpoint::new(3, 0);
    let tx1 = k
        .spawn(
            "tx1",
            A,
            0,
            Box::new(ScriptProcess::new(vec![Syscall::Notify {
                dest: rx_predicted,
            }])),
        )
        .unwrap();
    let tx2 = k
        .spawn(
            "tx2",
            C,
            0,
            Box::new(ScriptProcess::new(vec![Syscall::Notify {
                dest: rx_predicted,
            }])),
        )
        .unwrap();
    let (rx, rx_log) = ScriptProcess::new(vec![
        Syscall::GetUptime, // stay busy while the notifies queue
        Syscall::Receive { from: None },
        Syscall::Receive { from: None },
    ])
    .logged();
    let rx_ep = k.spawn("rx", B, 0, Box::new(rx)).unwrap();
    assert_eq!(rx_ep, rx_predicted);
    k.run_to_quiescence();
    let sources: Vec<_> = collected_replies(&rx_log)
        .iter()
        .filter_map(|r| r.message().map(|m| m.source))
        .collect();
    assert_eq!(sources.len(), 2, "one notification per distinct sender");
    assert!(sources.contains(&tx1) && sources.contains(&tx2));
}

#[test]
fn receive_from_specific_defers_other_senders() {
    let mut k = MinixKernel::new(MinixConfig {
        acm: open_acm(),
        ..MinixConfig::default()
    });
    let rx_predicted = bas_minix::endpoint::Endpoint::new(3, 0);
    // Both senders block sending to rx before rx ever receives.
    let (tx_a, tx_a_log) = ScriptProcess::new(vec![Syscall::send(rx_predicted, 1, [1u8])]).logged();
    k.spawn("tx_a", A, 0, Box::new(tx_a)).unwrap();
    let (tx_c, tx_c_log) = ScriptProcess::new(vec![Syscall::send(rx_predicted, 2, [2u8])]).logged();
    let tx_c_ep = k.spawn("tx_c", C, 0, Box::new(tx_c)).unwrap();
    // rx receives only from tx_c first, then from anyone.
    let (rx, rx_log) = ScriptProcess::new(vec![
        Syscall::Receive {
            from: Some(tx_c_ep),
        },
        Syscall::Receive { from: None },
    ])
    .logged();
    let rx_ep = k.spawn("rx", B, 0, Box::new(rx)).unwrap();
    assert_eq!(rx_ep, rx_predicted);
    k.run_to_quiescence();

    let got = collected_replies(&rx_log);
    assert_eq!(
        got[0].message().unwrap().mtype,
        2,
        "filtered receive picked tx_c"
    );
    assert_eq!(got[1].message().unwrap().mtype, 1, "tx_a served afterwards");
    assert_eq!(collected_replies(&tx_a_log), vec![Reply::Ok]);
    assert_eq!(collected_replies(&tx_c_log), vec![Reply::Ok]);
}

#[test]
fn send_quota_cuts_off_flooding_identity() {
    let mut quotas = QuotaTable::new();
    quotas.set_limit(A, SyscallClass::Send, 3);
    let mut k = MinixKernel::new(MinixConfig {
        acm: open_acm(),
        quotas,
        ..MinixConfig::default()
    });
    let rx = k
        .spawn(
            "rx",
            B,
            0,
            Box::new(ScriptProcess::looping(vec![Syscall::Receive {
                from: None,
            }])),
        )
        .unwrap();
    let sends: Vec<Syscall> = (0..6).map(|i| Syscall::send(rx, 1, [i as u8])).collect();
    let (tx, log) = ScriptProcess::new(sends).logged();
    k.spawn("tx", A, 0, Box::new(tx)).unwrap();
    k.run_until(bas_sim::time::SimTime::from_nanos(10_000_000_000));
    let replies = collected_replies(&log);
    let ok = replies.iter().filter(|r| **r == Reply::Ok).count();
    let quota_denied = replies
        .iter()
        .filter(|r| **r == Reply::Err(MinixError::QuotaExceeded))
        .count();
    assert_eq!(ok, 3, "quota admits exactly three sends");
    assert_eq!(quota_denied, 3);
}

#[test]
fn trace_records_every_security_relevant_category() {
    let mut k = MinixKernel::new(MinixConfig::default()); // deny-all ACM
    let rx = k
        .spawn(
            "rx",
            B,
            0,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    k.spawn(
        "tx",
        A,
        0,
        Box::new(ScriptProcess::new(vec![Syscall::send(rx, 1, [])])),
    )
    .unwrap();
    k.run_to_quiescence();
    assert!(k.trace().events_in("proc.spawn").count() >= 2);
    assert_eq!(k.trace().events_in("acm.deny").count(), 1);
    assert!(k.trace().events_with_prefix("proc.").count() >= 2);
}
