//! Steady-state IPC must never touch the heap.
//!
//! The arena refactor's contract is "one copy in, one copy out, zero
//! allocations": once a kernel is booted and its message arena warm,
//! the send/rendezvous/deliver loop moves 8-byte `MsgRef` handles and
//! recycles fixed slots. This test pins that contract with a counting
//! `#[global_allocator]`: it warms a ping-pong pair up, switches the
//! counter on mid-stream, runs tens of thousands more messages, and
//! asserts the allocation count stayed at zero. The arena's own
//! `heap_events` counter (surfaced as `KernelMetrics::hot_path_allocs`)
//! is cross-checked against the same window.
//!
//! This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bas_acm::{AcId, AccessControlMatrix};
use bas_minix::endpoint::Endpoint;
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::message::Payload;
use bas_minix::syscall::{Reply, Syscall};
use bas_sim::clock::CostModel;
use bas_sim::process::{Action, Process};
use bas_sim::time::SimTime;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Frees are uncounted: recycling may legitimately return memory.
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const TX: AcId = AcId::new(10);
const RX: AcId = AcId::new(11);

/// Sends rendezvous messages to `dest` forever (bounded by the kernel's
/// virtual-time run window, never by the process).
struct Pump {
    dest: Endpoint,
}

impl Process for Pump {
    type Syscall = Syscall;
    type Reply = Reply;
    fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
        Action::Syscall(Syscall::Send {
            dest: self.dest,
            mtype: 1,
            payload: Payload::zeroed(),
        })
    }
    fn name(&self) -> &str {
        "pump"
    }
}

/// Receives forever.
struct Sink;

impl Process for Sink {
    type Syscall = Syscall;
    type Reply = Reply;
    fn resume(&mut self, _reply: Option<Reply>) -> Action<Syscall> {
        Action::Syscall(Syscall::Receive { from: None })
    }
    fn name(&self) -> &str {
        "sink"
    }
}

#[test]
fn steady_state_ipc_does_not_allocate() {
    let acm = AccessControlMatrix::builder()
        .allow_all_types(TX, RX)
        .build();
    // The default cost model advances virtual time per syscall, which is
    // what bounds the run windows below (the processes never exit).
    let mut k = MinixKernel::new(MinixConfig {
        acm,
        cost_model: CostModel::default(),
        ..MinixConfig::default()
    });
    k.disable_trace();
    let sink = k.spawn("sink", RX, 1000, Box::new(Sink)).expect("sink");
    k.spawn("pump", TX, 1000, Box::new(Pump { dest: sink }))
        .expect("pump");

    // Warmup: boot-time growth (run queue words, process slots, the
    // pre-warmed arena) all happens here, uncounted.
    k.run_until(SimTime::ZERO + bas_sim::time::SimDuration::from_millis(50));
    let warm_messages = k.metrics().ipc_messages;
    let warm_heap_events = k.metrics().hot_path_allocs;
    assert!(warm_messages > 0, "warmup must deliver messages");

    // Counted window: pure steady-state send/deliver traffic.
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    k.run_until(SimTime::ZERO + bas_sim::time::SimDuration::from_millis(500));
    COUNTING.store(false, Ordering::SeqCst);

    let delivered = k.metrics().ipc_messages - warm_messages;
    let heap_events = k.metrics().hot_path_allocs - warm_heap_events;
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert!(
        delivered > 10_000,
        "counted window too small to be meaningful: {delivered} messages"
    );
    assert_eq!(
        heap_events, 0,
        "arena reported slot growth or spills in steady state"
    );
    assert_eq!(
        allocs, 0,
        "steady-state IPC hit the global allocator {allocs} time(s) \
         across {delivered} messages"
    );
}
