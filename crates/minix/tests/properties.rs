//! Property-based tests for MINIX message formats and kernel-level
//! security invariants.

use bas_acm::{AcId, AccessControlMatrix, MsgType};
use bas_minix::endpoint::Endpoint;
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::message::{Payload, PAYLOAD_LEN};
use bas_minix::script::{collected_replies, ScriptProcess};
use bas_minix::syscall::{Reply, Syscall};
use proptest::prelude::*;

proptest! {
    /// Payload field codecs round-trip at any valid offset.
    #[test]
    fn payload_u32_roundtrip(offset in 0usize..=PAYLOAD_LEN - 4, value in any::<u32>()) {
        let mut p = Payload::zeroed();
        p.write_u32(offset, value);
        prop_assert_eq!(p.read_u32(offset), value);
    }

    /// 64-bit fields too.
    #[test]
    fn payload_u64_roundtrip(offset in 0usize..=PAYLOAD_LEN - 8, value in any::<u64>()) {
        let mut p = Payload::zeroed();
        p.write_u64(offset, value);
        prop_assert_eq!(p.read_u64(offset), value);
    }

    /// Non-overlapping writes never disturb each other.
    #[test]
    fn payload_disjoint_writes_commute(
        a_off in 0usize..=PAYLOAD_LEN - 4,
        b_off in 0usize..=PAYLOAD_LEN - 4,
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        prop_assume!(a_off.abs_diff(b_off) >= 4);
        let mut p = Payload::zeroed();
        p.write_u32(a_off, a);
        p.write_u32(b_off, b);
        prop_assert_eq!(p.read_u32(a_off), a);
        prop_assert_eq!(p.read_u32(b_off), b);
    }

    /// Endpoint wire form round-trips for every slot/generation pair.
    #[test]
    fn endpoint_raw_roundtrip(slot in any::<u16>(), generation in any::<u16>()) {
        let e = Endpoint::new(slot, generation);
        prop_assert_eq!(Endpoint::from_raw(e.as_raw()), e);
    }

    /// Kernel-level mandatory control: for any (possibly empty) allowed
    /// type set, a message is delivered iff its type is in the set —
    /// regardless of payload and regardless of sender uid.
    #[test]
    fn kernel_honors_acm_exactly(
        allowed in prop::collection::btree_set(0u32..8, 0..5),
        attempt in 0u32..8,
        sender_uid in prop::sample::select(vec![0u32, 1000]),
        payload_bytes in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let tx = AcId::new(10);
        let rx = AcId::new(11);
        let acm = AccessControlMatrix::builder()
            .allow(tx, rx, allowed.iter().map(|t| MsgType::new(*t)))
            .build();
        let mut k = MinixKernel::new(MinixConfig { acm, ..MinixConfig::default() });
        let rx_ep = k
            .spawn("rx", rx, 1000, Box::new(ScriptProcess::new(vec![
                Syscall::Receive { from: None },
            ])))
            .unwrap();
        let (tx_script, log) = ScriptProcess::new(vec![Syscall::Send {
            dest: rx_ep,
            mtype: attempt,
            payload: Payload::from_bytes(&payload_bytes),
        }])
        .logged();
        k.spawn("tx", tx, sender_uid, Box::new(tx_script)).unwrap();
        k.run_to_quiescence();

        let replies = collected_replies(&log);
        let should_pass = allowed.contains(&attempt);
        if should_pass {
            prop_assert_eq!(&replies[..], &[Reply::Ok][..]);
            prop_assert_eq!(k.metrics().ipc_messages, 1);
        } else {
            prop_assert_eq!(
                &replies[..],
                &[Reply::Err(bas_minix::error::MinixError::CallDenied)][..]
            );
            prop_assert_eq!(k.metrics().ipc_messages, 0);
            prop_assert_eq!(k.metrics().access_denied, 1);
        }
    }

    /// Source-identity integrity: whatever bytes a sender puts in the
    /// payload, the receiver sees the kernel-stamped sender endpoint.
    #[test]
    fn delivered_source_is_always_truthful(payload_bytes in prop::collection::vec(any::<u8>(), 0..PAYLOAD_LEN)) {
        let tx = AcId::new(10);
        let rx = AcId::new(11);
        let acm = AccessControlMatrix::builder().allow_all_types(tx, rx).build();
        let mut k = MinixKernel::new(MinixConfig { acm, ..MinixConfig::default() });
        let (rx_script, rx_log) =
            ScriptProcess::new(vec![Syscall::Receive { from: None }]).logged();
        let rx_ep = k.spawn("rx", rx, 1000, Box::new(rx_script)).unwrap();
        let tx_ep = k
            .spawn("tx", tx, 1000, Box::new(ScriptProcess::new(vec![Syscall::Send {
                dest: rx_ep,
                mtype: 1,
                payload: Payload::from_bytes(&payload_bytes),
            }])))
            .unwrap();
        k.run_to_quiescence();
        let got = collected_replies(&rx_log);
        let msg = got[0].message().expect("delivered");
        prop_assert_eq!(msg.source, tx_ep);
    }
}
