//! Kernel-level memory grants: the §III-A "memory grants" primitive,
//! end-to-end through syscalls — including the security angle: grants
//! bind to kernel-held endpoint identity, so no third process (root or
//! not) can use someone else's grant.

use bas_acm::{AcId, AccessControlMatrix};
use bas_minix::error::MinixError;
use bas_minix::grant::{BufId, GrantId, GrantPerms};
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::script::{collected_replies, ScriptProcess};
use bas_minix::syscall::{Reply, Syscall};

const GRANTER: AcId = AcId::new(10);
const GRANTEE: AcId = AcId::new(11);
const INTRUDER: AcId = AcId::new(12);

fn kernel() -> MinixKernel {
    // Grants need no ACM rows: the grant itself is the authorization.
    MinixKernel::new(MinixConfig {
        acm: AccessControlMatrix::deny_all(),
        ..MinixConfig::default()
    })
}

/// Slot prediction: spawns fill slots 1, 2, 3 in order.
fn ep(slot: u16) -> bas_minix::endpoint::Endpoint {
    bas_minix::endpoint::Endpoint::new(slot, 0)
}

#[test]
fn grantee_round_trips_data_through_a_grant() {
    let mut k = kernel();
    // Granter (slot 1): create buffer, fill it, grant a window to the
    // grantee (slot 2), then idle.
    let (granter, granter_log) = ScriptProcess::new(vec![
        Syscall::MemCreate { size: 64 },
        Syscall::MemWrite {
            buf: BufId(0),
            offset: 0,
            data: vec![10, 20, 30, 40],
        },
        Syscall::GrantCreate {
            buf: BufId(0),
            offset: 0,
            len: 32,
            grantee: ep(2),
            perms: GrantPerms::RW,
        },
        Syscall::Receive { from: None }, // stay alive
    ])
    .logged();
    k.spawn("granter", GRANTER, 1000, Box::new(granter))
        .unwrap();

    // Grantee (slot 2): wait for the grant to exist, then read through
    // it, write back, re-read.
    let (grantee, grantee_log) = ScriptProcess::new(vec![
        Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_millis(100),
        },
        Syscall::SafeCopyFrom {
            granter: ep(1),
            grant: GrantId(0),
            offset: 0,
            len: 4,
        },
        Syscall::SafeCopyTo {
            granter: ep(1),
            grant: GrantId(0),
            offset: 4,
            data: vec![99, 98],
        },
        Syscall::SafeCopyFrom {
            granter: ep(1),
            grant: GrantId(0),
            offset: 0,
            len: 6,
        },
    ])
    .logged();
    k.spawn("grantee", GRANTEE, 1000, Box::new(grantee))
        .unwrap();
    k.run_to_quiescence();

    let g = collected_replies(&granter_log);
    assert_eq!(g[0], Reply::Buf(BufId(0)));
    assert_eq!(g[1], Reply::Ok);
    assert_eq!(g[2], Reply::Granted(GrantId(0)));

    let got = collected_replies(&grantee_log);
    assert_eq!(got[1], Reply::Bytes(vec![10, 20, 30, 40]));
    assert_eq!(got[2], Reply::Ok);
    assert_eq!(got[3], Reply::Bytes(vec![10, 20, 30, 40, 99, 98]));
    assert!(
        k.metrics().ipc_bytes >= 12,
        "safe-copies charged as ipc bytes"
    );
}

#[test]
fn third_process_cannot_use_someone_elses_grant() {
    let mut k = kernel();
    let (granter, _) = ScriptProcess::new(vec![
        Syscall::MemCreate { size: 16 },
        Syscall::GrantCreate {
            buf: BufId(0),
            offset: 0,
            len: 16,
            grantee: ep(2),
            perms: GrantPerms::RW,
        },
        Syscall::Receive { from: None },
    ])
    .logged();
    k.spawn("granter", GRANTER, 1000, Box::new(granter))
        .unwrap();
    k.spawn(
        "grantee",
        GRANTEE,
        1000,
        Box::new(ScriptProcess::new(vec![
            Syscall::Receive { from: None }, // passive; just occupies slot 2
        ])),
    )
    .unwrap();
    // The intruder (slot 3) knows the grant id and granter — and runs as
    // ROOT — but is not the grantee.
    let (intruder, log) = ScriptProcess::new(vec![
        Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_millis(100),
        },
        Syscall::SafeCopyFrom {
            granter: ep(1),
            grant: GrantId(0),
            offset: 0,
            len: 4,
        },
        Syscall::SafeCopyTo {
            granter: ep(1),
            grant: GrantId(0),
            offset: 0,
            data: vec![1],
        },
    ])
    .logged();
    k.spawn("intruder", INTRUDER, 0, Box::new(intruder))
        .unwrap();
    k.run_to_quiescence();

    assert_eq!(
        collected_replies(&log),
        vec![
            Reply::Ok,
            Reply::Err(MinixError::PermissionDenied),
            Reply::Err(MinixError::PermissionDenied),
        ],
        "grants bind to kernel identity, not uid"
    );
    assert_eq!(k.metrics().access_denied, 2);
    assert_eq!(k.trace().events_in("grant.deny").count(), 2);
}

#[test]
fn revocation_cuts_off_a_live_grantee() {
    let mut k = kernel();
    let (granter, _) = ScriptProcess::new(vec![
        Syscall::MemCreate { size: 16 },
        Syscall::GrantCreate {
            buf: BufId(0),
            offset: 0,
            len: 16,
            grantee: ep(2),
            perms: GrantPerms::READ,
        },
        // Let the grantee do its first read, then revoke.
        Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_millis(500),
        },
        Syscall::GrantRevoke { grant: GrantId(0) },
        Syscall::Receive { from: None },
    ])
    .logged();
    k.spawn("granter", GRANTER, 1000, Box::new(granter))
        .unwrap();
    let (grantee, log) = ScriptProcess::new(vec![
        Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_millis(100),
        },
        Syscall::SafeCopyFrom {
            granter: ep(1),
            grant: GrantId(0),
            offset: 0,
            len: 1,
        },
        Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_secs(1),
        },
        Syscall::SafeCopyFrom {
            granter: ep(1),
            grant: GrantId(0),
            offset: 0,
            len: 1,
        },
    ])
    .logged();
    k.spawn("grantee", GRANTEE, 1000, Box::new(grantee))
        .unwrap();
    k.run_to_quiescence();

    let got = collected_replies(&log);
    assert_eq!(got[0], Reply::Ok, "settling sleep");
    assert_eq!(got[1], Reply::Bytes(vec![0]), "first read succeeds");
    assert_eq!(got[2], Reply::Ok, "sleep");
    assert_eq!(
        got[3],
        Reply::Err(MinixError::InvalidArgument),
        "revoked grant is gone"
    );
}

#[test]
fn grant_dies_with_the_granter() {
    let mut k = kernel();
    // Granter exits immediately after granting.
    k.spawn(
        "granter",
        GRANTER,
        1000,
        Box::new(ScriptProcess::new(vec![
            Syscall::MemCreate { size: 8 },
            Syscall::GrantCreate {
                buf: BufId(0),
                offset: 0,
                len: 8,
                grantee: ep(2),
                perms: GrantPerms::READ,
            },
        ])),
    )
    .unwrap();
    let (grantee, log) = ScriptProcess::new(vec![
        Syscall::Sleep {
            duration: bas_sim::time::SimDuration::from_secs(1),
        },
        Syscall::SafeCopyFrom {
            granter: ep(1),
            grant: GrantId(0),
            offset: 0,
            len: 1,
        },
    ])
    .logged();
    k.spawn("grantee", GRANTEE, 1000, Box::new(grantee))
        .unwrap();
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&log)[1],
        Reply::Err(MinixError::DeadSourceOrDestination),
        "stale endpoint generation: the dead granter's memory is unreachable"
    );
}
