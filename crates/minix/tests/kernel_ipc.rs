//! Integration tests for MINIX kernel IPC semantics: rendezvous, sendrec,
//! non-blocking send, notify, ACM enforcement, and identity stamping.

use bas_acm::{AcId, AccessControlMatrix, MsgType};
use bas_minix::endpoint::Endpoint;
use bas_minix::error::MinixError;
use bas_minix::kernel::{MinixConfig, MinixKernel};
use bas_minix::message::Payload;
use bas_minix::pm::NOTIFY_MTYPE;
use bas_minix::script::{collected_replies, ScriptProcess};
use bas_minix::syscall::{Reply, Syscall};
use bas_sim::clock::CostModel;

const TX: AcId = AcId::new(10);
const RX: AcId = AcId::new(11);

fn kernel_with(acm: AccessControlMatrix) -> MinixKernel {
    MinixKernel::new(MinixConfig {
        acm,
        cost_model: CostModel::default(),
        ..MinixConfig::default()
    })
}

fn open_acm() -> AccessControlMatrix {
    AccessControlMatrix::builder()
        .allow_all_types(TX, RX)
        .allow_all_types(RX, TX)
        .build()
}

#[test]
fn send_then_receive_delivers_once() {
    let mut k = kernel_with(open_acm());
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::send(rx, 7, [1u8, 2, 3])]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.run_to_quiescence();
    assert_eq!(k.metrics().ipc_messages, 1);
    assert_eq!(collected_replies(&tx_log), vec![Reply::Ok]);
}

#[test]
fn receive_then_send_also_rendezvouses() {
    // Order independence: receiver blocks first, sender arrives later.
    let mut k = kernel_with(open_acm());
    let (rx_script, rx_log) = ScriptProcess::new(vec![Syscall::Receive { from: None }]).logged();
    let rx = k.spawn("rx", RX, 1000, Box::new(rx_script)).unwrap();
    // Let the receiver block before the sender exists.
    k.run_to_quiescence();
    let tx = k
        .spawn(
            "tx",
            TX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::send(rx, 9, [5u8])])),
        )
        .unwrap();
    k.run_to_quiescence();
    let replies = collected_replies(&rx_log);
    assert_eq!(replies.len(), 1);
    let msg = replies[0].message().expect("delivered message");
    assert_eq!(msg.source, tx, "kernel must stamp the true sender endpoint");
    assert_eq!(msg.mtype, 9);
    assert_eq!(msg.payload.as_bytes()[0], 5);
    // The receiver was already at its rendezvous: no backpressure.
    assert_eq!(k.metrics().ipc_waits, 0);
}

#[test]
fn delivered_source_is_kernel_stamped_not_forgeable() {
    // The sender has no field to claim an identity: the only identity the
    // receiver sees is the kernel-stamped endpoint. Verify the stamp
    // matches the actual sender even when the payload claims otherwise.
    let mut k = kernel_with(open_acm());
    let (rx_script, rx_log) = ScriptProcess::new(vec![Syscall::Receive { from: None }]).logged();
    let rx = k.spawn("rx", RX, 1000, Box::new(rx_script)).unwrap();
    // Payload bytes pretend to be "endpoint 1 gen 0" — irrelevant.
    let mut fake = Payload::zeroed();
    fake.write_u32(0, Endpoint::new(1, 0).as_raw());
    let tx = k
        .spawn(
            "tx",
            TX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Send {
                dest: rx,
                mtype: 1,
                payload: fake,
            }])),
        )
        .unwrap();
    k.run_to_quiescence();
    let replies = collected_replies(&rx_log);
    let msg = replies[0].message().unwrap();
    assert_eq!(msg.source, tx);
    assert_ne!(msg.source, Endpoint::new(1, 0));
}

#[test]
fn acm_denies_unlisted_channel_and_receiver_unaffected() {
    // TX may not send to RX at all.
    let acm = AccessControlMatrix::builder()
        .allow_all_types(RX, TX)
        .build();
    let mut k = kernel_with(acm);
    let (rx_script, rx_log) = ScriptProcess::new(vec![Syscall::Receive { from: None }]).logged();
    let rx = k.spawn("rx", RX, 1000, Box::new(rx_script)).unwrap();
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::send(rx, 1, [])]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&tx_log),
        vec![Reply::Err(MinixError::CallDenied)],
        "sender sees ECALLDENIED"
    );
    assert!(
        collected_replies(&rx_log).is_empty(),
        "receiver still blocked, got nothing"
    );
    assert_eq!(k.metrics().access_denied, 1);
    assert_eq!(k.metrics().ipc_messages, 0);
    assert_eq!(k.trace().events_in("acm.deny").count(), 1);
}

#[test]
fn acm_denies_wrong_message_type_on_existing_channel() {
    let acm = AccessControlMatrix::builder()
        .allow(TX, RX, [MsgType::new(2)])
        .build();
    let mut k = kernel_with(acm);
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![
                Syscall::Receive { from: None },
                Syscall::Receive { from: None },
            ])),
        )
        .unwrap();
    let (tx_script, tx_log) = ScriptProcess::new(vec![
        Syscall::send(rx, 1, []), // denied: wrong type
        Syscall::send(rx, 2, []), // allowed
    ])
    .logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.run_to_quiescence();
    let replies = collected_replies(&tx_log);
    assert_eq!(replies[0], Reply::Err(MinixError::CallDenied));
    assert_eq!(replies[1], Reply::Ok);
    assert_eq!(k.metrics().ipc_messages, 1);
}

#[test]
fn sendrec_completes_rpc_roundtrip() {
    let mut k = kernel_with(open_acm());
    // Server: receive, then reply to whoever called (we know it's tx).
    let (server_script, server_log) =
        ScriptProcess::new(vec![Syscall::Receive { from: None }]).logged();
    let server = k
        .spawn("server", RX, 1000, Box::new(server_script))
        .unwrap();
    let (client_script, client_log) =
        ScriptProcess::new(vec![Syscall::sendrec(server, 3, [42u8])]).logged();
    let client = k
        .spawn("client", TX, 1000, Box::new(client_script))
        .unwrap();
    k.run_to_quiescence();
    // Server got the request, then its script ended and it exited; the
    // client, parked awaiting the reply, must be unblocked with an error
    // rather than hang forever.
    let req = collected_replies(&server_log);
    assert_eq!(req.len(), 1);
    assert_eq!(req[0].message().unwrap().source, client);
    assert_eq!(
        collected_replies(&client_log),
        vec![Reply::Err(MinixError::DeadSourceOrDestination)],
        "server died before replying"
    );

    // Now a proper server that replies: full RPC round trip.
    let mut k2 = kernel_with(open_acm());
    struct ReplyingServer;
    impl bas_sim::process::Process for ReplyingServer {
        type Syscall = Syscall;
        type Reply = Reply;
        fn resume(&mut self, reply: Option<Reply>) -> bas_sim::process::Action<Syscall> {
            match reply {
                None => bas_sim::process::Action::Syscall(Syscall::Receive { from: None }),
                Some(Reply::Msg(m)) => bas_sim::process::Action::Syscall(Syscall::send(
                    m.source,
                    0,
                    [m.payload.as_bytes()[0] + 1],
                )),
                Some(_) => bas_sim::process::Action::Exit(0),
            }
        }
    }
    let server2 = k2
        .spawn("server", RX, 1000, Box::new(ReplyingServer))
        .unwrap();
    let (client2, client2_log) =
        ScriptProcess::new(vec![Syscall::sendrec(server2, 3, [42u8])]).logged();
    k2.spawn("client", TX, 1000, Box::new(client2)).unwrap();
    k2.run_to_quiescence();
    let replies = collected_replies(&client2_log);
    assert_eq!(replies.len(), 1, "client got exactly the reply");
    let msg = replies[0].message().unwrap();
    assert_eq!(msg.source, server2);
    assert_eq!(msg.mtype, 0);
    assert_eq!(
        msg.payload.as_bytes()[0],
        43,
        "server transformed the value"
    );
}

#[test]
fn nb_send_fails_when_receiver_not_ready() {
    let mut k = kernel_with(open_acm());
    // Receiver never calls receive.
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Sleep {
                duration: bas_sim::time::SimDuration::from_secs(100),
            }])),
        )
        .unwrap();
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::nb_send(rx, 1, [])]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&tx_log),
        vec![Reply::Err(MinixError::NotReady)]
    );
}

#[test]
fn nb_send_succeeds_when_receiver_waiting() {
    let mut k = kernel_with(open_acm());
    let (rx_script, rx_log) = ScriptProcess::new(vec![Syscall::Receive { from: None }]).logged();
    let rx = k.spawn("rx", RX, 1000, Box::new(rx_script)).unwrap();
    k.run_to_quiescence(); // receiver blocks
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::nb_send(rx, 4, [9u8])]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.run_to_quiescence();
    assert_eq!(collected_replies(&tx_log), vec![Reply::Ok]);
    assert_eq!(collected_replies(&rx_log)[0].message().unwrap().mtype, 4);
}

#[test]
fn receive_filter_ignores_other_senders() {
    let third = AcId::new(12);
    let acm = AccessControlMatrix::builder()
        .allow_all_types(TX, RX)
        .allow_all_types(third, RX)
        .build();
    let mut k = kernel_with(acm);
    // rx receives only from a specific endpoint that we'll learn below.
    // Spawn senders first so we can reference their endpoints.
    let (rx_script_placeholder, _) = ScriptProcess::new(vec![]).logged();
    drop(rx_script_placeholder);

    // Spawn rx last: it filters on tx2's endpoint.
    let tx1 = k
        .spawn("tx1", TX, 1000, Box::new(ScriptProcess::new(vec![])))
        .unwrap();
    let _ = tx1;
    // We need the endpoints before building rx's script, so spawn stub
    // senders that block sending to rx's future endpoint — but endpoints
    // are deterministic: slots fill in order 1,2,3... Predict rx = slot 3.
    let rx_predicted = Endpoint::new(3, 0);
    let tx2 = k
        .spawn(
            "tx2",
            third,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::send(
                rx_predicted,
                8,
                [2u8],
            )])),
        )
        .unwrap();
    let (rx_script, rx_log) =
        ScriptProcess::new(vec![Syscall::Receive { from: Some(tx2) }]).logged();
    let rx = k.spawn("rx", RX, 1000, Box::new(rx_script)).unwrap();
    assert_eq!(rx, rx_predicted, "slot allocation is deterministic");
    k.run_to_quiescence();
    let replies = collected_replies(&rx_log);
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].message().unwrap().source, tx2);
}

#[test]
fn notify_queues_when_receiver_busy_and_delivers_on_receive() {
    let mut k = kernel_with(open_acm());
    let rx_predicted = Endpoint::new(2, 0);
    let (tx_script, tx_log) =
        ScriptProcess::new(vec![Syscall::Notify { dest: rx_predicted }]).logged();
    let tx = k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    let (rx_script, rx_log) = ScriptProcess::new(vec![
        Syscall::GetUptime, // busy turn; notify arrives while not receiving
        Syscall::Receive { from: None },
    ])
    .logged();
    let rx = k.spawn("rx", RX, 1000, Box::new(rx_script)).unwrap();
    assert_eq!(rx, rx_predicted);
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&tx_log),
        vec![Reply::Ok],
        "notify never blocks"
    );
    let rx_replies = collected_replies(&rx_log);
    let delivered = rx_replies
        .iter()
        .find_map(|r| r.message())
        .expect("notify delivered");
    assert_eq!(delivered.source, tx);
    assert_eq!(delivered.mtype, NOTIFY_MTYPE);
}

#[test]
fn notify_subject_to_acm() {
    let acm = AccessControlMatrix::builder().build(); // deny everything
    let mut k = kernel_with(acm);
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::Notify { dest: rx }]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&tx_log),
        vec![Reply::Err(MinixError::CallDenied)]
    );
}

#[test]
fn send_to_stale_generation_fails() {
    let mut k = kernel_with(open_acm());
    // Victim exits immediately.
    let victim = k
        .spawn("victim", RX, 1000, Box::new(ScriptProcess::new(vec![])))
        .unwrap();
    k.run_to_quiescence(); // victim exits; slot freed, generation bumped
                           // New process reuses the slot with a new generation.
    let reborn = k
        .spawn(
            "reborn",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    assert_eq!(victim.slot(), reborn.slot(), "slot reused");
    assert_ne!(victim, reborn, "generation differs");
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::send(victim, 1, [])]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.run_to_quiescence();
    assert_eq!(
        collected_replies(&tx_log),
        vec![Reply::Err(MinixError::DeadSourceOrDestination)],
        "stale endpoint must not reach the slot's new occupant"
    );
}

#[test]
fn blocked_sender_unblocked_with_error_when_peer_dies() {
    let mut k = kernel_with(open_acm());
    // Receiver sleeps forever without receiving, then exits via script end?
    // Use a receiver that sleeps then exits, with sender blocked on it.
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Sleep {
                duration: bas_sim::time::SimDuration::from_millis(1),
            }])),
        )
        .unwrap();
    let (tx_script, tx_log) = ScriptProcess::new(vec![Syscall::send(rx, 1, [])]).logged();
    k.spawn("tx", TX, 1000, Box::new(tx_script)).unwrap();
    k.run_to_quiescence();
    // rx woke from sleep, script ended, process exited; tx was blocked
    // sending and must get EDEADSRCDST.
    assert_eq!(
        collected_replies(&tx_log),
        vec![Reply::Err(MinixError::DeadSourceOrDestination)]
    );
    // The blocked send is backpressure: exactly one ipc_wait, and no
    // message was ever delivered.
    assert_eq!(k.metrics().ipc_waits, 1);
    assert_eq!(k.metrics().ipc_messages, 0);
}

#[test]
fn uptime_whoami_lookup_roundtrip() {
    let mut k = kernel_with(open_acm());
    let (script, log) = ScriptProcess::new(vec![
        Syscall::GetUptime,
        Syscall::WhoAmI,
        Syscall::Lookup { name: "me".into() },
        Syscall::Lookup {
            name: "ghost".into(),
        },
    ])
    .logged();
    let me = k.spawn("me", TX, 55, Box::new(script)).unwrap();
    k.run_to_quiescence();
    let replies = collected_replies(&log);
    assert!(matches!(replies[0], Reply::Uptime(_)));
    match &replies[1] {
        Reply::Ident {
            endpoint,
            ac_id,
            uid,
        } => {
            assert_eq!(*endpoint, me);
            assert_eq!(*ac_id, TX);
            assert_eq!(*uid, 55);
        }
        other => panic!("expected Ident, got {other:?}"),
    }
    assert_eq!(replies[2], Reply::Resolved(me));
    assert_eq!(replies[3], Reply::Err(MinixError::NoSuchProcess));
}

#[test]
fn ipc_charges_context_switches_and_copy_costs() {
    let mut k = kernel_with(open_acm());
    let rx = k
        .spawn(
            "rx",
            RX,
            1000,
            Box::new(ScriptProcess::new(vec![Syscall::Receive { from: None }])),
        )
        .unwrap();
    k.spawn(
        "tx",
        TX,
        1000,
        Box::new(ScriptProcess::new(vec![Syscall::send(rx, 1, [])])),
    )
    .unwrap();
    let t0 = k.now();
    k.run_to_quiescence();
    assert!(k.now() > t0, "virtual time advanced");
    assert!(
        k.metrics().context_switches >= 2,
        "at least tx and rx each ran"
    );
    assert_eq!(k.metrics().ipc_bytes, 64);
}
