//! End-to-end: assembly → CapDL → realized seL4 system → live RPC →
//! post-run capability audit.

use bas_camkes::assembly::Assembly;
use bas_camkes::codegen::compile;
use bas_camkes::component::{Component, Procedure};
use bas_camkes::glue::{RpcClient, RpcServer};
use bas_capdl::{realize, verify};
use bas_sel4::kernel::{Sel4Config, Sel4Kernel, Sel4Thread};
use bas_sel4::syscall::{Reply, Syscall};
use bas_sim::process::{Action, Process};
use bas_sim::script::{replies, Script};

/// A server thread that answers `add(a, b)` requests forever.
struct AddServer {
    server: RpcServer,
}

impl Process for AddServer {
    type Syscall = Syscall;
    type Reply = Reply;

    fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
        match reply {
            None | Some(Reply::Ok) => Action::Syscall(self.server.next_request()),
            Some(Reply::Msg(m)) => {
                let req = self.server.decode(&m);
                let sum: u64 = req.args.iter().sum();
                Action::Syscall(self.server.reply(req.label, vec![sum, req.badge]))
            }
            Some(_) => Action::Exit(1),
        }
    }

    fn name(&self) -> &str {
        "add-server"
    }
}

fn assembly() -> Assembly {
    let api = Procedure::new("adder", ["add"]);
    Assembly::new()
        .instance(
            "calc",
            Component::new("calc_server").provides("adder", api.clone()),
        )
        .instance(
            "web",
            Component::new("web_client").uses("adder", api.clone()),
        )
        .instance("ctrl", Component::new("ctrl_client").uses("adder", api))
        .rpc_connection("web_conn", ("web", "adder"), ("calc", "adder"))
        .rpc_connection("ctrl_conn", ("ctrl", "adder"), ("calc", "adder"))
}

#[test]
fn compiled_system_serves_rpc_and_verifies() {
    let a = assembly();
    let (spec, glue) = compile(&a).unwrap();

    let server_slot = glue.server_slot("calc", "adder").unwrap();
    let web_slot = glue.client_slot("web", "adder").unwrap();
    let ctrl_slot = glue.client_slot("ctrl", "adder").unwrap();

    let mut k = Sel4Kernel::new(Sel4Config::default());
    let web_client = RpcClient::new(web_slot);
    let ctrl_client = RpcClient::new(ctrl_slot);
    let (web_script, web_log) =
        Script::<Syscall, Reply>::new(vec![web_client.call(0, vec![1, 2])]).logged();
    let (ctrl_script, ctrl_log) =
        Script::<Syscall, Reply>::new(vec![ctrl_client.call(0, vec![10, 20])]).logged();

    let mut web_script = Some(web_script);
    let mut ctrl_script = Some(ctrl_script);
    let mut loader = |name: &str| -> Option<Sel4Thread> {
        match name {
            "calc" => Some(Box::new(AddServer {
                server: RpcServer::new(server_slot),
            })),
            "web" => web_script.take().map(|s| Box::new(s) as Sel4Thread),
            "ctrl" => ctrl_script.take().map(|s| Box::new(s) as Sel4Thread),
            _ => None,
        }
    };
    let sys = realize(&spec, &mut k, &mut loader).unwrap();

    // Boot-time audit: live layout matches the compiled spec exactly.
    assert_eq!(verify(&spec, &k, &sys), vec![]);

    for name in ["calc", "web", "ctrl"] {
        k.start_thread(sys.threads[name]);
    }
    k.run_to_quiescence();

    // Both clients received correct results, with their own badges echoed
    // back — the server can tell them apart without trusting any payload.
    let web_badge = glue.badge_of("web", "adder").unwrap();
    let ctrl_badge = glue.badge_of("ctrl", "adder").unwrap();
    let web_reply = replies(&web_log);
    let got = web_reply[0].message().unwrap();
    assert_eq!(got.words, vec![3, web_badge]);
    let ctrl_reply = replies(&ctrl_log);
    let got = ctrl_reply[0].message().unwrap();
    assert_eq!(got.words, vec![30, ctrl_badge]);
    assert_ne!(web_badge, ctrl_badge);

    // The server is still alive (clients exited); its capability state is
    // still exactly the spec (no leakage from serving requests).
    let issues = verify(&spec, &k, &sys);
    let calc_issues: Vec<_> = issues
        .iter()
        .filter(|i| !matches!(i, bas_capdl::VerifyIssue::ThreadMissing { name } if name != "calc"))
        .collect();
    assert!(
        calc_issues
            .iter()
            .all(|i| matches!(i, bas_capdl::VerifyIssue::ThreadMissing { .. })),
        "no capability drift on the surviving server: {calc_issues:?}"
    );
}

#[test]
fn client_without_connection_cannot_reach_server() {
    // An instance with a used-but-unconnected interface gets no capability
    // at all, so it cannot invoke anything.
    let api = Procedure::new("adder", ["add"]);
    let a = Assembly::new()
        .instance(
            "calc",
            Component::new("calc_server").provides("adder", api.clone()),
        )
        .instance("lonely", Component::new("nc").uses("adder", api));
    let (spec, glue) = compile(&a).unwrap();
    assert!(glue.client_slot("lonely", "adder").is_none());

    let mut k = Sel4Kernel::new(Sel4Config::default());
    // "lonely" tries slot 0 anyway (guessing).
    let (probe, log) = Script::<Syscall, Reply>::new(vec![Syscall::Call {
        ep: bas_sel4::cap::CPtr::new(0),
        msg: bas_sel4::message::IpcMessage::with_label(0),
    }])
    .logged();
    let mut probe = Some(probe);
    let mut loader = |name: &str| -> Option<Sel4Thread> {
        match name {
            "calc" => Some(Box::new(Script::<Syscall, Reply>::new(vec![]))),
            "lonely" => probe.take().map(|s| Box::new(s) as Sel4Thread),
            _ => None,
        }
    };
    let sys = realize(&spec, &mut k, &mut loader).unwrap();
    k.start_thread(sys.threads["lonely"]);
    k.run_to_quiescence();
    assert_eq!(
        replies(&log),
        vec![Reply::Err(bas_sel4::Sel4Error::InvalidCapability)],
        "no connection, no capability, no access"
    );
}
