//! Compiling an assembly into a capability distribution.
//!
//! This is the CAmkES "glue code generation" step: each connected provided
//! interface becomes one badged endpoint; the server gets a read
//! capability; every client gets a write+grant capability with a unique
//! badge so the server can tell clients apart; hardware dependencies
//! become device-frame capabilities. The output is a
//! [`bas_capdl::CapDlSpec`] — "For CAmkES, CapDL is used to describe the
//! state of all the capabilities after bootstrap" — plus a [`GlueMap`]
//! telling the runtime glue which slot carries what.

use std::collections::BTreeMap;
use std::fmt;

use bas_capdl::spec::{
    CapDecl, CapDlSpec, CapTargetSpec, DerivationDecl, ObjDecl, SpecObjKind, ThreadDecl,
};
use bas_sel4::cap::CPtr;
use bas_sel4::rights::CapRights;

use crate::assembly::Assembly;

/// Errors from [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The assembly failed validation.
    Invalid(Vec<String>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Invalid(problems) => {
                write!(f, "invalid assembly: {}", problems.join("; "))
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Slot and badge layout produced by compilation; the runtime glue's map
/// from interfaces to CSpace slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlueMap {
    client_slots: BTreeMap<(String, String), CPtr>,
    server_slots: BTreeMap<(String, String), CPtr>,
    device_slots: BTreeMap<(String, String), CPtr>,
    badges: BTreeMap<(String, String), u64>,
    clients_by_badge: BTreeMap<(String, String, u64), String>,
}

impl GlueMap {
    /// The slot where `instance`'s used interface `iface` capability
    /// lives.
    pub fn client_slot(&self, instance: &str, iface: &str) -> Option<CPtr> {
        self.client_slots
            .get(&(instance.to_string(), iface.to_string()))
            .copied()
    }

    /// The slot where `instance`'s provided interface `iface` endpoint
    /// capability lives.
    pub fn server_slot(&self, instance: &str, iface: &str) -> Option<CPtr> {
        self.server_slots
            .get(&(instance.to_string(), iface.to_string()))
            .copied()
    }

    /// The slot of a hardware dependency's device capability.
    pub fn device_slot(&self, instance: &str, hw: &str) -> Option<CPtr> {
        self.device_slots
            .get(&(instance.to_string(), hw.to_string()))
            .copied()
    }

    /// The badge a client instance sends with on a used interface.
    pub fn badge_of(&self, instance: &str, iface: &str) -> Option<u64> {
        self.badges
            .get(&(instance.to_string(), iface.to_string()))
            .copied()
    }

    /// Resolves a received badge on a server's provided interface to the
    /// client instance name.
    pub fn client_of_badge(&self, server: &str, iface: &str, badge: u64) -> Option<&str> {
        self.clients_by_badge
            .get(&(server.to_string(), iface.to_string(), badge))
            .map(String::as_str)
    }
}

/// Compiles `assembly` into a CapDL spec and its glue map.
///
/// # Errors
///
/// Returns [`CompileError::Invalid`] if the assembly fails validation.
pub fn compile(assembly: &Assembly) -> Result<(CapDlSpec, GlueMap), CompileError> {
    assembly.validate().map_err(CompileError::Invalid)?;

    let mut spec = CapDlSpec::default();
    let mut glue = GlueMap::default();

    // Endpoint objects: one per connected provided interface.
    let ep_name = |server: &str, iface: &str| format!("ep_{server}_{iface}");
    let mut declared_eps = std::collections::BTreeSet::new();
    for conn in &assembly.connections {
        let name = ep_name(&conn.to.0, &conn.to.1);
        if declared_eps.insert(name.clone()) {
            spec.objects.push(ObjDecl {
                name,
                kind: SpecObjKind::Endpoint,
            });
        }
    }

    // Badges: per endpoint, clients numbered from 1 in connection order.
    let mut next_badge: BTreeMap<String, u64> = BTreeMap::new();
    for conn in &assembly.connections {
        let ep = ep_name(&conn.to.0, &conn.to.1);
        let badge = next_badge.entry(ep).and_modify(|b| *b += 1).or_insert(1);
        glue.badges
            .insert((conn.from.0.clone(), conn.from.1.clone()), *badge);
        glue.clients_by_badge.insert(
            (conn.to.0.clone(), conn.to.1.clone(), *badge),
            conn.from.0.clone(),
        );
    }

    // Threads plus per-instance slot layout.
    for inst in &assembly.instances {
        spec.threads.push(ThreadDecl {
            name: inst.name.clone(),
        });
        let mut next_slot = 0u32;
        let mut push_cap = |spec: &mut CapDlSpec, target: CapTargetSpec, rights, badge| {
            let slot = next_slot;
            next_slot += 1;
            spec.caps.push(CapDecl {
                holder: inst.name.clone(),
                slot,
                target,
                rights,
                badge,
            });
            CPtr::new(slot)
        };

        // Server side: read cap per connected provided interface.
        for iface in &inst.component.provides {
            let ep = ep_name(&inst.name, &iface.name);
            if declared_eps.contains(&ep) {
                let slot = push_cap(&mut spec, CapTargetSpec::Object(ep), CapRights::READ, 0);
                glue.server_slots
                    .insert((inst.name.clone(), iface.name.clone()), slot);
            }
        }

        // Client side: write+grant badged cap per connected used interface.
        for iface in &inst.component.uses {
            let conn = assembly
                .connections
                .iter()
                .find(|c| c.from.0 == inst.name && c.from.1 == iface.name);
            if let Some(conn) = conn {
                let ep = ep_name(&conn.to.0, &conn.to.1);
                let badge = glue.badges[&(inst.name.clone(), iface.name.clone())];
                let slot = push_cap(
                    &mut spec,
                    CapTargetSpec::Object(ep),
                    CapRights::WRITE_GRANT,
                    badge,
                );
                glue.client_slots
                    .insert((inst.name.clone(), iface.name.clone()), slot);
            }
        }

        // Hardware: one device object + cap per declared dependency.
        for hw in &inst.component.hardware {
            let obj = format!("dev_{}_{}", inst.name, hw.name);
            spec.objects.push(ObjDecl {
                name: obj.clone(),
                kind: SpecObjKind::Device(hw.dev),
            });
            let slot = push_cap(&mut spec, CapTargetSpec::Object(obj), hw.rights, 0);
            glue.device_slots
                .insert((inst.name.clone(), hw.name.clone()), slot);
        }
    }

    // Provenance: every endpoint cap is a CDT child of the endpoint's
    // original capability (the root cap retyped out of the rootserver's
    // untyped during bootstrap).
    for cap in &spec.caps {
        if let CapTargetSpec::Object(name) = &cap.target {
            if declared_eps.contains(name) {
                spec.derivations.push(DerivationDecl {
                    child: (cap.holder.clone(), cap.slot),
                    origin: name.clone(),
                });
            }
        }
    }

    debug_assert!(spec.validate().is_ok(), "compiler must emit valid capdl");
    Ok((spec, glue))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, Procedure};
    use bas_sim::device::DeviceId;

    fn p() -> Procedure {
        Procedure::new("api", ["m0", "m1"])
    }

    fn two_clients() -> Assembly {
        Assembly::new()
            .instance("srv", Component::new("server").provides("api", p()))
            .instance("c1", Component::new("client").uses("api", p()))
            .instance("c2", Component::new("client").uses("api", p()))
            .rpc_connection("k1", ("c1", "api"), ("srv", "api"))
            .rpc_connection("k2", ("c2", "api"), ("srv", "api"))
    }

    #[test]
    fn one_endpoint_per_provided_interface() {
        let (spec, _) = compile(&two_clients()).unwrap();
        assert_eq!(spec.objects.len(), 1);
        assert_eq!(spec.objects[0].name, "ep_srv_api");
    }

    #[test]
    fn clients_get_unique_badges() {
        let (_, glue) = compile(&two_clients()).unwrap();
        let b1 = glue.badge_of("c1", "api").unwrap();
        let b2 = glue.badge_of("c2", "api").unwrap();
        assert_ne!(b1, b2);
        assert_eq!(glue.client_of_badge("srv", "api", b1), Some("c1"));
        assert_eq!(glue.client_of_badge("srv", "api", b2), Some("c2"));
        assert_eq!(glue.client_of_badge("srv", "api", 999), None);
    }

    #[test]
    fn rights_follow_connector_semantics() {
        let (spec, glue) = compile(&two_clients()).unwrap();
        let server_slot = glue.server_slot("srv", "api").unwrap();
        let server_cap = spec
            .caps
            .iter()
            .find(|c| c.holder == "srv" && c.slot == server_slot.slot())
            .unwrap();
        assert_eq!(server_cap.rights, CapRights::READ);
        let client_slot = glue.client_slot("c1", "api").unwrap();
        let client_cap = spec
            .caps
            .iter()
            .find(|c| c.holder == "c1" && c.slot == client_slot.slot())
            .unwrap();
        assert_eq!(client_cap.rights, CapRights::WRITE_GRANT);
    }

    #[test]
    fn hardware_becomes_device_caps() {
        let a = Assembly::new().instance(
            "driver",
            Component::new("fan_driver").hardware("fan", DeviceId::FAN, CapRights::WRITE),
        );
        let (spec, glue) = compile(&a).unwrap();
        assert!(spec.objects.iter().any(|o| o.name == "dev_driver_fan"));
        assert!(glue.device_slot("driver", "fan").is_some());
        assert!(glue.device_slot("driver", "zz").is_none());
    }

    #[test]
    fn unconnected_interfaces_get_no_caps() {
        let a = Assembly::new().instance(
            "lonely",
            Component::new("t").provides("api", p()).uses("out", p()),
        );
        let (spec, glue) = compile(&a).unwrap();
        assert!(spec.caps.is_empty(), "nothing connected, nothing granted");
        assert!(spec.objects.is_empty());
        assert!(glue.server_slot("lonely", "api").is_none());
        assert!(glue.client_slot("lonely", "out").is_none());
    }

    #[test]
    fn invalid_assembly_rejected() {
        let a = Assembly::new().rpc_connection("bad", ("x", "i"), ("y", "j"));
        assert!(matches!(compile(&a), Err(CompileError::Invalid(_))));
    }

    #[test]
    fn compiled_spec_validates_and_roundtrips_text() {
        let (spec, _) = compile(&two_clients()).unwrap();
        assert!(spec.validate().is_ok());
        let reparsed = CapDlSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn endpoint_caps_carry_provenance() {
        let (spec, _) = compile(&two_clients()).unwrap();
        // One derivation per endpoint cap: srv read + two client caps.
        assert_eq!(spec.derivations.len(), 3);
        assert!(spec.derivations.iter().all(|d| d.origin == "ep_srv_api"));
        let holders: Vec<&str> = spec
            .derivations
            .iter()
            .map(|d| d.child.0.as_str())
            .collect();
        assert!(holders.contains(&"srv") && holders.contains(&"c1") && holders.contains(&"c2"));
    }
}
