//! Runtime glue: RPC marshaling over `seL4_Call`/`seL4_Reply`.
//!
//! "The second part of the glue code is the user-level libraries which
//! abstract IPC communication into RPCs" (§III-D). Process adapters in
//! `bas-core` use these helpers instead of hand-rolling capability
//! invocations.

use bas_sel4::cap::CPtr;
use bas_sel4::message::{DeliveredMessage, IpcMessage};
use bas_sel4::syscall::Syscall;

/// Client-side stub for one used interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcClient {
    ep: CPtr,
}

impl RpcClient {
    /// Creates a stub invoking the endpoint capability at `ep`.
    pub fn new(ep: CPtr) -> Self {
        RpcClient { ep }
    }

    /// Builds the `seL4_Call` for method `label` with integer arguments.
    /// The kernel reply (a [`DeliveredMessage`]) is the RPC result.
    pub fn call(&self, label: u64, args: impl Into<Vec<u64>>) -> Syscall {
        Syscall::Call {
            ep: self.ep,
            msg: IpcMessage::with_data(label, args),
        }
    }

    /// The underlying endpoint slot.
    pub fn endpoint(&self) -> CPtr {
        self.ep
    }
}

/// Server-side stub for one provided interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcServer {
    ep: CPtr,
}

/// A decoded RPC request as seen by a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcRequest {
    /// The caller's badge (identifies the client connection,
    /// unforgeably).
    pub badge: u64,
    /// The method label.
    pub label: u64,
    /// Integer arguments.
    pub args: Vec<u64>,
}

impl RpcServer {
    /// Creates a stub serving the endpoint capability at `ep`.
    pub fn new(ep: CPtr) -> Self {
        RpcServer { ep }
    }

    /// Builds the blocking receive for the next request.
    pub fn next_request(&self) -> Syscall {
        Syscall::Recv { ep: self.ep }
    }

    /// Decodes a delivered message into an [`RpcRequest`].
    pub fn decode(&self, msg: &DeliveredMessage) -> RpcRequest {
        RpcRequest {
            badge: msg.badge,
            label: msg.label,
            args: msg.words.clone(),
        }
    }

    /// Builds the `seL4_Reply` answering the current request.
    pub fn reply(&self, label: u64, results: impl Into<Vec<u64>>) -> Syscall {
        Syscall::Reply {
            msg: IpcMessage::with_data(label, results),
        }
    }

    /// The underlying endpoint slot.
    pub fn endpoint(&self) -> CPtr {
        self.ep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_call_builds_call_syscall() {
        let c = RpcClient::new(CPtr::new(3));
        match c.call(2, vec![10, 20]) {
            Syscall::Call { ep, msg } => {
                assert_eq!(ep, CPtr::new(3));
                assert_eq!(msg.label, 2);
                assert_eq!(msg.words, vec![10, 20]);
                assert!(msg.caps.is_empty());
            }
            other => panic!("wrong syscall {other:?}"),
        }
        assert_eq!(c.endpoint(), CPtr::new(3));
    }

    #[test]
    fn server_decode_roundtrip() {
        let s = RpcServer::new(CPtr::new(0));
        assert!(matches!(s.next_request(), Syscall::Recv { ep } if ep == CPtr::new(0)));
        let req = s.decode(&DeliveredMessage {
            badge: 5,
            label: 1,
            words: vec![9],
            received_caps: vec![],
            reply_expected: true,
        });
        assert_eq!(
            req,
            RpcRequest {
                badge: 5,
                label: 1,
                args: vec![9]
            }
        );
        match s.reply(0, vec![42]) {
            Syscall::Reply { msg } => assert_eq!(msg.words, vec![42]),
            other => panic!("wrong syscall {other:?}"),
        }
    }
}
