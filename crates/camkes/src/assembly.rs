//! Assemblies: component instances wired by connections.

use serde::{Deserialize, Serialize};

use crate::component::Component;

/// Connector types. The paper's system uses `seL4RPCCall` exclusively:
/// "We chose to use this type for our connections to avoid a scenario
/// where the malicious web interface could indefinitely block one of the
/// temperature controller's threads."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Connector {
    /// RPC over `seL4_Call`/`seL4_Reply` with a badged endpoint.
    Sel4RpcCall,
}

/// A named component instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Instance name, unique in the assembly.
    pub name: String,
    /// The component type.
    pub component: Component,
}

/// A connection from a client's used interface to a server's provided
/// interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Connection name.
    pub name: String,
    /// The connector type.
    pub connector: Connector,
    /// Client side: `(instance, used-interface)`.
    pub from: (String, String),
    /// Server side: `(instance, provided-interface)`.
    pub to: (String, String),
}

/// A complete system description.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Assembly {
    /// All component instances.
    pub instances: Vec<Instance>,
    /// All connections.
    pub connections: Vec<Connection>,
}

impl Assembly {
    /// An empty assembly.
    pub fn new() -> Self {
        Assembly::default()
    }

    /// Adds an instance.
    pub fn instance(mut self, name: impl Into<String>, component: Component) -> Self {
        self.instances.push(Instance {
            name: name.into(),
            component,
        });
        self
    }

    /// Adds an `seL4RPCCall` connection.
    pub fn rpc_connection(
        mut self,
        name: impl Into<String>,
        from: (&str, &str),
        to: (&str, &str),
    ) -> Self {
        self.connections.push(Connection {
            name: name.into(),
            connector: Connector::Sel4RpcCall,
            from: (from.0.to_string(), from.1.to_string()),
            to: (to.0.to_string(), to.1.to_string()),
        });
        self
    }

    /// Finds an instance by name.
    pub fn find(&self, name: &str) -> Option<&Instance> {
        self.instances.iter().find(|i| i.name == name)
    }

    /// Structural validation: unique instance names, connection endpoints
    /// exist with the right directions, procedures match across each
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns one message per problem.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let mut names = std::collections::BTreeSet::new();
        for inst in &self.instances {
            if !names.insert(inst.name.as_str()) {
                problems.push(format!("duplicate instance '{}'", inst.name));
            }
        }
        for conn in &self.connections {
            let client = self.find(&conn.from.0);
            let server = self.find(&conn.to.0);
            if client.is_none() {
                problems.push(format!(
                    "connection '{}': unknown client '{}'",
                    conn.name, conn.from.0
                ));
            }
            if server.is_none() {
                problems.push(format!(
                    "connection '{}': unknown server '{}'",
                    conn.name, conn.to.0
                ));
            }
            if let (Some(c), Some(s)) = (client, server) {
                let used = c.component.used(&conn.from.1);
                let provided = s.component.provided(&conn.to.1);
                if used.is_none() {
                    problems.push(format!(
                        "connection '{}': '{}' has no used interface '{}'",
                        conn.name, conn.from.0, conn.from.1
                    ));
                }
                if provided.is_none() {
                    problems.push(format!(
                        "connection '{}': '{}' has no provided interface '{}'",
                        conn.name, conn.to.0, conn.to.1
                    ));
                }
                if let (Some(u), Some(p)) = (used, provided) {
                    if u.procedure != p.procedure {
                        problems.push(format!(
                            "connection '{}': procedure mismatch ({} vs {})",
                            conn.name, u.procedure.name, p.procedure.name
                        ));
                    }
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Procedure;

    fn proc_() -> Procedure {
        Procedure::new("p", ["m1", "m2"])
    }

    fn valid() -> Assembly {
        Assembly::new()
            .instance("s", Component::new("server").provides("api", proc_()))
            .instance("c", Component::new("client").uses("api", proc_()))
            .rpc_connection("conn", ("c", "api"), ("s", "api"))
    }

    #[test]
    fn valid_assembly_validates() {
        assert!(valid().validate().is_ok());
    }

    #[test]
    fn unknown_instance_caught() {
        let a = valid().rpc_connection("bad", ("ghost", "api"), ("s", "api"));
        let problems = a.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("ghost")));
    }

    #[test]
    fn wrong_direction_caught() {
        // Client side names a *provided* interface.
        let a = Assembly::new()
            .instance("s", Component::new("server").provides("api", proc_()))
            .instance("c", Component::new("client").provides("api", proc_()))
            .rpc_connection("conn", ("c", "api"), ("s", "api"));
        let problems = a.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("no used interface")));
    }

    #[test]
    fn procedure_mismatch_caught() {
        let a = Assembly::new()
            .instance(
                "s",
                Component::new("server").provides("api", Procedure::new("p", ["x"])),
            )
            .instance("c", Component::new("client").uses("api", proc_()))
            .rpc_connection("conn", ("c", "api"), ("s", "api"));
        let problems = a.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("mismatch")));
    }

    #[test]
    fn duplicate_instances_caught() {
        let a = valid().instance("s", Component::new("another"));
        assert!(a.validate().is_err());
    }
}
