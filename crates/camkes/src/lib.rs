//! # bas-camkes — component framework (CAmkES analogue)
//!
//! §III-D: "This tool, CAmkES, will generate all the boilerplate code that
//! implements a specified process architecture. This boilerplate code, also
//! called glue code, abstracts away seL4 capabilities from the developers,
//! and it allows them to think about high-level design."
//!
//! The crate mirrors that workflow:
//!
//! - [`component`] — components with *provided* and *used* RPC procedures
//!   plus hardware (device) dependencies,
//! - [`assembly`] — instances wired by connections; the only connector is
//!   [`assembly::Connector::Sel4RpcCall`], the type the paper chooses "to
//!   avoid a scenario where the malicious web interface could indefinitely
//!   block one of the temperature controller's threads",
//! - [`codegen`] — compiles an assembly into a [`bas_capdl::CapDlSpec`]
//!   (one badged endpoint per connected provided interface) plus a
//!   [`codegen::GlueMap`] telling each instance which CSpace slot carries
//!   which interface,
//! - [`glue`] — the runtime glue: RPC marshaling over `seL4_Call` /
//!   `seL4_Reply`.
//!
//! ```
//! use bas_camkes::assembly::Assembly;
//! use bas_camkes::codegen::compile;
//! use bas_camkes::component::{Component, Procedure};
//!
//! let ctrl_iface = Procedure::new("ctrl", ["set_setpoint", "get_status"]);
//! let server = Component::new("controller").provides("ctrl", ctrl_iface.clone());
//! let client = Component::new("web").uses("ctrl", ctrl_iface);
//! let assembly = Assembly::new()
//!     .instance("controller", server)
//!     .instance("web", client)
//!     .rpc_connection("conn1", ("web", "ctrl"), ("controller", "ctrl"));
//! let (spec, glue) = compile(&assembly).unwrap();
//! assert_eq!(spec.objects.len(), 1, "one endpoint for the one connection");
//! assert!(glue.client_slot("web", "ctrl").is_some());
//! ```

pub mod assembly;
pub mod codegen;
pub mod component;
pub mod glue;

pub use assembly::{Assembly, Connection, Connector};
pub use codegen::{compile, CompileError, GlueMap};
pub use component::{Component, HardwareDecl, Procedure};
pub use glue::{RpcClient, RpcServer};
