//! Components: typed bundles of provided/used RPC interfaces and hardware
//! dependencies.

use bas_sel4::rights::CapRights;
use bas_sim::device::DeviceId;
use serde::{Deserialize, Serialize};

/// An RPC procedure: a named set of methods. A method's index is its wire
/// label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Procedure {
    /// Procedure name.
    pub name: String,
    /// Method names; index = RPC label.
    pub methods: Vec<String>,
}

impl Procedure {
    /// Creates a procedure with the given methods.
    pub fn new<I, S>(name: impl Into<String>, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Procedure {
            name: name.into(),
            methods: methods.into_iter().map(Into::into).collect(),
        }
    }

    /// The wire label of a method, if declared.
    pub fn label_of(&self, method: &str) -> Option<u64> {
        self.methods
            .iter()
            .position(|m| m == method)
            .map(|i| i as u64)
    }

    /// The method name behind a wire label.
    pub fn method_of(&self, label: u64) -> Option<&str> {
        self.methods.get(label as usize).map(String::as_str)
    }
}

/// A named interface on a component (an instantiated procedure).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// Interface name unique within the component.
    pub name: String,
    /// The procedure exposed or consumed.
    pub procedure: Procedure,
}

/// A hardware dependency: the component needs a device capability.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareDecl {
    /// Dependency name unique within the component.
    pub name: String,
    /// The device.
    pub dev: DeviceId,
    /// Rights the instance receives on the device frame.
    pub rights: CapRights,
}

/// A component type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Component type name.
    pub name: String,
    /// Interfaces this component implements (it is the RPC server).
    pub provides: Vec<Interface>,
    /// Interfaces this component calls (it is the RPC client).
    pub uses: Vec<Interface>,
    /// Device frames this component needs.
    pub hardware: Vec<HardwareDecl>,
}

impl Component {
    /// Creates an empty component type.
    pub fn new(name: impl Into<String>) -> Self {
        Component {
            name: name.into(),
            provides: Vec::new(),
            uses: Vec::new(),
            hardware: Vec::new(),
        }
    }

    /// Declares a provided interface.
    pub fn provides(mut self, iface: impl Into<String>, procedure: Procedure) -> Self {
        self.provides.push(Interface {
            name: iface.into(),
            procedure,
        });
        self
    }

    /// Declares a used interface.
    pub fn uses(mut self, iface: impl Into<String>, procedure: Procedure) -> Self {
        self.uses.push(Interface {
            name: iface.into(),
            procedure,
        });
        self
    }

    /// Declares a hardware dependency.
    pub fn hardware(mut self, name: impl Into<String>, dev: DeviceId, rights: CapRights) -> Self {
        self.hardware.push(HardwareDecl {
            name: name.into(),
            dev,
            rights,
        });
        self
    }

    /// Finds a provided interface by name.
    pub fn provided(&self, iface: &str) -> Option<&Interface> {
        self.provides.iter().find(|i| i.name == iface)
    }

    /// Finds a used interface by name.
    pub fn used(&self, iface: &str) -> Option<&Interface> {
        self.uses.iter().find(|i| i.name == iface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procedure_labels_are_method_indices() {
        let p = Procedure::new("ctrl", ["a", "b", "c"]);
        assert_eq!(p.label_of("a"), Some(0));
        assert_eq!(p.label_of("c"), Some(2));
        assert_eq!(p.label_of("zz"), None);
        assert_eq!(p.method_of(1), Some("b"));
        assert_eq!(p.method_of(9), None);
    }

    #[test]
    fn component_builder_accumulates() {
        let p = Procedure::new("x", ["m"]);
        let c = Component::new("t")
            .provides("srv", p.clone())
            .uses("cli", p)
            .hardware("fan", DeviceId::FAN, CapRights::WRITE);
        assert!(c.provided("srv").is_some());
        assert!(c.provided("cli").is_none());
        assert!(c.used("cli").is_some());
        assert_eq!(c.hardware.len(), 1);
    }
}
