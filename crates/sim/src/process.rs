//! Processes as resumable state machines.
//!
//! Every user-level program in the simulation — the BAS control processes,
//! system servers, and attack payloads alike — implements [`Process`]. A
//! kernel drives a process by calling [`Process::resume`], handing it the
//! reply to its previous system call; the process runs until its next system
//! call and returns an [`Action`]. Blocking is expressed by the kernel simply
//! not resuming the process again until the blocking condition resolves.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A process identifier, unique for the lifetime of one simulated kernel.
///
/// ```
/// use bas_sim::process::Pid;
/// let p = Pid::new(3);
/// assert_eq!(p.as_u32(), 3);
/// assert_eq!(format!("{p}"), "pid3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(u32);

impl Pid {
    /// Creates a pid from a raw index.
    pub const fn new(raw: u32) -> Self {
        Pid(raw)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw index as a usize, for table addressing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// What a process does when resumed: trap into the kernel, yield its
/// quantum, or terminate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<S> {
    /// Trap into the kernel with a platform-specific system call.
    Syscall(S),
    /// Give up the CPU voluntarily; resumed later with no reply.
    Yield,
    /// Terminate with an exit code.
    Exit(i32),
}

/// A resumable user-level program.
///
/// `Syscall` and `Reply` are defined by each platform (`bas-minix`,
/// `bas-sel4`, `bas-linux`); the same application logic is ported across
/// platforms by wrapping a shared pure core in thin per-platform adapters,
/// exactly as the paper ports the temperature-control scenario.
pub trait Process {
    /// The platform's system-call request type.
    type Syscall;
    /// The platform's system-call reply type.
    type Reply;

    /// Runs the process until its next system call.
    ///
    /// `reply` carries the result of the previous syscall, or `None` on the
    /// first resume and after a `Yield`.
    fn resume(&mut self, reply: Option<Self::Reply>) -> Action<Self::Syscall>;

    /// Human-readable name used in traces.
    fn name(&self) -> &str {
        "anon"
    }
}

/// Scheduling state of a process, generic over the platform's blocking
/// reason type `B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcState<B> {
    /// Eligible to run.
    Runnable,
    /// Waiting on a platform-specific condition (IPC rendezvous, queue
    /// space, a signal, ...).
    Blocked(B),
    /// Waiting for the timer queue to fire.
    Sleeping,
    /// Terminated; slot may be reused with a new generation.
    Dead,
}

impl<B> ProcState<B> {
    /// True if the process may be scheduled.
    pub fn is_runnable(&self) -> bool {
        matches!(self, ProcState::Runnable)
    }

    /// True if the process has terminated.
    pub fn is_dead(&self) -> bool {
        matches!(self, ProcState::Dead)
    }
}

/// A boxed process for a given platform, the form kernels store in their
/// process tables.
pub type BoxedProcess<S, R> = Box<dyn Process<Syscall = S, Reply = R>>;

/// Fault injection: runs the inner process normally, then crashes it
/// (exit code 99) after a fixed number of resumes.
///
/// Used by the recovery experiments to model a driver hitting a fatal
/// bug mid-operation — the failure class MINIX 3's reincarnation design
/// exists for.
///
/// ```
/// use bas_sim::process::{Action, CrashAfter, Process};
///
/// struct Busy;
/// impl Process for Busy {
///     type Syscall = ();
///     type Reply = ();
///     fn resume(&mut self, _: Option<()>) -> Action<()> {
///         Action::Yield
///     }
/// }
///
/// let mut p = CrashAfter::new(Busy, 2);
/// assert!(matches!(p.resume(None), Action::Yield));
/// assert!(matches!(p.resume(None), Action::Yield));
/// assert!(matches!(p.resume(None), Action::Exit(99)));
/// ```
pub struct CrashAfter<P> {
    inner: P,
    remaining: u64,
}

impl<P> CrashAfter<P> {
    /// Exit code reported by an injected crash.
    pub const CRASH_CODE: i32 = 99;

    /// Wraps `inner`, letting it run for `resumes` scheduler resumes
    /// before the injected crash.
    pub fn new(inner: P, resumes: u64) -> Self {
        CrashAfter {
            inner,
            remaining: resumes,
        }
    }
}

impl<P: Process> Process for CrashAfter<P> {
    type Syscall = P::Syscall;
    type Reply = P::Reply;

    fn resume(&mut self, reply: Option<P::Reply>) -> Action<P::Syscall> {
        if self.remaining == 0 {
            return Action::Exit(Self::CRASH_CODE);
        }
        self.remaining -= 1;
        self.inner.resume(reply)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// A factory producing fresh program instances, used by the program
/// registries that model on-disk binaries for `fork`-style calls.
pub type ProgramFactory<S, R> = Box<dyn Fn() -> BoxedProcess<S, R>>;

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        remaining: u32,
    }

    impl Process for Echo {
        type Syscall = u32;
        type Reply = u32;
        fn resume(&mut self, reply: Option<u32>) -> Action<u32> {
            if let Some(r) = reply {
                assert_eq!(r, self.remaining + 1);
            }
            if self.remaining == 0 {
                return Action::Exit(0);
            }
            self.remaining -= 1;
            Action::Syscall(self.remaining)
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn process_trap_loop_reaches_exit() {
        let mut p = Echo { remaining: 3 };
        let mut reply = None;
        let mut syscalls = Vec::new();
        loop {
            match p.resume(reply.take()) {
                Action::Syscall(s) => {
                    syscalls.push(s);
                    reply = Some(s + 1);
                }
                Action::Yield => unreachable!(),
                Action::Exit(code) => {
                    assert_eq!(code, 0);
                    break;
                }
            }
        }
        assert_eq!(syscalls, vec![2, 1, 0]);
    }

    #[test]
    fn proc_state_predicates() {
        let runnable: ProcState<&'static str> = ProcState::Runnable;
        assert!(runnable.is_runnable());
        assert!(!runnable.is_dead());
        let blocked: ProcState<&'static str> = ProcState::Blocked("sending");
        assert!(!blocked.is_runnable());
        let dead: ProcState<&'static str> = ProcState::Dead;
        assert!(dead.is_dead());
    }

    #[test]
    fn pid_display_and_accessors() {
        let p = Pid::new(7);
        assert_eq!(p.as_usize(), 7);
        assert_eq!(format!("{p}"), "pid7");
    }
}
