//! Timer queue for sleep and periodic wakeups.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::process::Pid;
use crate::time::SimTime;

/// A min-heap of `(deadline, pid)` wakeups.
///
/// Ties on deadline are broken by insertion sequence so wakeup order is
/// deterministic.
///
/// ```
/// use bas_sim::process::Pid;
/// use bas_sim::time::SimTime;
/// use bas_sim::timer::TimerQueue;
///
/// let mut tq = TimerQueue::new();
/// tq.arm(SimTime::from_nanos(20), Pid::new(2));
/// tq.arm(SimTime::from_nanos(10), Pid::new(1));
/// assert_eq!(tq.next_deadline(), Some(SimTime::from_nanos(10)));
/// assert_eq!(tq.pop_due(SimTime::from_nanos(15)), vec![Pid::new(1)]);
/// assert_eq!(tq.pop_due(SimTime::from_nanos(15)), vec![]);
/// ```
#[derive(Debug, Default)]
pub struct TimerQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, Pid)>>,
    seq: u64,
}

impl TimerQueue {
    /// Creates an empty timer queue.
    pub fn new() -> Self {
        TimerQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Arms a wakeup for `pid` at `deadline`.
    pub fn arm(&mut self, deadline: SimTime, pid: Pid) {
        self.heap.push(Reverse((deadline, self.seq, pid)));
        self.seq += 1;
    }

    /// The earliest armed deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops every wakeup with `deadline <= now`, in deadline order.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<Pid> {
        let mut due = Vec::new();
        while let Some(Reverse((t, _, _))) = self.heap.peek() {
            if *t > now {
                break;
            }
            let Reverse((_, _, pid)) = self.heap.pop().expect("peeked entry exists");
            due.push(pid);
        }
        due
    }

    /// Cancels every wakeup armed for `pid` (used when a process dies while
    /// sleeping).
    pub fn cancel(&mut self, pid: Pid) {
        let entries: Vec<_> = self
            .heap
            .drain()
            .filter(|Reverse((_, _, p))| *p != pid)
            .collect();
        self.heap = entries.into();
    }

    /// Disarms everything and rewinds the tie-breaking sequence to zero,
    /// keeping the heap allocation (snapshot-fork boot: insertion order
    /// after a reset must tie-break exactly like a fresh queue's).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Number of armed wakeups.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order() {
        let mut tq = TimerQueue::new();
        tq.arm(SimTime::from_nanos(30), Pid::new(3));
        tq.arm(SimTime::from_nanos(10), Pid::new(1));
        tq.arm(SimTime::from_nanos(20), Pid::new(2));
        let due = tq.pop_due(SimTime::from_nanos(100));
        assert_eq!(due, vec![Pid::new(1), Pid::new(2), Pid::new(3)]);
    }

    #[test]
    fn equal_deadlines_pop_in_arm_order() {
        let mut tq = TimerQueue::new();
        let t = SimTime::from_nanos(5);
        tq.arm(t, Pid::new(9));
        tq.arm(t, Pid::new(4));
        tq.arm(t, Pid::new(7));
        assert_eq!(tq.pop_due(t), vec![Pid::new(9), Pid::new(4), Pid::new(7)]);
    }

    #[test]
    fn cancel_removes_only_target() {
        let mut tq = TimerQueue::new();
        tq.arm(SimTime::from_nanos(10), Pid::new(1));
        tq.arm(SimTime::from_nanos(20), Pid::new(2));
        tq.arm(SimTime::from_nanos(30), Pid::new(1));
        tq.cancel(Pid::new(1));
        assert_eq!(tq.len(), 1);
        assert_eq!(tq.pop_due(SimTime::from_nanos(100)), vec![Pid::new(2)]);
    }

    #[test]
    fn clear_rewinds_tie_breaking_sequence() {
        let mut tq = TimerQueue::new();
        tq.arm(SimTime::from_nanos(5), Pid::new(1));
        tq.arm(SimTime::from_nanos(5), Pid::new(2));
        tq.clear();
        assert!(tq.is_empty());
        // Post-clear arms tie-break exactly like a fresh queue's.
        let t = SimTime::from_nanos(5);
        tq.arm(t, Pid::new(9));
        tq.arm(t, Pid::new(4));
        assert_eq!(tq.pop_due(t), vec![Pid::new(9), Pid::new(4)]);
    }

    #[test]
    fn not_due_entries_stay() {
        let mut tq = TimerQueue::new();
        tq.arm(SimTime::from_nanos(50), Pid::new(1));
        assert!(tq.pop_due(SimTime::from_nanos(49)).is_empty());
        assert_eq!(tq.len(), 1);
        assert_eq!(tq.next_deadline(), Some(SimTime::from_nanos(50)));
    }
}
