//! Capability-operation event streams and runtime churn requests.
//!
//! The paper's security argument is *static*: each platform's policy
//! artifact (ACM, CapDL spec, mq ACLs) is fixed at boot. The race-detector
//! work makes the dynamic half observable: every kernel can emit a
//! structured stream of capability operations — grants, attenuations,
//! revocations, admission checks and stale-handle uses — and accept
//! *churn* requests that mutate rights mid-run. `bas-analysis::races`
//! consumes the stream, assigns vector clocks from the recorded IPC
//! edges, and hunts TOCTOU windows between an admission check and the
//! delivery that used it.
//!
//! Like [`crate::trace::TraceLog`], the log is **disabled by default** and
//! fully lazy: when disabled (the perf-benchmark configuration) recording
//! is a single branch and no strings are built.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// One kind of capability operation in the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CapOp {
    /// A new right was installed (boot grant, delegation, regrant).
    Grant,
    /// An existing right was narrowed in place.
    Attenuate,
    /// A right was removed.
    Revoke,
    /// An admission check consulted the right (send gate, open gate).
    Check,
    /// The right was exercised at delivery/dequeue time. `ok = false`
    /// means the kernel honored a handle the current policy no longer
    /// authorizes — the observable half of a TOCTOU window.
    Use,
    /// The receiving side observed the delivery — the target end of an
    /// IPC happens-before edge.
    Recv,
}

impl CapOp {
    /// True for operations that *write* the capability state.
    pub fn is_write(self) -> bool {
        matches!(self, CapOp::Grant | CapOp::Attenuate | CapOp::Revoke)
    }

    /// Stable lowercase label (report vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            CapOp::Grant => "grant",
            CapOp::Attenuate => "attenuate",
            CapOp::Revoke => "revoke",
            CapOp::Check => "check",
            CapOp::Use => "use",
            CapOp::Recv => "recv",
        }
    }
}

/// One event in a kernel's capability-operation stream.
///
/// `subject` is the thread of control the event belongs to for
/// happens-before purposes: the sender for `Check`/`Use`, the receiver
/// for `Recv`, and the churn *actor* (e.g. `"pm"`, `"root"`) for writes.
/// `cap` names the capability instance (platform-specific encoding, e.g.
/// `acm:ac104->ac101` or `mq:/mq_tempProc_setpoint_in:web_interface`) and
/// is the identity the detector correlates across events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapEvent {
    /// Global emission sequence number (unique within one run).
    pub seq: u64,
    /// Virtual time of the operation (the logical tick).
    pub at: SimTime,
    /// Acting subject (process/thread/churn-actor name).
    pub subject: String,
    /// Operation kind.
    pub op: CapOp,
    /// Capability identity string.
    pub cap: String,
    /// Object the capability governs (process, endpoint or queue name).
    pub object: String,
    /// Whether the operation succeeded under the *current* policy.
    pub ok: bool,
}

/// A completed capability trace: the event stream plus the IPC edges
/// (`sender-side seq → receiver-side seq`) that induce cross-subject
/// happens-before ordering.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapTrace {
    /// All events, in emission (seq) order.
    pub events: Vec<CapEvent>,
    /// Happens-before edges between event seqs (from → to).
    pub edges: Vec<(u64, u64)>,
}

impl CapTrace {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Default event capacity — large enough for multi-hour scenario runs,
/// bounded so a runaway churn loop cannot exhaust memory.
pub const DEFAULT_CAP_EVENTS: usize = 1_000_000;

/// The kernel-side capability-event recorder.
///
/// Mirrors [`crate::trace::TraceLog`]'s gating contract: disabled by
/// default, `record_with` takes a closure so the (String-building) event
/// is only materialized when the log is enabled and below capacity.
#[derive(Debug)]
pub struct CapLog {
    events: Vec<CapEvent>,
    edges: Vec<(u64, u64)>,
    next_seq: u64,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Default for CapLog {
    fn default() -> Self {
        CapLog::new()
    }
}

impl CapLog {
    /// Creates a disabled log with the default capacity.
    pub fn new() -> Self {
        CapLog {
            events: Vec::new(),
            edges: Vec::new(),
            next_seq: 0,
            capacity: DEFAULT_CAP_EVENTS,
            dropped: 0,
            enabled: false,
        }
    }

    /// Turns recording on (idempotent).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// True if recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event; `build` returns `(subject, cap, object)` and
    /// runs only when the log is enabled and below capacity. Returns the
    /// event's seq when recorded, so callers can thread IPC edges.
    pub fn record_with(
        &mut self,
        at: SimTime,
        op: CapOp,
        ok: bool,
        build: impl FnOnce() -> (String, String, String),
    ) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return None;
        }
        let (subject, cap, object) = build();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(CapEvent {
            seq,
            at,
            subject,
            op,
            cap,
            object,
            ok,
        });
        Some(seq)
    }

    /// Records a happens-before edge between two recorded events. Either
    /// side may be `None` (its event was dropped or the log disabled);
    /// the edge is then skipped.
    pub fn edge(&mut self, from: Option<u64>, to: Option<u64>) {
        if let (Some(f), Some(t)) = (from, to) {
            self.edges.push((f, t));
        }
    }

    /// Events dropped after hitting capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Snapshots the recorded trace.
    pub fn trace(&self) -> CapTrace {
        CapTrace {
            events: self.events.clone(),
            edges: self.edges.clone(),
        }
    }
}

/// What a churn request does to the named right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// Install (or re-install) the right.
    Grant,
    /// Narrow the right in place (platform-specific: ACM type mask,
    /// capability rights bits, ACL write bits).
    Attenuate,
    /// Remove the right, sweeping derived copies where the platform
    /// tracks derivation (seL4 CDT).
    Revoke,
}

impl ChurnKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            ChurnKind::Grant => "grant",
            ChurnKind::Attenuate => "attenuate",
            ChurnKind::Revoke => "revoke",
        }
    }
}

/// A platform-agnostic mid-run capability mutation: `subject`'s right to
/// reach `object` (both canonical scenario process names) is granted,
/// attenuated or revoked by `actor`. Each platform interprets the pair
/// through its own policy artifact: the MINIX ACM row `subject→object`,
/// the seL4 endpoint capabilities `subject` holds on `object`'s
/// interfaces, or the mode bits of the mq connecting `subject` to
/// `object` on Linux.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapChurnOp {
    /// The mutation.
    pub kind: ChurnKind,
    /// Who performs it (the churn actor is its own happens-before
    /// subject; distinct actors make write-write conflicts expressible).
    pub actor: String,
    /// The holder whose right changes.
    pub subject: String,
    /// The object the right reaches.
    pub object: String,
}

impl CapChurnOp {
    /// Convenience constructor with the default scheduler actor.
    pub fn new(kind: ChurnKind, subject: &str, object: &str) -> Self {
        CapChurnOp {
            kind,
            actor: "churn-sched".into(),
            subject: subject.into(),
            object: object.into(),
        }
    }

    /// Replaces the acting subject.
    pub fn by(mut self, actor: &str) -> Self {
        self.actor = actor.into();
        self
    }

    /// Stable display label (fault-plan names, reports).
    pub fn label(&self) -> String {
        format!(
            "cap.{}({}->{})",
            self.kind.label(),
            self.subject,
            self.object
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(log: &mut CapLog, op: CapOp, ok: bool) -> Option<u64> {
        log.record_with(SimTime::ZERO, op, ok, || {
            ("s".into(), "c".into(), "o".into())
        })
    }

    #[test]
    fn disabled_log_records_nothing_and_builds_nothing() {
        let mut log = CapLog::new();
        let seq = log.record_with(SimTime::ZERO, CapOp::Check, true, || {
            panic!("closure must not run while disabled")
        });
        assert_eq!(seq, None);
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_assigns_monotonic_seqs() {
        let mut log = CapLog::new();
        log.enable();
        assert_eq!(ev(&mut log, CapOp::Check, true), Some(0));
        assert_eq!(ev(&mut log, CapOp::Use, false), Some(1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.trace().events[1].op, CapOp::Use);
    }

    #[test]
    fn capacity_drops_and_counts() {
        let mut log = CapLog::new();
        log.enable();
        log.capacity = 1;
        assert!(ev(&mut log, CapOp::Check, true).is_some());
        assert!(ev(&mut log, CapOp::Use, true).is_none());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn edges_skip_dropped_sides() {
        let mut log = CapLog::new();
        log.enable();
        let a = ev(&mut log, CapOp::Use, true);
        log.edge(a, None);
        log.edge(None, a);
        log.edge(a, a);
        assert_eq!(log.trace().edges, vec![(0, 0)]);
    }

    #[test]
    fn churn_op_labels_are_stable() {
        let op = CapChurnOp::new(ChurnKind::Revoke, "web_interface", "temp_control");
        assert_eq!(op.label(), "cap.revoke(web_interface->temp_control)");
        assert_eq!(op.actor, "churn-sched");
        assert_eq!(op.by("pm").actor, "pm");
    }

    #[test]
    fn write_ops_classified() {
        assert!(CapOp::Grant.is_write());
        assert!(CapOp::Revoke.is_write());
        assert!(!CapOp::Check.is_write());
        assert!(!CapOp::Recv.is_write());
    }
}
