//! Fixed-slot message arena backing the kernels' zero-copy IPC hot paths.
//!
//! The paper's platforms move 64-byte MINIX messages and short seL4
//! message-register payloads; our simulators used to clone an owned
//! `Payload`/`Vec` every time a message crossed a queue, a blocked-sender
//! PCB, or a fault-injection stash. This module gives each kernel a
//! [`MsgArena`] of fixed [`SLOT_BYTES`]-byte slots: the payload is copied
//! *once* into a slot at the user→kernel boundary, an 8-byte [`MsgRef`]
//! handle moves through every queue and blocked state, and the bytes are
//! copied *out* once at kernel→user delivery. That matches real microkernel
//! discipline (one copy in, one copy out, nothing in between) and keeps the
//! steady-state transfer loop allocation-free.
//!
//! ## Ownership and recycling discipline
//!
//! - [`MsgArena::alloc`] returns a `MsgRef` owning one reference to the
//!   slot. [`MsgArena::dup`] adds a reference (used by the IPC `Duplicate`
//!   fault so duplication never copies bytes); [`MsgArena::free`] drops one.
//! - When the last reference is dropped the slot's *generation* is bumped
//!   and the slot returns to the free list. A stale `MsgRef` (freed, or
//!   freed-and-recycled) is detected by the generation tag: [`MsgArena::get`]
//!   panics on it and [`MsgArena::try_get`] returns `None`. Use-after-recycle
//!   therefore cannot silently read another message's bytes.
//! - Payloads larger than [`SLOT_BYTES`] take a spill path (heap `Vec`);
//!   spills and slot-table growth are counted in
//!   [`MsgArena::heap_events`], which kernels surface as the
//!   `hot_path_allocs` metric. A warm arena (every alloc served from the
//!   free list, no spills) reports zero new heap events.
//!
//! ```
//! use bas_sim::arena::MsgArena;
//!
//! let mut arena = MsgArena::new();
//! let r = arena.alloc(b"set heater 21C");
//! assert_eq!(arena.get(r), b"set heater 21C");
//! let d = arena.dup(r); // refcount 2, zero bytes copied
//! arena.free(r);
//! assert_eq!(arena.get(d), b"set heater 21C"); // still live via the dup
//! arena.free(d);
//! assert_eq!(arena.try_get(d), None); // generation tag catches the stale ref
//! ```

use serde::{Deserialize, Serialize};

/// Slot payload capacity, matching the MINIX wire message (64 bytes) and
/// eight seL4 message registers (8 × u64).
pub const SLOT_BYTES: usize = 64;

/// Generation-tagged handle to one message slot. 8 bytes, `Copy`: this is
/// what queues, blocked-sender PCB states and fault stashes move around
/// instead of owned payload buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsgRef {
    index: u32,
    gen: u32,
}

impl MsgRef {
    /// Slot index (diagnostics only; the tagged accessors are the safe API).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Generation the handle was minted under.
    pub fn generation(&self) -> u32 {
        self.gen
    }
}

/// Arena of fixed-size message slots with refcounted recycling.
///
/// Storage is struct-of-arrays: one contiguous `bytes` buffer in
/// [`SLOT_BYTES`] strides plus parallel `lens`/`gens`/`refs` columns, so the
/// transfer loop touches contiguous memory and slot metadata stays cache
/// resident.
#[derive(Debug, Clone, Default)]
pub struct MsgArena {
    bytes: Vec<u8>,
    lens: Vec<u32>,
    gens: Vec<u32>,
    refs: Vec<u32>,
    spill: Vec<Option<Vec<u8>>>,
    free: Vec<u32>,
    heap_events: u64,
    live: usize,
    /// True once any slot has ever been handed out. Every observable
    /// mutation starts with [`Self::alloc`] (free/dup need a previously
    /// allocated [`MsgRef`]), so `!dirty` proves the arena is still
    /// byte-identical to what [`Self::with_capacity`] built — letting
    /// [`Self::reset_to_capacity`] skip the rebuild on pristine arenas.
    dirty: bool,
}

impl MsgArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        MsgArena::default()
    }

    /// Creates an arena pre-warmed with `slots` free slots. Pre-warming is
    /// not counted as heap events: it happens at boot, off the hot path.
    pub fn with_capacity(slots: usize) -> Self {
        let mut a = MsgArena {
            bytes: vec![0; slots * SLOT_BYTES],
            lens: vec![0; slots],
            gens: vec![0; slots],
            refs: vec![0; slots],
            spill: vec![None; slots],
            free: Vec::with_capacity(slots.max(1)),
            heap_events: 0,
            live: 0,
            dirty: false,
        };
        // LIFO free list: slot 0 is handed out first.
        for i in (0..slots as u32).rev() {
            a.free.push(i);
        }
        a
    }

    /// Returns the arena to the state [`Self::with_capacity`]`(slots)`
    /// produces, reusing the existing allocations (the snapshot-fork boot
    /// path: a recycled kernel must be byte-identical to a cold-booted
    /// one without re-allocating its arena).
    ///
    /// The `bytes` region is deliberately *not* zeroed: `lens` is the
    /// authoritative payload extent, and every slot's bytes are written by
    /// [`Self::alloc`] before any read, so stale bytes from a previous
    /// incarnation are unobservable. Everything observable — generations,
    /// refcounts, spills, the LIFO free-list order, `heap_events`, `live`
    /// — is restored exactly.
    pub fn reset_to_capacity(&mut self, slots: usize) {
        if !self.dirty && self.gens.len() == slots {
            // Never allocated from since construction/last reset: already
            // in the exact `with_capacity(slots)` state.
            return;
        }
        self.bytes.resize(slots * SLOT_BYTES, 0);
        self.lens.clear();
        self.lens.resize(slots, 0);
        self.gens.clear();
        self.gens.resize(slots, 0);
        self.refs.clear();
        self.refs.resize(slots, 0);
        self.spill.clear();
        self.spill.resize(slots, None);
        self.free.clear();
        for i in (0..slots as u32).rev() {
            self.free.push(i);
        }
        self.heap_events = 0;
        self.live = 0;
        self.dirty = false;
    }

    fn grab_slot(&mut self) -> usize {
        if let Some(i) = self.free.pop() {
            return i as usize;
        }
        // Cold path: the working set grew past every slot ever created.
        self.heap_events += 1;
        let i = self.gens.len();
        self.bytes.resize(self.bytes.len() + SLOT_BYTES, 0);
        self.lens.push(0);
        self.gens.push(0);
        self.refs.push(0);
        self.spill.push(None);
        i
    }

    /// Copies `data` into a fresh slot (the one user→kernel copy) and
    /// returns its handle with refcount 1. Payloads larger than
    /// [`SLOT_BYTES`] spill to the heap and are counted in
    /// [`Self::heap_events`].
    pub fn alloc(&mut self, data: &[u8]) -> MsgRef {
        self.dirty = true;
        let i = self.grab_slot();
        self.refs[i] = 1;
        self.live += 1;
        if data.len() <= SLOT_BYTES {
            let start = i * SLOT_BYTES;
            self.bytes[start..start + data.len()].copy_from_slice(data);
        } else {
            self.heap_events += 1;
            self.spill[i] = Some(data.to_vec());
        }
        self.lens[i] = data.len() as u32;
        MsgRef {
            index: i as u32,
            gen: self.gens[i],
        }
    }

    /// Packs `words` little-endian into a slot (eight seL4 message
    /// registers fit exactly; longer messages spill).
    pub fn alloc_words(&mut self, words: &[u64]) -> MsgRef {
        if words.len() * 8 <= SLOT_BYTES {
            let mut buf = [0u8; SLOT_BYTES];
            for (chunk, w) in buf.chunks_exact_mut(8).zip(words) {
                chunk.copy_from_slice(&w.to_le_bytes());
            }
            self.alloc(&buf[..words.len() * 8])
        } else {
            let mut v = Vec::with_capacity(words.len() * 8);
            for w in words {
                v.extend_from_slice(&w.to_le_bytes());
            }
            self.alloc(&v)
        }
    }

    fn slot_of(&self, r: MsgRef) -> Option<usize> {
        let i = r.index as usize;
        (i < self.gens.len() && self.gens[i] == r.gen && self.refs[i] > 0).then_some(i)
    }

    /// The slot's bytes.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (freed, or freed and recycled): the
    /// generation tag has moved on. Kernel code holding a live reference is
    /// entitled to this never firing; the panic is the use-after-recycle
    /// detector.
    pub fn get(&self, r: MsgRef) -> &[u8] {
        self.try_get(r)
            .unwrap_or_else(|| panic!("stale MsgRef {r:?}: slot was recycled"))
    }

    /// The slot's bytes, or `None` if `r` is stale.
    pub fn try_get(&self, r: MsgRef) -> Option<&[u8]> {
        let i = self.slot_of(r)?;
        Some(match &self.spill[i] {
            Some(v) => v.as_slice(),
            None => {
                let start = i * SLOT_BYTES;
                &self.bytes[start..start + self.lens[i] as usize]
            }
        })
    }

    /// Unpacks the slot as little-endian u64 words (inverse of
    /// [`Self::alloc_words`]). The one kernel→user copy on the seL4 path.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale or the payload length is not a multiple of 8.
    pub fn get_words(&self, r: MsgRef) -> Vec<u64> {
        let bytes = self.get(r);
        assert!(
            bytes.len().is_multiple_of(8),
            "slot holds {} bytes, not a whole number of words",
            bytes.len()
        );
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect()
    }

    /// Payload length in bytes.
    pub fn len_of(&self, r: MsgRef) -> usize {
        let i = self
            .slot_of(r)
            .unwrap_or_else(|| panic!("stale MsgRef {r:?}: slot was recycled"));
        self.lens[i] as usize
    }

    /// Adds a reference to the slot without copying any bytes (the IPC
    /// `Duplicate` fault path). Returns the same handle.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale.
    pub fn dup(&mut self, r: MsgRef) -> MsgRef {
        let i = self
            .slot_of(r)
            .unwrap_or_else(|| panic!("stale MsgRef {r:?}: cannot dup a recycled slot"));
        self.refs[i] += 1;
        r
    }

    /// Drops one reference. On the last drop the generation is bumped —
    /// invalidating every outstanding handle — and the slot is recycled.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (double free).
    pub fn free(&mut self, r: MsgRef) {
        let i = self
            .slot_of(r)
            .unwrap_or_else(|| panic!("stale MsgRef {r:?}: double free"));
        self.refs[i] -= 1;
        if self.refs[i] == 0 {
            self.gens[i] = self.gens[i].wrapping_add(1);
            self.lens[i] = 0;
            self.spill[i] = None;
            self.free.push(i as u32);
            self.live -= 1;
        }
    }

    /// True if `r` still points at the message it was minted for.
    pub fn is_live(&self, r: MsgRef) -> bool {
        self.slot_of(r).is_some()
    }

    /// Number of live messages (dups of one slot count once).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created (live + free).
    pub fn slots(&self) -> usize {
        self.gens.len()
    }

    /// Cumulative heap work: slot-table growth plus oversized-payload
    /// spills. A warm arena holds this constant across ticks; kernels
    /// surface it as `KernelMetrics::hot_path_allocs`.
    pub fn heap_events(&self) -> u64 {
        self.heap_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_recycle_bumps_generation() {
        let mut a = MsgArena::new();
        let r1 = a.alloc(b"hello");
        assert_eq!(a.get(r1), b"hello");
        assert_eq!(a.len_of(r1), 5);
        a.free(r1);
        assert!(!a.is_live(r1));
        // Recycled into the same physical slot, different generation.
        let r2 = a.alloc(b"world");
        assert_eq!(r2.index(), r1.index());
        assert_ne!(r2.generation(), r1.generation());
        assert_eq!(a.try_get(r1), None);
        assert_eq!(a.get(r2), b"world");
    }

    #[test]
    fn reset_restores_with_capacity_state_observably() {
        // Exercise a pre-warmed arena hard: spills, growth past capacity,
        // frees out of order — then reset and check every observable
        // against a genuinely fresh arena by replaying one allocation
        // sequence on both.
        let mut used = MsgArena::with_capacity(4);
        let refs: Vec<MsgRef> = (0..6).map(|i| used.alloc(&[i as u8; 8])).collect();
        used.alloc(&[7u8; 200]); // spill
        used.free(refs[1]);
        used.free(refs[4]);
        assert!(used.heap_events() > 0);

        used.reset_to_capacity(4);
        let mut fresh = MsgArena::with_capacity(4);
        assert_eq!(used.slots(), fresh.slots());
        assert_eq!(used.live(), 0);
        assert_eq!(used.heap_events(), 0);
        for payload in [&b"a"[..], b"bb", b"ccc", b"dddd", b"extra"] {
            let ru = used.alloc(payload);
            let rf = fresh.alloc(payload);
            // Identical handles: same slot order, same (zeroed) generations.
            assert_eq!(ru, rf);
            assert_eq!(used.get(ru), fresh.get(rf));
        }
        assert_eq!(used.live(), fresh.live());
        assert_eq!(used.heap_events(), fresh.heap_events());
    }

    #[test]
    #[should_panic(expected = "stale MsgRef")]
    fn stale_get_panics() {
        let mut a = MsgArena::new();
        let r = a.alloc(b"x");
        a.free(r);
        let _ = a.get(r);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = MsgArena::new();
        let r = a.alloc(b"x");
        a.free(r);
        a.free(r);
    }

    #[test]
    fn dup_keeps_slot_alive_without_copying() {
        let mut a = MsgArena::new();
        let r = a.alloc(b"payload");
        let d = a.dup(r);
        a.free(r);
        assert_eq!(a.get(d), b"payload");
        assert_eq!(a.live(), 1);
        a.free(d);
        assert_eq!(a.live(), 0);
        assert_eq!(a.try_get(d), None);
    }

    #[test]
    fn words_roundtrip() {
        let mut a = MsgArena::new();
        let words = vec![1u64, 0xdead_beef, u64::MAX, 0];
        let r = a.alloc_words(&words);
        assert_eq!(a.get_words(r), words);
        a.free(r);
        // Spill: more than eight registers.
        let long: Vec<u64> = (0..32).collect();
        let r = a.alloc_words(&long);
        assert_eq!(a.get_words(r), long);
        a.free(r);
    }

    #[test]
    fn spill_path_handles_oversized_payloads() {
        let mut a = MsgArena::new();
        let big = vec![7u8; 200];
        let r = a.alloc(&big);
        assert_eq!(a.get(r), big.as_slice());
        let before = a.heap_events();
        a.free(r);
        // Reusing the slot for a small payload costs no further heap work.
        let r2 = a.alloc(b"small");
        assert_eq!(a.heap_events(), before);
        assert_eq!(a.get(r2), b"small");
    }

    #[test]
    fn warm_arena_reports_zero_new_heap_events() {
        let mut a = MsgArena::with_capacity(4);
        assert_eq!(a.heap_events(), 0);
        let mut last = None;
        for i in 0..1000u32 {
            if let Some(r) = last.take() {
                a.free(r);
            }
            last = Some(a.alloc(&i.to_le_bytes()));
        }
        assert_eq!(a.heap_events(), 0, "steady-state ping-pong must be free");
    }

    #[test]
    fn growth_is_counted() {
        let mut a = MsgArena::new();
        let refs: Vec<MsgRef> = (0..10u8).map(|i| a.alloc(&[i])).collect();
        assert_eq!(a.heap_events(), 10);
        assert_eq!(a.slots(), 10);
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(a.get(*r), &[i as u8]);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        #[derive(Debug, Clone)]
        enum Op {
            Alloc(Vec<u8>),
            Dup(usize),
            Free(usize),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                proptest::collection::vec(any::<u8>(), 0..128).prop_map(Op::Alloc),
                proptest::collection::vec(any::<u8>(), 0..128).prop_map(Op::Alloc),
                any::<usize>().prop_map(Op::Dup),
                any::<usize>().prop_map(Op::Free),
            ]
        }

        proptest! {
            /// No aliasing between live slots: every live handle always
            /// reads back exactly the bytes it was allocated with, no
            /// matter how the arena churns around it.
            #[test]
            fn live_refs_never_alias(ops in proptest::collection::vec(op_strategy(), 1..200)) {
                let mut arena = MsgArena::new();
                // Live handles with their expected contents and refcounts.
                let mut live: Vec<(MsgRef, Vec<u8>, u32)> = Vec::new();
                let mut dead: Vec<MsgRef> = Vec::new();
                for op in ops {
                    match op {
                        Op::Alloc(data) => {
                            let r = arena.alloc(&data);
                            live.push((r, data, 1));
                        }
                        Op::Dup(i) if !live.is_empty() => {
                            let i = i % live.len();
                            arena.dup(live[i].0);
                            live[i].2 += 1;
                        }
                        Op::Free(i) if !live.is_empty() => {
                            let i = i % live.len();
                            arena.free(live[i].0);
                            live[i].2 -= 1;
                            if live[i].2 == 0 {
                                let (r, _, _) = live.swap_remove(i);
                                dead.push(r);
                            }
                        }
                        _ => {}
                    }
                    for (r, expect, _) in &live {
                        prop_assert_eq!(arena.get(*r), expect.as_slice());
                    }
                    for r in &dead {
                        prop_assert_eq!(arena.try_get(*r), None);
                    }
                }
                // Distinct live handles occupy distinct slots.
                let mut seen = HashMap::new();
                for (r, _, _) in &live {
                    prop_assert!(seen.insert(r.index(), r).is_none(),
                        "two live handles share slot {}", r.index());
                }
                prop_assert_eq!(arena.live(), live.len());
            }

            /// A recycled `MsgRef` never reads the slot's new occupant: once
            /// freed, the old handle stays dead through arbitrarily many
            /// reuses of its slot.
            #[test]
            fn recycled_ref_never_reads_new_tenant(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 1..64), 2..40)
            ) {
                let mut arena = MsgArena::new();
                let mut stale: Vec<MsgRef> = Vec::new();
                for p in &payloads {
                    let r = arena.alloc(p);
                    prop_assert_eq!(arena.get(r), p.as_slice());
                    for old in &stale {
                        prop_assert_eq!(arena.try_get(*old), None);
                        prop_assert!(!arena.is_live(*old));
                    }
                    arena.free(r);
                    stale.push(r);
                }
                // Everything was freed; one slot served every allocation.
                prop_assert_eq!(arena.live(), 0);
                prop_assert_eq!(arena.slots(), 1);
            }
        }
    }
}
