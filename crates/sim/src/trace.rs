//! Structured event trace shared by kernels, scenario processes and the
//! attack harness.
//!
//! The attack experiments (E3–E7) judge outcomes by inspecting the trace:
//! e.g. "did the heater driver ever receive a command that did not originate
//! from the temperature controller?" is answered by scanning delivery events
//! rather than trusting the attacker's own report.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::process::Pid;
use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Process the event is attributed to, if any.
    pub pid: Option<Pid>,
    /// Stable category tag used for filtering, e.g. `"ipc.deliver"`,
    /// `"acm.deny"`, `"signal.kill"`, `"plant.alarm"`.
    pub category: &'static str,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pid {
            Some(pid) => write!(
                f,
                "[{}] {} {}: {}",
                self.time, pid, self.category, self.detail
            ),
            None => write!(f, "[{}] - {}: {}", self.time, self.category, self.detail),
        }
    }
}

/// An append-only event log with bounded memory.
///
/// ```
/// use bas_sim::time::SimTime;
/// use bas_sim::trace::TraceLog;
///
/// let mut log = TraceLog::new();
/// log.record(SimTime::ZERO, None, "boot", "kernel up".to_string());
/// assert_eq!(log.events_in("boot").count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceLog {
    /// Default maximum number of retained events.
    pub const DEFAULT_CAPACITY: usize = 1_000_000;

    /// Creates an enabled log with the default capacity.
    pub fn new() -> Self {
        TraceLog {
            events: Vec::new(),
            capacity: Self::DEFAULT_CAPACITY,
            dropped: 0,
            enabled: true,
        }
    }

    /// Creates a log that retains at most `capacity` events; further events
    /// are counted but discarded.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Disables recording entirely (used by throughput benchmarks).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Appends an event.
    pub fn record(
        &mut self,
        time: SimTime,
        pid: Option<Pid>,
        category: &'static str,
        detail: String,
    ) {
        self.record_with(time, pid, category, || detail);
    }

    /// Appends an event, building the detail string lazily: the closure
    /// runs only if the event will actually be retained. Kernel hot paths
    /// use this so a disabled (or full) log costs no `format!` allocation.
    pub fn record_with(
        &mut self,
        time: SimTime,
        pid: Option<Pid>,
        category: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            time,
            pid,
            category,
            detail: detail(),
        });
    }

    /// All retained events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose category equals `category`.
    pub fn events_in<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Events whose category starts with `prefix` (e.g. `"ipc."`).
    pub fn events_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.category.starts_with(prefix))
    }

    /// Number of events discarded due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears retained events (capacity and enablement unchanged).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(log: &mut TraceLog, cat: &'static str, detail: &str) {
        log.record(SimTime::ZERO, Some(Pid::new(1)), cat, detail.to_string());
    }

    #[test]
    fn category_filtering() {
        let mut log = TraceLog::new();
        ev(&mut log, "ipc.deliver", "a->b");
        ev(&mut log, "ipc.deny", "c->b");
        ev(&mut log, "signal.kill", "c->a");
        assert_eq!(log.events_in("ipc.deny").count(), 1);
        assert_eq!(log.events_with_prefix("ipc.").count(), 2);
        assert_eq!(log.events().len(), 3);
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let mut log = TraceLog::with_capacity(2);
        ev(&mut log, "x", "1");
        ev(&mut log, "x", "2");
        ev(&mut log, "x", "3");
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn record_with_is_lazy_when_disabled_or_full() {
        let mut log = TraceLog::with_capacity(1);
        log.disable();
        log.record_with(SimTime::ZERO, None, "x", || {
            panic!("closure must not run while disabled")
        });
        log.enable();
        log.record_with(SimTime::ZERO, None, "x", || "kept".to_string());
        log.record_with(SimTime::ZERO, None, "x", || {
            panic!("closure must not run once the log is full")
        });
        assert_eq!(log.events().len(), 1);
        assert_eq!(log.events()[0].detail, "kept");
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new();
        log.disable();
        ev(&mut log, "x", "1");
        assert!(log.events().is_empty());
        log.enable();
        ev(&mut log, "x", "2");
        assert_eq!(log.events().len(), 1);
    }

    #[test]
    fn display_mentions_category_and_pid() {
        let e = TraceEvent {
            time: SimTime::from_nanos(1_000),
            pid: Some(Pid::new(4)),
            category: "acm.deny",
            detail: "spoof blocked".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("acm.deny"));
        assert!(s.contains("pid4"));
    }
}
