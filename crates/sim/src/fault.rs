//! Fault-injection primitives shared by every simulated kernel.
//!
//! The BAS literature the reproduction leans on (HIL testbeds, the OT
//! attack surveys) evaluates controllers under *repeatable* sensor and
//! communication faults, not single hand-picked crashes. This module is
//! the substrate for that: a device interposer for sensor faults and a
//! one-shot IPC fault queue each kernel consults on its send path. The
//! schedule DSL that drives these lives in `bas-faults`; the kernels only
//! see the two small types here.
//!
//! Injection points are deliberately *inside* the kernel, after access
//! control: a fault can corrupt, delay or destroy an authorized
//! interaction, but it can never manufacture authority (see `DESIGN.md`'s
//! fault-model section).

use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::device::Device;
use crate::time::SimDuration;

/// What a faulty sensor reports instead of the truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SensorFaultMode {
    /// Pass-through: the interposer is transparent.
    #[default]
    Nominal,
    /// Reads return a fixed raw value (a wedged ADC).
    StuckAt(i64),
    /// Reads return the true value plus a constant offset (a drifted or
    /// miscalibrated transducer).
    Glitch {
        /// Raw offset added to every reading.
        offset: i64,
    },
    /// Reads freeze at the last good value (a dead bus that leaves the
    /// holding register stale).
    Dropout,
}

/// Shared handle through which a fault injector flips a live
/// [`FaultyDevice`]'s mode mid-run.
pub type SensorFaultHandle = Rc<Cell<SensorFaultMode>>;

/// Creates a handle starting in [`SensorFaultMode::Nominal`].
pub fn sensor_fault_handle() -> SensorFaultHandle {
    Rc::new(Cell::new(SensorFaultMode::Nominal))
}

/// A device-bus interposer wrapping a real device: transparent in
/// [`SensorFaultMode::Nominal`], otherwise corrupting reads per the
/// mode. Writes always pass through (these are *sensor* faults).
pub struct FaultyDevice {
    inner: Box<dyn Device>,
    mode: SensorFaultHandle,
    last_good: Option<i64>,
}

impl FaultyDevice {
    /// Wraps `inner`, controlled by `mode`.
    pub fn new(inner: Box<dyn Device>, mode: SensorFaultHandle) -> Self {
        FaultyDevice {
            inner,
            mode,
            last_good: None,
        }
    }
}

impl Device for FaultyDevice {
    fn read(&mut self) -> i64 {
        match self.mode.get() {
            SensorFaultMode::Nominal => {
                let v = self.inner.read();
                self.last_good = Some(v);
                v
            }
            SensorFaultMode::StuckAt(v) => v,
            SensorFaultMode::Glitch { offset } => {
                let v = self.inner.read();
                self.last_good = Some(v);
                v.saturating_add(offset)
            }
            SensorFaultMode::Dropout => match self.last_good {
                Some(v) => v,
                // Dropout before any good reading: latch the first one.
                None => {
                    let v = self.inner.read();
                    self.last_good = Some(v);
                    v
                }
            },
        }
    }

    fn write(&mut self, value: i64) {
        self.inner.write(value);
    }
}

/// One scheduled fault on the kernel's IPC send path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcFault {
    /// The message vanishes in transit; the sender observes a plausible
    /// outcome for its call type (success for fire-and-forget sends, an
    /// error for RPCs so callers cannot hang on a reply that will never
    /// come).
    Drop,
    /// Delivery is delayed: the kernel clock pays the given latency
    /// before the message moves (a congested transport).
    Delay(SimDuration),
    /// The message is delivered twice where the transport can queue it;
    /// on pure-rendezvous paths the duplicate is absorbed (and traced).
    Duplicate,
}

/// The per-kernel queue of armed one-shot IPC faults.
///
/// Each eligible send (application IPC — platform-management traffic is
/// exempt) consumes at most one pending fault, in arming order. The
/// kernels call [`IpcFaultState::pop`] *after* their access-control
/// checks, so a fault can only affect traffic that was authorized anyway.
#[derive(Debug, Default)]
pub struct IpcFaultState {
    pending: VecDeque<IpcFault>,
    applied: u64,
}

impl IpcFaultState {
    /// Arms `count` copies of `fault`, consumed by subsequent sends.
    pub fn arm(&mut self, fault: IpcFault, count: u32) {
        for _ in 0..count {
            self.pending.push_back(fault);
        }
    }

    /// Consumes the next pending fault, if any.
    pub fn pop(&mut self) -> Option<IpcFault> {
        let fault = self.pending.pop_front();
        if fault.is_some() {
            self.applied += 1;
        }
        fault
    }

    /// Number of faults consumed so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Number of armed faults not yet consumed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(i64);
    impl Device for Counter {
        fn read(&mut self) -> i64 {
            self.0 += 1;
            self.0
        }
        fn write(&mut self, value: i64) {
            self.0 = value;
        }
    }

    #[test]
    fn nominal_is_transparent() {
        let mode = sensor_fault_handle();
        let mut d = FaultyDevice::new(Box::new(Counter(0)), mode);
        assert_eq!(d.read(), 1);
        assert_eq!(d.read(), 2);
        d.write(10);
        assert_eq!(d.read(), 11);
    }

    #[test]
    fn stuck_glitch_dropout_corrupt_reads() {
        let mode = sensor_fault_handle();
        let mut d = FaultyDevice::new(Box::new(Counter(0)), mode.clone());
        assert_eq!(d.read(), 1); // last good = 1
        mode.set(SensorFaultMode::StuckAt(99));
        assert_eq!(d.read(), 99);
        assert_eq!(d.read(), 99);
        mode.set(SensorFaultMode::Glitch { offset: 100 });
        assert_eq!(d.read(), 102); // true value 2 + 100
        mode.set(SensorFaultMode::Dropout);
        assert_eq!(d.read(), 2); // frozen at the last good reading
        assert_eq!(d.read(), 2);
        mode.set(SensorFaultMode::Nominal);
        assert_eq!(d.read(), 3);
    }

    #[test]
    fn dropout_before_first_reading_latches_once() {
        let mode = sensor_fault_handle();
        mode.set(SensorFaultMode::Dropout);
        let mut d = FaultyDevice::new(Box::new(Counter(0)), mode);
        assert_eq!(d.read(), 1);
        assert_eq!(d.read(), 1);
    }

    #[test]
    fn ipc_faults_consumed_in_arming_order() {
        let mut s = IpcFaultState::default();
        assert_eq!(s.pop(), None);
        s.arm(IpcFault::Drop, 2);
        s.arm(IpcFault::Duplicate, 1);
        assert_eq!(s.pending(), 3);
        assert_eq!(s.pop(), Some(IpcFault::Drop));
        assert_eq!(s.pop(), Some(IpcFault::Drop));
        assert_eq!(s.pop(), Some(IpcFault::Duplicate));
        assert_eq!(s.pop(), None);
        assert_eq!(s.applied(), 3);
        assert_eq!(s.pending(), 0);
    }
}
