//! Round-robin run queue shared by all simulated kernels.

use std::collections::VecDeque;

use crate::process::Pid;

/// A FIFO run queue of runnable processes.
///
/// The queue never holds duplicates: enqueueing a pid already present is a
/// no-op, which lets kernel code unconditionally "make runnable" without
/// tracking queue membership separately.
///
/// ```
/// use bas_sim::process::Pid;
/// use bas_sim::sched::RunQueue;
///
/// let mut q = RunQueue::new();
/// q.enqueue(Pid::new(1));
/// q.enqueue(Pid::new(2));
/// q.enqueue(Pid::new(1)); // duplicate ignored
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.dequeue(), Some(Pid::new(1)));
/// assert_eq!(q.dequeue(), Some(Pid::new(2)));
/// assert_eq!(q.dequeue(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunQueue {
    queue: VecDeque<Pid>,
    // Membership bitmap indexed by pid: makes the hot enqueue/dequeue/
    // contains operations O(1) instead of scanning the deque. `remove`
    // (kill/unblock-from-under-the-scheduler) stays a linear sweep but is
    // off the per-message path.
    queued: Vec<bool>,
}

impl RunQueue {
    /// Creates an empty run queue.
    pub fn new() -> Self {
        RunQueue::default()
    }

    fn bit(&mut self, pid: Pid) -> &mut bool {
        let i = pid.as_u32() as usize;
        if i >= self.queued.len() {
            self.queued.resize(i + 1, false);
        }
        &mut self.queued[i]
    }

    /// Adds `pid` to the back of the queue if not already queued.
    pub fn enqueue(&mut self, pid: Pid) {
        let bit = self.bit(pid);
        if !*bit {
            *bit = true;
            self.queue.push_back(pid);
        }
    }

    /// Pops the next runnable pid, if any.
    pub fn dequeue(&mut self) -> Option<Pid> {
        let pid = self.queue.pop_front()?;
        self.queued[pid.as_u32() as usize] = false;
        Some(pid)
    }

    /// Removes `pid` wherever it sits in the queue (used when a process is
    /// killed or blocks from under the scheduler).
    pub fn remove(&mut self, pid: Pid) {
        if self.contains(pid) {
            self.queue.retain(|p| *p != pid);
            self.queued[pid.as_u32() as usize] = false;
        }
    }

    /// Empties the queue and its membership bitmap, keeping both
    /// allocations (snapshot-fork boot: a recycled queue behaves exactly
    /// like [`Self::new`] without reallocating).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.queued.clear();
    }

    /// True if `pid` is currently queued.
    pub fn contains(&self, pid: Pid) -> bool {
        self.queued
            .get(pid.as_u32() as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Number of queued processes.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no process is runnable.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates over queued pids in scheduling order.
    pub fn iter(&self) -> impl Iterator<Item = Pid> + '_ {
        self.queue.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = RunQueue::new();
        for i in 0..5 {
            q.enqueue(Pid::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.dequeue())
            .map(Pid::as_u32)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn remove_deletes_mid_queue_entry() {
        let mut q = RunQueue::new();
        q.enqueue(Pid::new(1));
        q.enqueue(Pid::new(2));
        q.enqueue(Pid::new(3));
        q.remove(Pid::new(2));
        assert!(!q.contains(Pid::new(2)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue(), Some(Pid::new(1)));
        assert_eq!(q.dequeue(), Some(Pid::new(3)));
    }

    #[test]
    fn membership_tracks_dequeue_and_reenqueue() {
        let mut q = RunQueue::new();
        q.enqueue(Pid::new(7));
        assert!(q.contains(Pid::new(7)));
        assert_eq!(q.dequeue(), Some(Pid::new(7)));
        assert!(!q.contains(Pid::new(7)));
        q.enqueue(Pid::new(7));
        q.enqueue(Pid::new(7));
        assert_eq!(q.len(), 1);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![Pid::new(7)]);
    }

    #[test]
    fn clear_resets_membership() {
        let mut q = RunQueue::new();
        q.enqueue(Pid::new(3));
        q.enqueue(Pid::new(5));
        q.clear();
        assert!(q.is_empty());
        assert!(!q.contains(Pid::new(3)));
        q.enqueue(Pid::new(3));
        assert_eq!(q.dequeue(), Some(Pid::new(3)));
    }

    #[test]
    fn empty_queue_reports_empty() {
        let mut q = RunQueue::new();
        assert!(q.is_empty());
        q.enqueue(Pid::new(9));
        assert!(!q.is_empty());
        q.remove(Pid::new(9));
        assert!(q.is_empty());
    }
}
