//! # bas-sim — deterministic execution substrate
//!
//! This crate provides the machinery shared by all three simulated operating
//! system platforms in the BAS reproduction (`bas-minix`, `bas-sel4` and
//! `bas-linux`): a virtual clock with a configurable cost model, a
//! process-as-resumable-state-machine abstraction, a round-robin run queue,
//! a timer queue, kernel metrics, a deterministic RNG, an event trace, and a
//! device bus connecting drivers to the simulated physical world.
//!
//! ## Execution model
//!
//! A simulated user process is any type implementing [`Process`]. The kernel
//! repeatedly *resumes* the scheduled process, handing it the reply to its
//! previous system call; the process computes until its next system call and
//! returns an [`Action`]. Blocking semantics (IPC rendezvous, queue waits,
//! sleeps) are implemented by the kernel simply not resuming a process until
//! the blocking condition resolves. This yields a fully deterministic,
//! single-threaded simulation in which context switches and kernel entries
//! can be counted exactly.
//!
//! ```
//! use bas_sim::process::{Action, Process};
//!
//! /// A process that yields twice and then exits.
//! struct Idler(u32);
//!
//! impl Process for Idler {
//!     type Syscall = ();
//!     type Reply = ();
//!     fn resume(&mut self, _reply: Option<()>) -> Action<()> {
//!         if self.0 == 0 {
//!             Action::Exit(0)
//!         } else {
//!             self.0 -= 1;
//!             Action::Yield
//!         }
//!     }
//! }
//!
//! let mut p = Idler(2);
//! assert!(matches!(p.resume(None), Action::Yield));
//! assert!(matches!(p.resume(None), Action::Yield));
//! assert!(matches!(p.resume(None), Action::Exit(0)));
//! ```

pub mod arena;
pub mod caps;
pub mod clock;
pub mod device;
pub mod fault;
pub mod metrics;
pub mod process;
pub mod rng;
pub mod sched;
pub mod script;
pub mod time;
pub mod timer;
pub mod trace;

pub use arena::{MsgArena, MsgRef};
pub use caps::{CapChurnOp, CapEvent, CapLog, CapOp, CapTrace, ChurnKind};
pub use clock::{CostModel, VirtualClock};
pub use device::{Device, DeviceBus, DeviceId};
pub use fault::{FaultyDevice, IpcFault, IpcFaultState, SensorFaultHandle, SensorFaultMode};
pub use metrics::KernelMetrics;
pub use process::{Action, Pid, ProcState, Process};
pub use rng::SimRng;
pub use sched::RunQueue;
pub use time::{SimDuration, SimTime};
pub use timer::TimerQueue;
pub use trace::{TraceEvent, TraceLog};
