//! Virtual clock and kernel cost model.
//!
//! The paper observes that "the microkernel approach generally under-performs
//! the monolithic due to the multiple context switches" (§III). To make that
//! comparison measurable in simulation, every kernel charges virtual time
//! through a [`CostModel`]: each kernel entry, context switch, and copied
//! IPC byte advances the [`VirtualClock`] by a configurable amount. The
//! defaults are loosely calibrated to a ~1 GHz embedded ARM core (the
//! BeagleBone Black used by the paper's testbed).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Nanosecond charges for kernel-level operations.
///
/// ```
/// use bas_sim::clock::CostModel;
/// let m = CostModel::default();
/// assert!(m.context_switch.as_nanos() > m.kernel_entry.as_nanos());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of switching between two processes (register save/restore,
    /// address-space switch, cache effects).
    pub context_switch: SimDuration,
    /// Cost of entering and leaving the kernel (trap + return).
    pub kernel_entry: SimDuration,
    /// Cost per byte copied across an address-space boundary during IPC.
    pub ipc_copy_per_byte: SimDuration,
    /// Fixed overhead of validating and dispatching one system call.
    pub syscall_dispatch: SimDuration,
    /// Scheduler quantum: virtual time charged to a process per resume when
    /// it computes without trapping.
    pub user_compute: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            context_switch: SimDuration::from_nanos(2_000),
            kernel_entry: SimDuration::from_nanos(150),
            ipc_copy_per_byte: SimDuration::from_nanos(1),
            syscall_dispatch: SimDuration::from_nanos(100),
            user_compute: SimDuration::from_micros(10),
        }
    }
}

impl CostModel {
    /// A zero-cost model, useful in unit tests that assert on logical
    /// ordering rather than timing.
    pub fn free() -> Self {
        CostModel {
            context_switch: SimDuration::ZERO,
            kernel_entry: SimDuration::ZERO,
            ipc_copy_per_byte: SimDuration::ZERO,
            syscall_dispatch: SimDuration::ZERO,
            user_compute: SimDuration::ZERO,
        }
    }
}

/// The kernel's monotonically advancing virtual clock.
///
/// ```
/// use bas_sim::clock::{CostModel, VirtualClock};
///
/// let mut clk = VirtualClock::new(CostModel::default());
/// let t0 = clk.now();
/// clk.charge_context_switch();
/// assert!(clk.now() > t0);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualClock {
    now: SimTime,
    cost: CostModel,
}

impl VirtualClock {
    /// Creates a clock at boot time with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        VirtualClock {
            now: SimTime::ZERO,
            cost,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Rewinds the clock to boot time, keeping the cost model
    /// (snapshot-fork boot).
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Advances the clock by an arbitrary duration (e.g. idle time until the
    /// next timer deadline).
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// it unchanged.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Charges one context switch.
    pub fn charge_context_switch(&mut self) {
        self.now += self.cost.context_switch;
    }

    /// Charges one kernel entry/exit pair.
    pub fn charge_kernel_entry(&mut self) {
        self.now += self.cost.kernel_entry;
    }

    /// Charges syscall validation/dispatch overhead.
    pub fn charge_syscall_dispatch(&mut self) {
        self.now += self.cost.syscall_dispatch;
    }

    /// Charges an IPC copy of `bytes` bytes.
    pub fn charge_ipc_copy(&mut self, bytes: usize) {
        self.now += SimDuration::from_nanos(self.cost.ipc_copy_per_byte.as_nanos() * bytes as u64);
    }

    /// Charges one user-mode compute quantum.
    pub fn charge_user_compute(&mut self) {
        self.now += self.cost.user_compute;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut clk = VirtualClock::new(CostModel::default());
        clk.charge_kernel_entry();
        clk.charge_syscall_dispatch();
        clk.charge_context_switch();
        clk.charge_ipc_copy(64);
        let expected = 150 + 100 + 2_000 + 64;
        assert_eq!(clk.now().as_nanos(), expected);
    }

    #[test]
    fn free_model_charges_nothing() {
        let mut clk = VirtualClock::new(CostModel::free());
        clk.charge_context_switch();
        clk.charge_ipc_copy(1_000_000);
        clk.charge_user_compute();
        assert_eq!(clk.now(), SimTime::ZERO);
    }

    #[test]
    fn reset_rewinds_but_keeps_cost_model() {
        let mut clk = VirtualClock::new(CostModel::default());
        clk.charge_context_switch();
        clk.reset();
        assert_eq!(clk.now(), SimTime::ZERO);
        clk.charge_context_switch();
        assert_eq!(clk.now().as_nanos(), 2_000);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut clk = VirtualClock::new(CostModel::free());
        clk.advance(SimDuration::from_secs(5));
        clk.advance_to(SimTime::from_nanos(1)); // in the past: no-op
        assert_eq!(clk.now().as_secs(), 5);
        clk.advance_to(SimTime::from_nanos(6_000_000_000));
        assert_eq!(clk.now().as_secs(), 6);
    }
}
