//! Generic scripted processes, usable with any platform's syscall types.
//!
//! `bas-sel4` and `bas-linux` tests and attack payloads reuse this; the
//! MINIX crate has its own specialized variant that predates it.

use std::cell::RefCell;
use std::rc::Rc;

use crate::process::{Action, Process};

/// Shared handle to a script's recorded replies. Entry *i* is the reply
/// delivered before step *i* was issued (entry 0 is always `None`).
pub type ScriptLog<R> = Rc<RefCell<Vec<Option<R>>>>;

/// A process that issues a fixed sequence of syscalls and exits, or loops
/// forever.
///
/// ```
/// use bas_sim::process::{Action, Process};
/// use bas_sim::script::Script;
///
/// let mut p: Script<u32, ()> = Script::new(vec![1, 2]);
/// assert!(matches!(p.resume(None), Action::Syscall(1)));
/// assert!(matches!(p.resume(None), Action::Syscall(2)));
/// assert!(matches!(p.resume(None), Action::Exit(0)));
/// ```
pub struct Script<S, R> {
    name: String,
    steps: Vec<S>,
    idx: usize,
    log: Option<ScriptLog<R>>,
    looping: bool,
}

impl<S: Clone, R> Script<S, R> {
    /// A one-shot script.
    pub fn new(steps: Vec<S>) -> Self {
        Script {
            name: "script".into(),
            steps,
            idx: 0,
            log: None,
            looping: false,
        }
    }

    /// A named one-shot script.
    pub fn named(name: impl Into<String>, steps: Vec<S>) -> Self {
        Script {
            name: name.into(),
            ..Script::new(steps)
        }
    }

    /// A script that repeats its steps forever.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn looping(steps: Vec<S>) -> Self {
        assert!(!steps.is_empty(), "looping script needs at least one step");
        Script {
            looping: true,
            ..Script::new(steps)
        }
    }

    /// Attaches a shared reply log.
    pub fn logged(mut self) -> (Self, ScriptLog<R>) {
        let log: ScriptLog<R> = Rc::new(RefCell::new(Vec::new()));
        self.log = Some(log.clone());
        (self, log)
    }
}

impl<S: Clone, R> Process for Script<S, R> {
    type Syscall = S;
    type Reply = R;

    fn resume(&mut self, reply: Option<R>) -> Action<S> {
        if let Some(log) = &self.log {
            log.borrow_mut().push(reply);
        }
        if self.idx >= self.steps.len() {
            if self.looping {
                self.idx = 0;
            } else {
                return Action::Exit(0);
            }
        }
        let step = self.steps[self.idx].clone();
        self.idx += 1;
        Action::Syscall(step)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Extracts the non-`None` replies from a [`ScriptLog`].
pub fn replies<R: Clone>(log: &ScriptLog<R>) -> Vec<R> {
    log.borrow().iter().flatten().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_order_and_exit() {
        let (mut p, log): (Script<u8, u8>, _) = Script::new(vec![10, 20]).logged();
        let _ = p.resume(None);
        let _ = p.resume(Some(1));
        assert!(matches!(p.resume(Some(2)), Action::Exit(0)));
        assert_eq!(replies(&log), vec![1, 2]);
    }

    #[test]
    fn looping_never_exits() {
        let mut p: Script<u8, ()> = Script::looping(vec![1]);
        for _ in 0..100 {
            assert!(matches!(p.resume(None), Action::Syscall(1)));
        }
    }

    #[test]
    fn named_script_reports_name() {
        let p: Script<u8, ()> = Script::named("attacker", vec![1]);
        assert_eq!(p.name(), "attacker");
    }
}
