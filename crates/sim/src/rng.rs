//! Seeded random number generation for reproducible simulations.
//!
//! All stochastic behaviour in the reproduction — sensor noise, scripted
//! web-interface activity, attack timing jitter — draws from a [`SimRng`]
//! seeded by the scenario configuration, so every experiment is replayable.

/// A deterministic RNG.
///
/// Internally a SplitMix64 generator — statistically solid for simulation
/// noise, trivially seedable, and dependency-free (the build container has
/// no crates.io access, so `rand` is deliberately not used).
///
/// ```
/// use bas_sim::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift bounded sampling; bias is negligible for sim noise.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Standard-normal sample via Box–Muller (avoids an extra dependency on
    /// `rand_distr`).
    pub fn gaussian(&mut self) -> f64 {
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform() < p
    }

    /// Derives an independent child RNG (e.g. one per subsystem) such that
    /// adding draws to one subsystem does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SimRng::seed_from(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean too far from 0: {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance too far from 1: {var}");
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1_000 {
            let v = rng.uniform_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn fork_decouples_streams() {
        let mut parent1 = SimRng::seed_from(3);
        let mut parent2 = SimRng::seed_from(3);
        let mut child1 = parent1.fork();
        let mut child2 = parent2.fork();
        // Children are identical...
        assert_eq!(child1.next_u64(), child2.next_u64());
        // ...and extra draws on one child leave the parents in sync.
        let _ = child1.next_u64();
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn chance_rejects_invalid_probability() {
        let mut rng = SimRng::seed_from(0);
        let _ = rng.chance(1.5);
    }
}
