//! Kernel-level counters used by the performance experiments (E8).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters maintained by every simulated kernel.
///
/// These back the paper's §III performance remark: the microkernel platforms
/// pay extra context switches and kernel entries per logical operation,
/// which `exp_ipc_overhead` quantifies.
///
/// ```
/// use bas_sim::metrics::KernelMetrics;
/// let mut m = KernelMetrics::default();
/// m.context_switches += 1;
/// m.ipc_messages += 2;
/// assert!(format!("{m}").contains("ipc_messages=2"));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Process-to-process switches performed by the scheduler.
    pub context_switches: u64,
    /// Traps into the kernel (syscall entries).
    pub kernel_entries: u64,
    /// IPC messages successfully delivered.
    pub ipc_messages: u64,
    /// Bytes copied across address spaces for IPC.
    pub ipc_bytes: u64,
    /// System calls rejected by access control (ACM, capabilities, DAC).
    pub access_denied: u64,
    /// System calls that failed for non-policy reasons.
    pub syscall_errors: u64,
    /// Processes created over the kernel lifetime.
    pub processes_created: u64,
    /// Processes that exited or were killed.
    pub processes_reaped: u64,
    /// Heap allocations attributable to the per-tick IPC path (message
    /// arena slot-table growth and oversized-payload spills). A warm
    /// kernel holds this constant across ticks; the zero-alloc test gates
    /// on it.
    pub hot_path_allocs: u64,
    /// Sends that had to block — the receiver was not at its rendezvous
    /// (MINIX/seL4) or the queue was full (Linux mq). The queue-depth /
    /// backpressure signal the traffic experiments (E18) watch: offered
    /// load beyond the service rate shows up here first.
    pub ipc_waits: u64,
}

impl KernelMetrics {
    /// Resets every counter to zero (used between benchmark phases).
    pub fn reset(&mut self) {
        *self = KernelMetrics::default();
    }

    /// Field-wise difference `self - earlier`, for measuring one phase.
    ///
    /// Saturating: if [`KernelMetrics::reset`] ran between the two
    /// snapshots, a counter of `earlier` can exceed `self`'s; the delta
    /// then clamps that field to zero instead of underflowing. Callers
    /// that need exact phase deltas must not reset between snapshots.
    pub fn delta_since(&self, earlier: &KernelMetrics) -> KernelMetrics {
        KernelMetrics {
            context_switches: self
                .context_switches
                .saturating_sub(earlier.context_switches),
            kernel_entries: self.kernel_entries.saturating_sub(earlier.kernel_entries),
            ipc_messages: self.ipc_messages.saturating_sub(earlier.ipc_messages),
            ipc_bytes: self.ipc_bytes.saturating_sub(earlier.ipc_bytes),
            access_denied: self.access_denied.saturating_sub(earlier.access_denied),
            syscall_errors: self.syscall_errors.saturating_sub(earlier.syscall_errors),
            processes_created: self
                .processes_created
                .saturating_sub(earlier.processes_created),
            processes_reaped: self
                .processes_reaped
                .saturating_sub(earlier.processes_reaped),
            hot_path_allocs: self.hot_path_allocs.saturating_sub(earlier.hot_path_allocs),
            ipc_waits: self.ipc_waits.saturating_sub(earlier.ipc_waits),
        }
    }
}

impl fmt::Display for KernelMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ctx_switches={} kernel_entries={} ipc_messages={} ipc_bytes={} \
             access_denied={} syscall_errors={} procs_created={} procs_reaped={} \
             hot_path_allocs={} ipc_waits={}",
            self.context_switches,
            self.kernel_entries,
            self.ipc_messages,
            self.ipc_bytes,
            self.access_denied,
            self.syscall_errors,
            self.processes_created,
            self.processes_reaped,
            self.hot_path_allocs,
            self.ipc_waits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = KernelMetrics {
            context_switches: 10,
            ipc_messages: 7,
            ..Default::default()
        };
        let mut b = a;
        b.context_switches = 25;
        b.ipc_messages = 9;
        b.access_denied = 3;
        let d = b.delta_since(&a);
        assert_eq!(d.context_switches, 15);
        assert_eq!(d.ipc_messages, 2);
        assert_eq!(d.access_denied, 3);
    }

    /// `reset()` between snapshots must clamp to zero, not underflow.
    #[test]
    fn delta_after_reset_saturates() {
        let mut m = KernelMetrics {
            context_switches: 100,
            ipc_messages: 50,
            ..Default::default()
        };
        let snapshot = m;
        m.reset();
        m.ipc_messages = 10;
        let d = m.delta_since(&snapshot);
        assert_eq!(d.context_switches, 0);
        assert_eq!(d.ipc_messages, 0);
        // Forward progress after the reset still shows up normally.
        let d2 = m.delta_since(&KernelMetrics::default());
        assert_eq!(d2.ipc_messages, 10);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = KernelMetrics {
            kernel_entries: 5,
            ..KernelMetrics::default()
        };
        m.reset();
        assert_eq!(m, KernelMetrics::default());
    }

    #[test]
    fn display_contains_all_counters() {
        let s = format!("{}", KernelMetrics::default());
        for key in [
            "ctx_switches",
            "kernel_entries",
            "ipc_messages",
            "ipc_bytes",
            "access_denied",
            "syscall_errors",
            "procs_created",
            "procs_reaped",
            "hot_path_allocs",
            "ipc_waits",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
