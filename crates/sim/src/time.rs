//! Virtual time: instants and durations measured in nanoseconds since boot.
//!
//! Simulated kernels never consult the host clock; all timing flows through
//! [`SimTime`] and [`SimDuration`], which makes every run bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant in virtual time, in nanoseconds since simulation boot.
///
/// ```
/// use bas_sim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(1_500);
/// assert_eq!(t.as_nanos(), 1_500_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(1) + SimDuration::from_millis(500));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The boot instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds since boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since boot (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since boot as a float, for plotting and traces.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use bas_sim::time::SimDuration;
///
/// assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_millis(6_000));
/// assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_nanos(3_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 8_000);
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_mins(2).as_nanos(), 120_000_000_000);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(late.saturating_since(early).as_nanos(), 40);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_is_nonempty_and_scaled() {
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
        assert_eq!(
            format!("{}", SimTime::from_nanos(1_500_000_000)),
            "1.500000s"
        );
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }
}
