//! Device bus: the boundary between driver processes and the simulated
//! physical world.
//!
//! The paper's testbed (Fig. 4) wires a BMP180 temperature sensor, a fan and
//! an LED alarm to a BeagleBone Black. In the reproduction those devices are
//! implemented by `bas-plant` and registered on a [`DeviceBus`]; driver
//! processes reach them through platform-specific device syscalls, gated by
//! each platform's own access-control mechanism (ACM entries on MINIX,
//! device capabilities on seL4, `/dev` DAC modes on Linux).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one device on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(u32);

impl DeviceId {
    /// The scenario's temperature sensor (read-only).
    pub const TEMP_SENSOR: DeviceId = DeviceId(1);
    /// The scenario's fan/heater actuator (write-only).
    pub const FAN: DeviceId = DeviceId(2);
    /// The scenario's alarm actuator (write-only).
    pub const ALARM: DeviceId = DeviceId(3);

    /// Creates a custom device id.
    pub const fn new(raw: u32) -> Self {
        DeviceId(raw)
    }

    /// Raw id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeviceId::TEMP_SENSOR => write!(f, "dev:temp-sensor"),
            DeviceId::FAN => write!(f, "dev:fan"),
            DeviceId::ALARM => write!(f, "dev:alarm"),
            DeviceId(raw) => write!(f, "dev:{raw}"),
        }
    }
}

/// A memory-mapped-register-style device: reads return a signed word,
/// writes accept one.
pub trait Device {
    /// Reads the device's current value (e.g. temperature in milli-degrees
    /// Celsius for the sensor).
    fn read(&mut self) -> i64;

    /// Writes a control value (e.g. nonzero = actuator on).
    fn write(&mut self, value: i64);
}

/// Error returned for device operations on unknown ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSuchDeviceError(pub DeviceId);

impl fmt::Display for NoSuchDeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no device registered with id {}", self.0)
    }
}

impl std::error::Error for NoSuchDeviceError {}

/// The set of devices visible to one kernel instance.
#[derive(Default)]
pub struct DeviceBus {
    devices: BTreeMap<DeviceId, Box<dyn Device>>,
}

impl fmt::Debug for DeviceBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceBus")
            .field("devices", &self.devices.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl DeviceBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        DeviceBus {
            devices: BTreeMap::new(),
        }
    }

    /// Registers the device behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered: a second registration would
    /// silently shadow a live device (a fault interposer, for instance,
    /// must go through [`DeviceBus::interpose`] instead).
    pub fn register(&mut self, id: DeviceId, device: Box<dyn Device>) {
        let prev = self.devices.insert(id, device);
        assert!(prev.is_none(), "device {id} registered twice");
    }

    /// Replaces the device behind `id` with a wrapper built around it —
    /// the sanctioned path for fault interposers (`bas-sim::fault`),
    /// which must wrap the real device rather than shadow it.
    ///
    /// # Errors
    ///
    /// Returns [`NoSuchDeviceError`] if no device is registered under `id`.
    pub fn interpose(
        &mut self,
        id: DeviceId,
        wrap: impl FnOnce(Box<dyn Device>) -> Box<dyn Device>,
    ) -> Result<(), NoSuchDeviceError> {
        let inner = self.devices.remove(&id).ok_or(NoSuchDeviceError(id))?;
        self.devices.insert(id, wrap(inner));
        Ok(())
    }

    /// Reads from the device.
    ///
    /// # Errors
    ///
    /// Returns [`NoSuchDeviceError`] if no device is registered under `id`.
    pub fn read(&mut self, id: DeviceId) -> Result<i64, NoSuchDeviceError> {
        self.devices
            .get_mut(&id)
            .map(|d| d.read())
            .ok_or(NoSuchDeviceError(id))
    }

    /// Writes to the device.
    ///
    /// # Errors
    ///
    /// Returns [`NoSuchDeviceError`] if no device is registered under `id`.
    pub fn write(&mut self, id: DeviceId, value: i64) -> Result<(), NoSuchDeviceError> {
        match self.devices.get_mut(&id) {
            Some(d) => {
                d.write(value);
                Ok(())
            }
            None => Err(NoSuchDeviceError(id)),
        }
    }

    /// True if a device is registered under `id`.
    pub fn contains(&self, id: DeviceId) -> bool {
        self.devices.contains_key(&id)
    }

    /// Registered device ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.devices.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Register(Rc<RefCell<i64>>);

    impl Device for Register {
        fn read(&mut self) -> i64 {
            *self.0.borrow()
        }
        fn write(&mut self, value: i64) {
            *self.0.borrow_mut() = value;
        }
    }

    #[test]
    fn read_write_roundtrip() {
        let cell = Rc::new(RefCell::new(0));
        let mut bus = DeviceBus::new();
        bus.register(DeviceId::FAN, Box::new(Register(cell.clone())));
        bus.write(DeviceId::FAN, 1).unwrap();
        assert_eq!(*cell.borrow(), 1);
        assert_eq!(bus.read(DeviceId::FAN).unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut bus = DeviceBus::new();
        bus.register(DeviceId::FAN, Box::new(Register(Rc::new(RefCell::new(0)))));
        bus.register(DeviceId::FAN, Box::new(Register(Rc::new(RefCell::new(0)))));
    }

    /// A wrapper installed through `interpose` sees the original device.
    #[test]
    fn interpose_wraps_the_registered_device() {
        struct PlusOne(Box<dyn Device>);
        impl Device for PlusOne {
            fn read(&mut self) -> i64 {
                self.0.read() + 1
            }
            fn write(&mut self, value: i64) {
                self.0.write(value);
            }
        }

        let cell = Rc::new(RefCell::new(41));
        let mut bus = DeviceBus::new();
        bus.register(DeviceId::TEMP_SENSOR, Box::new(Register(cell.clone())));
        bus.interpose(DeviceId::TEMP_SENSOR, |inner| Box::new(PlusOne(inner)))
            .unwrap();
        assert_eq!(bus.read(DeviceId::TEMP_SENSOR).unwrap(), 42);
        bus.write(DeviceId::TEMP_SENSOR, 10).unwrap();
        assert_eq!(*cell.borrow(), 10);
        // Interposing an unknown id reports the error instead of creating
        // a device from nothing.
        assert!(bus.interpose(DeviceId::new(99), |inner| inner).is_err());
    }

    #[test]
    fn unknown_device_errors() {
        let mut bus = DeviceBus::new();
        let err = bus.read(DeviceId::new(99)).unwrap_err();
        assert_eq!(err, NoSuchDeviceError(DeviceId::new(99)));
        assert!(bus.write(DeviceId::ALARM, 1).is_err());
        assert!(!bus.contains(DeviceId::ALARM));
    }

    #[test]
    fn well_known_ids_display_names() {
        assert_eq!(format!("{}", DeviceId::TEMP_SENSOR), "dev:temp-sensor");
        assert_eq!(format!("{}", DeviceId::FAN), "dev:fan");
        assert_eq!(format!("{}", DeviceId::ALARM), "dev:alarm");
        assert_eq!(format!("{}", DeviceId::new(9)), "dev:9");
    }
}
