//! Conformance suite for the `PlatformKernel`/`ScenarioEngine`
//! refactor: the generic engine must reproduce, cell for cell, the
//! attack matrix and benign verdicts the three hand-rolled platform
//! adapters produced before the collapse.
//!
//! The golden values below were captured from `exp_attack_matrix` at the
//! pre-refactor revision (PR 1). If a legitimate behavior change ever
//! moves a cell, re-capture deliberately — this table is the contract
//! that refactors of the platform layer are behavior-preserving.

use bas_attack::harness::{run_attack, AttackRunConfig};
use bas_attack::model::{AttackId, AttackerModel};
use bas_core::scenario::Platform;
use bas_sim::time::SimDuration;

/// One golden cell: (mechanism succeeded, critical alive, safety violated).
type Cell = (bool, bool, bool);

/// Golden outcomes in `AttackId::ALL` order for one platform+attacker
/// column. On every platform the A1 and A2 columns happen to coincide
/// under the shared-account baseline (for seL4 by construction — the
/// kernel has no notion of root).
fn golden_column(platform: Platform) -> [Cell; 9] {
    match platform {
        Platform::Linux => [
            (true, true, true),   // spoof-sensor-data
            (true, true, true),   // spoof-actuator-cmds
            (true, false, true),  // kill-critical
            (true, true, false),  // fork-bomb
            (true, true, false),  // brute-force-handles
            (true, true, false),  // flood-legit-channel
            (true, true, true),   // direct-device-write
            (false, true, false), // setpoint-tamper
            (true, true, true),   // replay-setpoint
        ],
        Platform::Minix => [
            (false, true, false), // spoof-sensor-data
            (false, true, false), // spoof-actuator-cmds
            (false, true, false), // kill-critical
            (true, true, false),  // fork-bomb
            (false, true, false), // brute-force-handles
            (true, true, false),  // flood-legit-channel
            (false, true, false), // direct-device-write
            (false, true, false), // setpoint-tamper
            (true, true, true),   // replay-setpoint
        ],
        Platform::Sel4 => [
            (false, true, false), // spoof-sensor-data
            (false, true, false), // spoof-actuator-cmds
            (false, true, false), // kill-critical
            (false, true, false), // fork-bomb
            (false, true, false), // brute-force-handles
            (false, true, false), // flood-legit-channel
            (false, true, false), // direct-device-write
            (false, true, false), // setpoint-tamper
            (true, true, true),   // replay-setpoint
        ],
    }
}

/// Golden max-deviation (°C, 2 decimal places) for the cells whose
/// physical trajectory the matrix prints — spot checks that the plant
/// dynamics, not just the verdicts, survived the refactor.
fn golden_max_deviation(platform: Platform, attack: AttackId) -> Option<f64> {
    match (platform, attack) {
        (Platform::Linux, AttackId::SpoofSensorData) => Some(23.98),
        (Platform::Linux, AttackId::SpoofActuatorCommands) => Some(24.97),
        (Platform::Linux, AttackId::DirectDeviceWrite) => Some(24.97),
        (_, AttackId::ReplaySetpoint) => Some(4.51),
        _ => None,
    }
}

#[test]
fn engine_matches_prerefactor_attack_matrix() {
    let config = AttackRunConfig::default();
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let golden = golden_column(platform);
        for (i, attack) in AttackId::ALL.into_iter().enumerate() {
            for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
                let o = run_attack(platform, attacker, attack, &config);
                let measured = (
                    o.mechanism.succeeded(),
                    o.critical_alive,
                    o.physical.safety_violated,
                );
                assert_eq!(
                    measured, golden[i],
                    "{platform} {attacker} {attack}: (mechanism, critical, violated) drifted \
                     from the pre-refactor adapters"
                );
                if let Some(dev) = golden_max_deviation(platform, attack) {
                    assert!(
                        (o.physical.max_deviation_c - dev).abs() < 0.005,
                        "{platform} {attacker} {attack}: max deviation {:.2} != golden {dev:.2}",
                        o.physical.max_deviation_c
                    );
                }
            }
        }
    }
}

/// The hardened-Linux column (per-process uids, 0620 queues): A1 is
/// contained except for resource exhaustion and replay; A2 regains every
/// physical-impact attack — golden from the same pre-refactor capture.
#[test]
fn engine_matches_prerefactor_hardened_linux() {
    use bas_core::platform::linux::UidScheme;
    let config = AttackRunConfig {
        linux_uid_scheme: UidScheme::PerProcessHardened,
        ..AttackRunConfig::default()
    };
    let golden_a1: [Cell; 9] = [
        (false, true, false), // spoof-sensor-data
        (false, true, false), // spoof-actuator-cmds
        (false, true, false), // kill-critical
        (true, true, false),  // fork-bomb
        (false, true, false), // brute-force-handles
        (true, true, false),  // flood-legit-channel
        (false, true, false), // direct-device-write
        (false, true, false), // setpoint-tamper
        (true, true, true),   // replay-setpoint
    ];
    let golden_a2: [Cell; 9] = [
        (true, true, true),   // spoof-sensor-data
        (true, true, true),   // spoof-actuator-cmds
        (true, false, true),  // kill-critical
        (true, true, false),  // fork-bomb
        (true, true, false),  // brute-force-handles
        (true, true, false),  // flood-legit-channel
        (true, true, true),   // direct-device-write
        (false, true, false), // setpoint-tamper
        (true, true, true),   // replay-setpoint
    ];
    for (attacker, golden) in [
        (AttackerModel::ArbitraryCode, golden_a1),
        (AttackerModel::Root, golden_a2),
    ] {
        for (i, attack) in AttackId::ALL.into_iter().enumerate() {
            let o = run_attack(Platform::Linux, attacker, attack, &config);
            let measured = (
                o.mechanism.succeeded(),
                o.critical_alive,
                o.physical.safety_violated,
            );
            assert_eq!(
                measured, golden[i],
                "hardened linux {attacker} {attack} drifted from the pre-refactor adapters"
            );
        }
    }
}

/// Benign E1 verdicts through the generic boot path: every platform runs
/// the default scenario safely with all critical processes alive, and
/// the three platforms exchange IPC (the engine actually drives the
/// kernels, not just the plant).
#[test]
fn benign_scenario_identical_verdicts_across_platforms() {
    use bas_core::scenario::{critical_alive, plant_snapshot, ScenarioConfig};
    let config = ScenarioConfig::default();
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let mut s = bas_core::boot_platform(platform, &config);
        s.run_for(SimDuration::from_mins(45));
        let snapshot = plant_snapshot(s.as_ref());
        assert!(!snapshot.safety_violated, "{platform}: benign run violated");
        assert!(critical_alive(s.as_ref()), "{platform}: critical loss");
        assert!(snapshot.in_band_fraction > 0.9, "{platform}: poor control");
        assert!(s.metrics().ipc_messages > 0, "{platform}: no IPC flowed");
    }
}
