//! Direct tests of the attacker state machines: reconnaissance ordering,
//! delay honoring, loop budgets, and evidence bookkeeping — independent of
//! any full scenario.

use bas_attack::evidence::new_evidence;
use bas_attack::procs::{AttackScript, AttackStep, MinixAttacker, Sel4Attacker};
use bas_minix::syscall::{Reply as MReply, Syscall as MSyscall};
use bas_sel4::syscall::{Reply as SReply, Syscall as SSyscall};
use bas_sim::process::{Action, Process};
use bas_sim::time::SimDuration;

#[test]
fn minix_attacker_resolves_then_delays_then_acts() {
    let evidence = new_evidence();
    let delay = SimDuration::from_secs(10);
    let builder = Box::new(move |resolved: &[Option<bas_minix::endpoint::Endpoint>]| {
        let target = resolved[0].expect("resolved in this test");
        AttackScript {
            delay,
            setup: vec![],
            loop_body: vec![AttackStep::counted(MSyscall::send(target, 1, []))],
            max_loops: Some(2),
        }
    });
    let mut attacker = MinixAttacker::new(vec!["temp_control".into()], builder, evidence.clone());

    // 1. Reconnaissance lookup first.
    let a = attacker.resume(None);
    assert!(
        matches!(a, Action::Syscall(MSyscall::Lookup { ref name }) if name == "temp_control"),
        "{a:?}"
    );
    // 2. Then the warmup sleep.
    let target = bas_minix::endpoint::Endpoint::new(2, 0);
    let a = attacker.resume(Some(MReply::Resolved(target)));
    assert!(
        matches!(a, Action::Syscall(MSyscall::Sleep { duration }) if duration == delay),
        "{a:?}"
    );
    // 3. Then exactly two counted loop iterations...
    let a = attacker.resume(Some(MReply::Ok));
    assert!(matches!(a, Action::Syscall(MSyscall::Send { dest, .. }) if dest == target));
    let a = attacker.resume(Some(MReply::Ok)); // reply to send #1
    assert!(matches!(a, Action::Syscall(MSyscall::Send { .. })));
    // 4. ...then idle sleeps forever.
    let a = attacker.resume(Some(MReply::Err(bas_minix::error::MinixError::CallDenied)));
    assert!(matches!(a, Action::Syscall(MSyscall::Sleep { .. })));
    let a = attacker.resume(Some(MReply::Ok));
    assert!(matches!(a, Action::Syscall(MSyscall::Sleep { .. })));

    // Evidence: one success, one denial, from the two counted sends.
    let ev = evidence.borrow();
    assert_eq!(ev.attempts, 2);
    assert_eq!(ev.successes, 1);
    assert_eq!(ev.denials, 1);
}

#[test]
fn minix_attacker_handles_failed_reconnaissance() {
    let evidence = new_evidence();
    let builder = Box::new(move |resolved: &[Option<bas_minix::endpoint::Endpoint>]| {
        assert_eq!(resolved, &[None], "lookup failure propagates as None");
        AttackScript {
            delay: SimDuration::ZERO,
            setup: vec![],
            loop_body: vec![],
            max_loops: Some(1),
        }
    });
    let mut attacker = MinixAttacker::new(vec!["ghost".into()], builder, evidence.clone());
    let _ = attacker.resume(None); // lookup
    let _ = attacker.resume(Some(MReply::Err(
        bas_minix::error::MinixError::NoSuchProcess,
    )));
    // Empty script: goes idle without panicking, zero evidence.
    let a = attacker.resume(Some(MReply::Ok));
    assert!(matches!(a, Action::Syscall(MSyscall::Sleep { .. })));
    assert_eq!(evidence.borrow().attempts, 0);
}

#[test]
fn sel4_attacker_counts_identified_handles() {
    let evidence = new_evidence();
    let script = AttackScript {
        delay: SimDuration::ZERO,
        setup: vec![
            AttackStep::counted(SSyscall::Identify {
                slot: bas_sel4::cap::CPtr::new(0),
            }),
            AttackStep::counted(SSyscall::Identify {
                slot: bas_sel4::cap::CPtr::new(1),
            }),
        ],
        loop_body: vec![],
        max_loops: Some(1),
    };
    let mut attacker = Sel4Attacker::new(script, evidence.clone());
    let _ = attacker.resume(None); // delay sleep
    let _ = attacker.resume(Some(SReply::Ok)); // -> identify 0
    let _ = attacker.resume(Some(SReply::Identified(Some(
        bas_sel4::objects::ObjKind::Endpoint,
    )))); // -> identify 1
    let _ = attacker.resume(Some(SReply::Err(
        bas_sel4::error::Sel4Error::InvalidCapability,
    )));

    let ev = evidence.borrow();
    assert_eq!(ev.attempts, 2);
    assert_eq!(ev.handles_found, 1, "one occupied slot discovered");
    assert_eq!(ev.denials, 1, "one empty slot denied");
    assert!(ev.notes.iter().any(|n| n.contains("endpoint")));
}

#[test]
fn pacing_steps_are_never_counted() {
    let evidence = new_evidence();
    let script = AttackScript {
        delay: SimDuration::ZERO,
        setup: vec![],
        loop_body: vec![
            AttackStep::counted(SSyscall::GetTime),
            AttackStep::pacing(SSyscall::Sleep {
                duration: SimDuration::from_secs(1),
            }),
        ],
        max_loops: Some(3),
    };
    let mut attacker = Sel4Attacker::new(script, evidence.clone());
    let mut reply = None;
    for _ in 0..12 {
        let _ = attacker.resume(reply.take());
        reply = Some(SReply::Ok);
    }
    // 3 loops × 1 counted step; the sleeps' Ok replies don't count.
    assert_eq!(evidence.borrow().attempts, 3);
    assert_eq!(evidence.borrow().successes, 3);
}
