//! The paper's §IV-D evaluation as assertions: each attack on each
//! platform under both attacker models, judged by kernel evidence and the
//! physical safety oracle.

use bas_attack::harness::{run_attack, AttackRunConfig};
use bas_attack::model::{AttackId, AttackerModel};
use bas_core::scenario::Platform;

fn cfg() -> AttackRunConfig {
    AttackRunConfig::default()
}

// ---------------------------------------------------------------------------
// §IV-D.1 — Linux
// ---------------------------------------------------------------------------

#[test]
fn linux_a1_spoof_sensor_compromises_physical_process() {
    // "We successfully used the web interface process to impersonate the
    // temperature sensor process [...] the LED controlled by alarm
    // actuator process showed everything is normal."
    let o = run_attack(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        AttackId::SpoofSensorData,
        &cfg(),
    );
    assert!(o.mechanism.succeeded(), "{o}");
    assert!(
        o.physical.safety_violated,
        "alarm must have been suppressed: {o}"
    );
    assert!(
        !o.physical.alarm_on,
        "the forged in-band readings keep the alarm off: {o}"
    );
    assert!(o.critical_alive, "spoofing does not kill processes: {o}");
}

#[test]
fn linux_a1_spoof_actuators_forces_fan_and_alarm_off() {
    // "we were able to send commands to the heater actuator process and
    // the alarm actuator process to arbitrarily control the fan and LED."
    let o = run_attack(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        AttackId::SpoofActuatorCommands,
        &cfg(),
    );
    assert!(o.mechanism.succeeded(), "{o}");
    assert!(o.physical.safety_violated, "{o}");
}

#[test]
fn linux_a1_kill_succeeds_under_shared_account() {
    let o = run_attack(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        AttackId::KillCritical,
        &cfg(),
    );
    assert!(o.mechanism.succeeded(), "{o}");
    assert!(!o.critical_alive, "controller and alarm driver killed: {o}");
    assert!(
        o.physical.safety_violated,
        "nobody answers the heat burst: {o}"
    );
}

#[test]
fn linux_a2_root_kill_succeeds_even_hardened() {
    // "the attacker can kill the temperature control process to
    // incapacitate the whole control scenario."
    use bas_core::platform::linux::UidScheme;
    let config = AttackRunConfig {
        linux_uid_scheme: UidScheme::PerProcessHardened,
        ..cfg()
    };
    let o = run_attack(
        Platform::Linux,
        AttackerModel::Root,
        AttackId::KillCritical,
        &config,
    );
    assert!(o.mechanism.succeeded(), "{o}");
    assert!(!o.critical_alive, "{o}");
}

#[test]
fn linux_hardened_stops_a1_spoofing_but_not_root() {
    // "Unless each process runs under a unique user account, and the
    // message queue is specifically configured [...] the problem will
    // still remain [with root]."
    use bas_core::platform::linux::UidScheme;
    let config = AttackRunConfig {
        linux_uid_scheme: UidScheme::PerProcessHardened,
        ..cfg()
    };

    let a1 = run_attack(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        AttackId::SpoofSensorData,
        &config,
    );
    assert!(
        !a1.mechanism.succeeded(),
        "hardened DAC stops the spoof: {a1}"
    );
    assert!(!a1.physical.safety_violated, "{a1}");

    let a2 = run_attack(
        Platform::Linux,
        AttackerModel::Root,
        AttackId::SpoofSensorData,
        &config,
    );
    assert!(a2.mechanism.succeeded(), "root bypasses DAC: {a2}");
    assert!(a2.physical.safety_violated, "{a2}");
}

#[test]
fn linux_direct_device_write_works_in_shared_account() {
    let o = run_attack(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        AttackId::DirectDeviceWrite,
        &cfg(),
    );
    assert!(o.mechanism.succeeded(), "{o}");
    assert!(
        o.physical.safety_violated,
        "alarm forced off through /dev: {o}"
    );
}

// ---------------------------------------------------------------------------
// §IV-D.2 — MINIX 3 + ACM
// ---------------------------------------------------------------------------

#[test]
fn minix_a1_spoof_sensor_blocked_by_acm() {
    // "The web interface process in user land cannot change a process's
    // identity stored in the kernel PCB, hence spoofing by trying to fake
    // one's identity cannot work."
    let o = run_attack(
        Platform::Minix,
        AttackerModel::ArbitraryCode,
        AttackId::SpoofSensorData,
        &cfg(),
    );
    assert!(!o.mechanism.succeeded(), "{o}");
    assert!(!o.physical.safety_violated, "{o}");
    assert!(o.critical_alive, "{o}");
    assert!(
        o.evidence.denials > 0,
        "the ACM visibly dropped requests: {o}"
    );
}

#[test]
fn minix_a2_root_changes_nothing() {
    // "In the second simulation, we give the web interface process root
    // privilege; however, the result is the same."
    for attack in [
        AttackId::SpoofSensorData,
        AttackId::SpoofActuatorCommands,
        AttackId::KillCritical,
    ] {
        let o = run_attack(Platform::Minix, AttackerModel::Root, attack, &cfg());
        assert!(!o.mechanism.succeeded(), "{o}");
        assert!(!o.physical.safety_violated, "{o}");
        assert!(o.critical_alive, "{o}");
    }
}

#[test]
fn minix_kill_blocked_by_pm_acm_policy() {
    // "the policy explicitly disallowed the web interface process to use
    // kill system call."
    let o = run_attack(
        Platform::Minix,
        AttackerModel::Root,
        AttackId::KillCritical,
        &cfg(),
    );
    assert!(!o.mechanism.succeeded(), "{o}");
    assert!(o.critical_alive, "{o}");
}

#[test]
fn minix_fork_bomb_succeeds_without_quota() {
    // "it can potentially launch a fork bomb to eat up system resources.
    // This is problematic."
    let o = run_attack(
        Platform::Minix,
        AttackerModel::ArbitraryCode,
        AttackId::ForkBomb,
        &cfg(),
    );
    assert!(o.mechanism.succeeded(), "forks are permitted: {o}");
    // But the *running* control loop keeps its safety property.
    assert!(!o.physical.safety_violated, "{o}");
    assert!(o.critical_alive, "{o}");
}

#[test]
fn minix_fork_quota_contains_fork_bomb() {
    // The paper's future-work fix, implemented: "using the ACM to give
    // each system call a quota."
    let mut config = cfg();
    config.scenario.web_fork_limit = Some(2);
    let o = run_attack(
        Platform::Minix,
        AttackerModel::ArbitraryCode,
        AttackId::ForkBomb,
        &config,
    );
    assert!(o.evidence.successes <= 2, "quota caps the bomb: {o}");
    assert!(o.evidence.denials > 0, "{o}");
}

#[test]
fn minix_brute_force_finds_nothing_usable() {
    let o = run_attack(
        Platform::Minix,
        AttackerModel::ArbitraryCode,
        AttackId::BruteForceHandles,
        &cfg(),
    );
    assert!(!o.mechanism.succeeded(), "{o}");
    assert!(!o.physical.safety_violated, "{o}");
}

#[test]
fn minix_direct_device_write_blocked_by_ownership() {
    let o = run_attack(
        Platform::Minix,
        AttackerModel::Root,
        AttackId::DirectDeviceWrite,
        &cfg(),
    );
    assert!(!o.mechanism.succeeded(), "{o}");
    assert!(!o.physical.safety_violated, "{o}");
}

// ---------------------------------------------------------------------------
// §IV-D.3 — seL4/CAmkES
// ---------------------------------------------------------------------------

#[test]
fn sel4_spoof_sensor_rejected_by_badge() {
    // The forged report carries the web interface's own badge; the
    // controller rejects it.
    let o = run_attack(
        Platform::Sel4,
        AttackerModel::ArbitraryCode,
        AttackId::SpoofSensorData,
        &cfg(),
    );
    assert!(!o.mechanism.succeeded(), "{o}");
    assert!(!o.physical.safety_violated, "{o}");
    assert!(o.critical_alive, "{o}");
}

#[test]
fn sel4_brute_force_finds_exactly_one_capability() {
    // "Per the CapDL file, our malicious process [...] should only have
    // access to one capability [...] This brute-force program was
    // unsuccessful in finding any additional capabilities, so it never
    // could send arbitrary data nor kill any other processes."
    let o = run_attack(
        Platform::Sel4,
        AttackerModel::ArbitraryCode,
        AttackId::BruteForceHandles,
        &cfg(),
    );
    assert_eq!(
        o.evidence.handles_found, 1,
        "exactly the one RPC capability: {o}"
    );
    assert!(o.critical_alive, "{o}");
    assert!(!o.physical.safety_violated, "{o}");
}

#[test]
fn sel4_kill_and_actuator_attacks_confined() {
    for attack in [
        AttackId::KillCritical,
        AttackId::SpoofActuatorCommands,
        AttackId::DirectDeviceWrite,
    ] {
        let o = run_attack(Platform::Sel4, AttackerModel::ArbitraryCode, attack, &cfg());
        assert!(!o.mechanism.succeeded(), "{o}");
        assert!(o.critical_alive, "{o}");
        assert!(!o.physical.safety_violated, "{o}");
    }
}

#[test]
fn sel4_fork_bomb_impossible() {
    let o = run_attack(
        Platform::Sel4,
        AttackerModel::ArbitraryCode,
        AttackId::ForkBomb,
        &cfg(),
    );
    assert!(
        !o.mechanism.succeeded(),
        "no authority to create threads: {o}"
    );
}

// ---------------------------------------------------------------------------
// Cross-platform invariants
// ---------------------------------------------------------------------------

#[test]
fn setpoint_tamper_bounded_by_validation_everywhere() {
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let o = run_attack(
            platform,
            AttackerModel::ArbitraryCode,
            AttackId::SetpointTamper,
            &cfg(),
        );
        assert!(!o.physical.safety_violated, "{o}");
        assert!(
            o.evidence.denials > 0,
            "validation rejected the tamper: {o}"
        );
    }
}

#[test]
fn flood_of_legitimate_channel_does_not_break_safety() {
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let o = run_attack(
            platform,
            AttackerModel::ArbitraryCode,
            AttackId::FloodLegitChannel,
            &cfg(),
        );
        assert!(!o.physical.safety_violated, "{o}");
        assert!(o.critical_alive, "{o}");
    }
}

#[test]
fn headline_result_microkernels_stop_what_linux_cannot() {
    // The paper's abstract, as an assertion: for the physical-impact
    // attacks, Linux falls and both microkernel platforms stand.
    for attack in [
        AttackId::SpoofSensorData,
        AttackId::SpoofActuatorCommands,
        AttackId::KillCritical,
    ] {
        for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
            let linux = run_attack(Platform::Linux, attacker, attack, &cfg());
            assert!(
                linux.compromised(),
                "linux should fall to {attack} under {attacker}: {linux}"
            );
            let minix = run_attack(Platform::Minix, attacker, attack, &cfg());
            assert!(!minix.compromised(), "minix must stand: {minix}");
            let sel4 = run_attack(Platform::Sel4, attacker, attack, &cfg());
            assert!(!sel4.compromised(), "sel4 must stand: {sel4}");
        }
    }
}

#[test]
fn replay_of_in_range_setpoint_compromises_every_platform() {
    // The boundary of the paper's claim: a captured *legitimate* admin
    // action replayed through the compromised admin channel is
    // indistinguishable from a real one at the IPC layer. The controller
    // obediently regulates to 26 °C while the building's actual reference
    // stays 22 °C — and the controller's own alarm logic, anchored to the
    // forged setpoint, stays silent. Only application-layer
    // authentication/freshness could stop this.
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let o = run_attack(
            platform,
            AttackerModel::ArbitraryCode,
            AttackId::ReplaySetpoint,
            &cfg(),
        );
        assert!(o.mechanism.succeeded(), "{o}");
        assert!(o.critical_alive, "no process harmed: {o}");
        assert!(
            o.physical.safety_violated,
            "room out of the *real* band with no alarm: {o}"
        );
    }
}

#[test]
fn headline_results_hold_across_sensor_seeds() {
    // The matrix cells are not artifacts of one noise seed.
    for seed in [7u64, 99, 123_456] {
        let mut config = cfg();
        config.scenario.seed = seed;
        let linux = run_attack(
            Platform::Linux,
            AttackerModel::ArbitraryCode,
            AttackId::SpoofSensorData,
            &config,
        );
        assert!(linux.compromised(), "seed {seed}: {linux}");
        let minix = run_attack(
            Platform::Minix,
            AttackerModel::ArbitraryCode,
            AttackId::SpoofSensorData,
            &config,
        );
        assert!(!minix.compromised(), "seed {seed}: {minix}");
        let sel4 = run_attack(
            Platform::Sel4,
            AttackerModel::ArbitraryCode,
            AttackId::SpoofSensorData,
            &config,
        );
        assert!(!sel4.compromised(), "seed {seed}: {sel4}");
    }
}
