//! Attacker process implementations, one per platform.
//!
//! Each attacker is a resumable state machine that (1) sleeps until the
//! attack start time (the system runs benignly during warmup), (2)
//! performs reconnaissance (name-service lookups on MINIX, pid lookups on
//! Linux; on seL4 the CapDL layout is assumed known, per the paper), (3)
//! runs a one-time setup sequence, then (4) repeats its loop body until
//! the loop budget is exhausted, recording classified kernel replies into
//! a shared [`EvidenceLog`].

use bas_sim::process::{Action, Process};
use bas_sim::time::SimDuration;

use crate::evidence::{classify_linux, classify_minix, classify_sel4, Class, EvidenceLog};

/// One attack step: a syscall plus whether its reply counts as evidence
/// (pacing sleeps don't).
#[derive(Debug, Clone)]
pub struct AttackStep<S> {
    /// The syscall to issue.
    pub syscall: S,
    /// Whether the reply is evidence.
    pub counted: bool,
}

impl<S> AttackStep<S> {
    /// A counted step.
    pub fn counted(syscall: S) -> Self {
        AttackStep {
            syscall,
            counted: true,
        }
    }

    /// An uncounted (pacing/bookkeeping) step.
    pub fn pacing(syscall: S) -> Self {
        AttackStep {
            syscall,
            counted: false,
        }
    }
}

/// The common schedule of an attack.
pub struct AttackScript<S> {
    /// Idle time before the attack starts (warmup).
    pub delay: SimDuration,
    /// One-time setup steps (queue opens, probes).
    pub setup: Vec<AttackStep<S>>,
    /// Steps repeated until the budget runs out.
    pub loop_body: Vec<AttackStep<S>>,
    /// Number of loop iterations (`None` = forever).
    pub max_loops: Option<u64>,
}

// ---------------------------------------------------------------------------
// MINIX attacker
// ---------------------------------------------------------------------------

pub use minix_attacker::{MinixAttacker, MinixScriptBuilder};

/// MINIX attacker implementation.
pub mod minix_attacker {
    use super::*;
    use bas_minix::endpoint::Endpoint;
    use bas_minix::syscall::{Reply, Syscall};

    /// Builds the script once reconnaissance has resolved the requested
    /// process names (a `None` entry means the name was not found).
    pub type MinixScriptBuilder = Box<dyn FnOnce(&[Option<Endpoint>]) -> AttackScript<Syscall>>;

    /// The compromised web-interface process on MINIX.
    pub struct MinixAttacker {
        lookups: Vec<String>,
        resolved: Vec<Option<Endpoint>>,
        builder: Option<MinixScriptBuilder>,
        script: Option<AttackScript<Syscall>>,
        evidence: EvidenceLog,
        phase: Phase,
        in_setup: bool,
        idx: usize,
        loops_done: u64,
        last_counted: bool,
    }

    enum Phase {
        Start,
        AwaitDelay,
        AwaitLookup(usize),
        Body,
        Idle,
    }

    impl MinixAttacker {
        /// Creates the attacker. `lookups` are resolved before the script
        /// builder runs.
        pub fn new(
            lookups: Vec<String>,
            builder: MinixScriptBuilder,
            evidence: EvidenceLog,
        ) -> Self {
            MinixAttacker {
                lookups,
                resolved: Vec::new(),
                builder: Some(builder),
                script: None,
                evidence,
                phase: Phase::Start,
                in_setup: true,
                idx: 0,
                loops_done: 0,
                last_counted: false,
            }
        }

        fn next_body_action(&mut self) -> Action<Syscall> {
            let script = self.script.as_ref().expect("script built");
            loop {
                let steps = if self.in_setup {
                    &script.setup
                } else {
                    &script.loop_body
                };
                if self.idx < steps.len() {
                    let step = &steps[self.idx];
                    self.idx += 1;
                    self.last_counted = step.counted;
                    return Action::Syscall(step.syscall.clone());
                }
                if self.in_setup {
                    self.in_setup = false;
                    self.idx = 0;
                    if script.loop_body.is_empty() {
                        break;
                    }
                    continue;
                }
                self.loops_done += 1;
                if script.max_loops.is_some_and(|m| self.loops_done >= m) {
                    break;
                }
                self.idx = 0;
            }
            self.phase = Phase::Idle;
            self.last_counted = false;
            Action::Syscall(Syscall::Sleep {
                duration: SimDuration::from_secs(3_600),
            })
        }
    }

    impl Process for MinixAttacker {
        type Syscall = Syscall;
        type Reply = Reply;

        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match self.phase {
                Phase::Start => {
                    // Reconnaissance first (lookups are cheap and silent),
                    // then sleep out the script's delay before acting.
                    self.phase = Phase::AwaitDelay;
                    if self.lookups.is_empty() {
                        let builder = self.builder.take().expect("builder present");
                        self.script = Some(builder(&[]));
                        let d = self.script.as_ref().expect("built").delay;
                        return Action::Syscall(Syscall::Sleep { duration: d });
                    }
                    self.phase = Phase::AwaitLookup(0);
                    Action::Syscall(Syscall::Lookup {
                        name: self.lookups[0].clone(),
                    })
                }
                Phase::AwaitLookup(i) => {
                    self.resolved.push(match reply {
                        Some(Reply::Resolved(ep)) => Some(ep),
                        _ => None,
                    });
                    if i + 1 < self.lookups.len() {
                        self.phase = Phase::AwaitLookup(i + 1);
                        return Action::Syscall(Syscall::Lookup {
                            name: self.lookups[i + 1].clone(),
                        });
                    }
                    let builder = self.builder.take().expect("builder present");
                    self.script = Some(builder(&self.resolved));
                    self.phase = Phase::AwaitDelay;
                    let d = self.script.as_ref().expect("built").delay;
                    Action::Syscall(Syscall::Sleep { duration: d })
                }
                Phase::AwaitDelay => {
                    self.phase = Phase::Body;
                    self.next_body_action()
                }
                Phase::Body => {
                    if self.last_counted {
                        if let Some(r) = &reply {
                            let class = classify_minix(r);
                            self.evidence.borrow_mut().record(class);
                        }
                    }
                    self.next_body_action()
                }
                Phase::Idle => Action::Syscall(Syscall::Sleep {
                    duration: SimDuration::from_secs(3_600),
                }),
            }
        }

        fn name(&self) -> &str {
            bas_core::proto::names::WEB
        }
    }
}

// ---------------------------------------------------------------------------
// seL4 attacker
// ---------------------------------------------------------------------------

pub use sel4_attacker::Sel4Attacker;

/// seL4 attacker implementation.
pub mod sel4_attacker {
    use super::*;
    use bas_sel4::objects::ObjKind;
    use bas_sel4::syscall::{Reply, Syscall};

    /// The compromised web-interface thread on seL4. The script is built
    /// at construction time from the glue map (the attacker is assumed to
    /// know the CapDL file, as in §IV-D.3).
    pub struct Sel4Attacker {
        script: AttackScript<Syscall>,
        evidence: EvidenceLog,
        phase: Phase,
        in_setup: bool,
        idx: usize,
        loops_done: u64,
        last_counted: bool,
    }

    enum Phase {
        Start,
        AwaitDelay,
        Body,
        Idle,
    }

    impl Sel4Attacker {
        /// Creates the attacker from its script.
        pub fn new(script: AttackScript<Syscall>, evidence: EvidenceLog) -> Self {
            Sel4Attacker {
                script,
                evidence,
                phase: Phase::Start,
                in_setup: true,
                idx: 0,
                loops_done: 0,
                last_counted: false,
            }
        }

        fn next_body_action(&mut self) -> Action<Syscall> {
            loop {
                let steps = if self.in_setup {
                    &self.script.setup
                } else {
                    &self.script.loop_body
                };
                if self.idx < steps.len() {
                    let step = &steps[self.idx];
                    self.idx += 1;
                    self.last_counted = step.counted;
                    return Action::Syscall(step.syscall.clone());
                }
                if self.in_setup {
                    self.in_setup = false;
                    self.idx = 0;
                    if self.script.loop_body.is_empty() {
                        break;
                    }
                    continue;
                }
                self.loops_done += 1;
                if self.script.max_loops.is_some_and(|m| self.loops_done >= m) {
                    break;
                }
                self.idx = 0;
            }
            self.phase = Phase::Idle;
            self.last_counted = false;
            Action::Syscall(Syscall::Sleep {
                duration: SimDuration::from_secs(3_600),
            })
        }
    }

    impl Process for Sel4Attacker {
        type Syscall = Syscall;
        type Reply = Reply;

        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match self.phase {
                Phase::Start => {
                    self.phase = Phase::AwaitDelay;
                    Action::Syscall(Syscall::Sleep {
                        duration: self.script.delay,
                    })
                }
                Phase::AwaitDelay => {
                    self.phase = Phase::Body;
                    self.next_body_action()
                }
                Phase::Body => {
                    if self.last_counted {
                        if let Some(r) = &reply {
                            let class = classify_sel4(r);
                            let mut ev = self.evidence.borrow_mut();
                            ev.record(class);
                            // Enumeration bookkeeping: a probe that found
                            // a capability.
                            if let Reply::Identified(kind) = r {
                                ev.handles_found += 1;
                                ev.notes.push(format!(
                                    "found capability: {}",
                                    kind.map_or("reply-cap".to_string(), |k: ObjKind| k
                                        .to_string())
                                ));
                            }
                        }
                    }
                    self.next_body_action()
                }
                Phase::Idle => Action::Syscall(Syscall::Sleep {
                    duration: SimDuration::from_secs(3_600),
                }),
            }
        }

        fn name(&self) -> &str {
            bas_core::proto::names::WEB
        }
    }
}

// ---------------------------------------------------------------------------
// Linux attacker
// ---------------------------------------------------------------------------

pub use linux_attacker::{LinuxAttacker, LinuxScriptBuilder};

/// Linux attacker implementation.
pub mod linux_attacker {
    use super::*;
    use bas_linux::syscall::{Reply, Syscall};
    use bas_sim::process::Pid;

    /// Builds the script once reconnaissance has resolved the requested
    /// process names to pids (`None` = not found).
    pub type LinuxScriptBuilder = Box<dyn FnOnce(&[Option<Pid>]) -> AttackScript<Syscall>>;

    /// The compromised web-interface process on Linux.
    ///
    /// The delay is applied *before* pid reconnaissance (so targets are
    /// looked up post-warmup); it therefore lives on the attacker and the
    /// script's own `delay` field is unused on this platform.
    pub struct LinuxAttacker {
        pid_lookups: Vec<String>,
        resolved: Vec<Option<Pid>>,
        builder: Option<LinuxScriptBuilder>,
        script: Option<AttackScript<Syscall>>,
        evidence: EvidenceLog,
        delay: SimDuration,
        phase: Phase,
        in_setup: bool,
        idx: usize,
        loops_done: u64,
        last_counted: bool,
    }

    enum Phase {
        Start,
        AwaitDelay,
        AwaitPidOf(usize),
        Body,
        Idle,
    }

    impl LinuxAttacker {
        /// Creates the attacker; `pid_lookups` resolve before the script
        /// builder runs (after the delay, so targets are post-warmup).
        pub fn new(
            pid_lookups: Vec<String>,
            builder: LinuxScriptBuilder,
            evidence: EvidenceLog,
            delay: SimDuration,
        ) -> Self {
            LinuxAttacker {
                pid_lookups,
                resolved: Vec::new(),
                builder: Some(builder),
                script: None,
                evidence,
                phase: Phase::Start,
                in_setup: true,
                idx: 0,
                loops_done: 0,
                last_counted: false,
                delay,
            }
        }

        fn next_body_action(&mut self) -> Action<Syscall> {
            let script = self.script.as_ref().expect("script built");
            loop {
                let steps = if self.in_setup {
                    &script.setup
                } else {
                    &script.loop_body
                };
                if self.idx < steps.len() {
                    let step = &steps[self.idx];
                    self.idx += 1;
                    self.last_counted = step.counted;
                    return Action::Syscall(step.syscall.clone());
                }
                if self.in_setup {
                    self.in_setup = false;
                    self.idx = 0;
                    if script.loop_body.is_empty() {
                        break;
                    }
                    continue;
                }
                self.loops_done += 1;
                if script.max_loops.is_some_and(|m| self.loops_done >= m) {
                    break;
                }
                self.idx = 0;
            }
            self.phase = Phase::Idle;
            self.last_counted = false;
            Action::Syscall(Syscall::Sleep {
                duration: SimDuration::from_secs(3_600),
            })
        }
    }

    impl Process for LinuxAttacker {
        type Syscall = Syscall;
        type Reply = Reply;

        fn resume(&mut self, reply: Option<Reply>) -> Action<Syscall> {
            match self.phase {
                Phase::Start => {
                    self.phase = Phase::AwaitDelay;
                    Action::Syscall(Syscall::Sleep {
                        duration: self.delay,
                    })
                }
                Phase::AwaitDelay => {
                    if self.pid_lookups.is_empty() {
                        let builder = self.builder.take().expect("builder present");
                        self.script = Some(builder(&[]));
                        self.phase = Phase::Body;
                        return self.next_body_action();
                    }
                    self.phase = Phase::AwaitPidOf(0);
                    Action::Syscall(Syscall::PidOf {
                        name: self.pid_lookups[0].clone(),
                    })
                }
                Phase::AwaitPidOf(i) => {
                    self.resolved.push(match reply {
                        Some(Reply::Pid(p)) => Some(p),
                        _ => None,
                    });
                    if i + 1 < self.pid_lookups.len() {
                        self.phase = Phase::AwaitPidOf(i + 1);
                        return Action::Syscall(Syscall::PidOf {
                            name: self.pid_lookups[i + 1].clone(),
                        });
                    }
                    let builder = self.builder.take().expect("builder present");
                    self.script = Some(builder(&self.resolved));
                    self.phase = Phase::Body;
                    self.next_body_action()
                }
                Phase::Body => {
                    if self.last_counted {
                        if let Some(r) = &reply {
                            let class = classify_linux(r);
                            let mut ev = self.evidence.borrow_mut();
                            ev.record(class);
                            if matches!(r, Reply::Qd(_)) && class == Class::Success {
                                ev.handles_found += 1;
                            }
                        }
                    }
                    self.next_body_action()
                }
                Phase::Idle => Action::Syscall(Syscall::Sleep {
                    duration: SimDuration::from_secs(3_600),
                }),
            }
        }

        fn name(&self) -> &str {
            bas_core::proto::names::WEB
        }
    }
}
