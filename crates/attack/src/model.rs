//! Attacker models, attack identifiers, and outcome types.

use bas_core::scenario::{PlantSnapshot, Platform};
use bas_sim::metrics::KernelMetrics;
use serde::{Deserialize, Serialize};

/// The paper's two attacker models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackerModel {
    /// A1: arbitrary code execution in the web-interface process.
    ArbitraryCode,
    /// A2: A1 plus root privilege ("gained through a privilege escalation
    /// exploit or through miss-configuration"). On seL4 this equals A1 —
    /// "the seL4 kernel and CAmkES generated code have no concept of user
    /// or root".
    Root,
}

impl std::fmt::Display for AttackerModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackerModel::ArbitraryCode => write!(f, "A1:code-exec"),
            AttackerModel::Root => write!(f, "A2:root"),
        }
    }
}

/// The attack catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackId {
    /// Impersonate the temperature sensor: inject "everything is normal"
    /// readings so the controller idles the fan and never raises the
    /// alarm while the room overheats (§IV-D.1's first attack).
    SpoofSensorData,
    /// Command the heater and alarm drivers directly, forcing the fan and
    /// alarm off ("arbitrarily control the fan and LED").
    SpoofActuatorCommands,
    /// Kill the temperature control process (and the alarm driver) "to
    /// incapacitate the whole control scenario".
    KillCritical,
    /// Exhaust the process table by forking ("launch a fork bomb to eat
    /// up system resources").
    ForkBomb,
    /// Enumerate and invoke every reachable IPC handle/capability (the
    /// §IV-D.3 brute-force program, generalized to all platforms).
    BruteForceHandles,
    /// Flood the controller's legitimate input channel with junk.
    FloodLegitChannel,
    /// Drive the physical devices directly, bypassing the drivers
    /// (extension attack: `/dev`-node DAC vs device ownership).
    DirectDeviceWrite,
    /// Send an out-of-range setpoint through the legitimate channel
    /// (bounded by application validation on every platform).
    SetpointTamper,
    /// Replay a captured *legitimate* (in-range) setpoint update through
    /// the compromised web interface — the BACnet replay-attack class the
    /// paper's introduction cites. Kernel-level IPC protection cannot
    /// distinguish this from a real administrator action on any platform:
    /// the web interface *is* the admin channel.
    ReplaySetpoint,
}

impl AttackId {
    /// The E18 traffic mix: relative weights for the attacks a
    /// network-reachable BAS front-end actually absorbs, following the
    /// incident taxonomy of dos Santos et al., *Leveraging Operational
    /// Technology and the Internet of Things to Attack Smart Buildings*
    /// (arXiv:1912.02480): protocol flooding and setpoint/property
    /// tampering dominate, replay of captured legitimate commands and
    /// sensor spoofing follow, blind capability brute-forcing trails.
    /// Weights are relative (the sampler normalizes); order is the
    /// deterministic tie-break for cumulative sampling.
    pub const TRAFFIC_MIX: [(AttackId, f64); 5] = [
        (AttackId::FloodLegitChannel, 0.30),
        (AttackId::SetpointTamper, 0.25),
        (AttackId::ReplaySetpoint, 0.20),
        (AttackId::SpoofSensorData, 0.15),
        (AttackId::BruteForceHandles, 0.10),
    ];

    /// All attacks, in matrix order.
    pub const ALL: [AttackId; 9] = [
        AttackId::SpoofSensorData,
        AttackId::SpoofActuatorCommands,
        AttackId::KillCritical,
        AttackId::ForkBomb,
        AttackId::BruteForceHandles,
        AttackId::FloodLegitChannel,
        AttackId::DirectDeviceWrite,
        AttackId::SetpointTamper,
        AttackId::ReplaySetpoint,
    ];
}

impl std::fmt::Display for AttackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttackId::SpoofSensorData => "spoof-sensor-data",
            AttackId::SpoofActuatorCommands => "spoof-actuator-cmds",
            AttackId::KillCritical => "kill-critical",
            AttackId::ForkBomb => "fork-bomb",
            AttackId::BruteForceHandles => "brute-force-handles",
            AttackId::FloodLegitChannel => "flood-legit-channel",
            AttackId::DirectDeviceWrite => "direct-device-write",
            AttackId::SetpointTamper => "setpoint-tamper",
            AttackId::ReplaySetpoint => "replay-setpoint",
        };
        f.write_str(s)
    }
}

/// Whether the attack *mechanism* worked, judged from syscall replies and
/// kernel traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MechanismOutcome {
    /// The kernel accepted the malicious operations.
    Succeeded(String),
    /// The kernel (or application validation) refused them.
    Blocked(String),
}

impl MechanismOutcome {
    /// True for [`MechanismOutcome::Succeeded`].
    pub fn succeeded(&self) -> bool {
        matches!(self, MechanismOutcome::Succeeded(_))
    }
}

impl std::fmt::Display for MechanismOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechanismOutcome::Succeeded(why) => write!(f, "SUCCEEDED ({why})"),
            MechanismOutcome::Blocked(why) => write!(f, "blocked ({why})"),
        }
    }
}

/// What happened in the physical world (from the safety oracle — E7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalSummary {
    /// The alarm-deadline safety property was violated.
    pub safety_violated: bool,
    /// Largest |temperature − setpoint| observed, °C.
    pub max_deviation_c: f64,
    /// Final temperature, °C.
    pub final_temp_c: f64,
    /// Alarm state at the end of the run.
    pub alarm_on: bool,
    /// Fan switch count (actuator churn).
    pub fan_switches: usize,
}

/// One cell of the attack matrix (E6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Platform attacked.
    pub platform: Platform,
    /// Attacker model.
    pub attacker: AttackerModel,
    /// The attack.
    pub attack: AttackId,
    /// Mechanism verdict.
    pub mechanism: MechanismOutcome,
    /// True if every critical process survived.
    pub critical_alive: bool,
    /// Physical-world verdict.
    pub physical: PhysicalSummary,
    /// Full plant safety snapshot (superset of `physical`, including
    /// alarm latencies — consumed by the fleet aggregator).
    pub plant: PlantSnapshot,
    /// Kernel counters at the end of the run.
    pub metrics: KernelMetrics,
    /// Raw evidence counters (attempts/successes/denials/errors).
    pub evidence: crate::evidence::AttackEvidence,
}

impl AttackOutcome {
    /// The bottom-line verdict the paper's comparison is about: did the
    /// attack compromise the *physical process or critical processes*?
    pub fn compromised(&self) -> bool {
        self.physical.safety_violated || !self.critical_alive
    }
}

impl std::fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} {:<12} {:<22} mech={:<44} critical_alive={:<5} safety_violated={:<5} maxdev={:.2}°C",
            self.platform.to_string(),
            self.attacker.to_string(),
            self.attack.to_string(),
            self.mechanism.to_string(),
            self.critical_alive,
            self.physical.safety_violated,
            self.physical.max_deviation_c,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(AttackId::SpoofSensorData.to_string(), "spoof-sensor-data");
        assert_eq!(AttackerModel::Root.to_string(), "A2:root");
        assert!(MechanismOutcome::Succeeded("x".into()).succeeded());
        assert!(!MechanismOutcome::Blocked("x".into()).succeeded());
    }

    #[test]
    fn all_attacks_enumerated_once() {
        let mut set = std::collections::BTreeSet::new();
        for a in AttackId::ALL {
            assert!(set.insert(a), "{a} duplicated");
        }
        assert_eq!(set.len(), 9);
    }
}
