//! The attack runner: warmup → attack window → cooldown → verdict.
//!
//! During warmup the system operates benignly. Mid-window the external
//! heat source steps up (the "manual heating" of the paper's testbed made
//! adversarial), so every run contains a physical disturbance the control
//! loop must answer: a healthy system rides it out (fan at full duty,
//! alarm raised within the deadline); a subverted one violates the safety
//! property — making the physical consequence of each attack observable,
//! not assumed.

use std::cell::RefCell;
use std::rc::Rc;

use bas_core::platform::linux::{build_linux, LinuxOverrides, UidScheme};
use bas_core::platform::minix::{build_minix, MinixOverrides};
use bas_core::platform::sel4::{build_sel4, Sel4Overrides};
use bas_core::scenario::{
    critical_alive, plant_snapshot, PlantSnapshot, Platform, Scenario, ScenarioConfig,
};
use bas_sim::metrics::KernelMetrics;
use bas_sim::time::SimDuration;

use crate::evidence::{new_evidence, AttackEvidence};
use crate::library;
use crate::model::{AttackId, AttackOutcome, AttackerModel, MechanismOutcome, PhysicalSummary};
use crate::procs::{LinuxAttacker, MinixAttacker, Sel4Attacker};

/// Timing and configuration of one attack run.
#[derive(Clone)]
pub struct AttackRunConfig {
    /// Base scenario (quiet web schedule; the attacker replaces the web
    /// interface anyway).
    pub scenario: ScenarioConfig,
    /// Benign operation before the attack starts.
    pub warmup: SimDuration,
    /// Attack duration.
    pub window: SimDuration,
    /// Post-attack observation.
    pub cooldown: SimDuration,
    /// Linux account configuration.
    pub linux_uid_scheme: UidScheme,
}

impl Default for AttackRunConfig {
    fn default() -> Self {
        let warmup = SimDuration::from_secs(600);
        let window = SimDuration::from_secs(900);
        let mut scenario = ScenarioConfig::quiet();
        // Physical disturbance mid-window: heat source 300 W → 600 W.
        // With the fan at full duty the room settles at 24 °C — outside
        // the 22±1 band — so a *healthy* controller must raise the alarm
        // within the deadline, and a subverted one gets caught by the
        // safety oracle.
        scenario.plant.heat_schedule = vec![(warmup + SimDuration::from_secs(300), 600.0)];
        AttackRunConfig {
            scenario,
            warmup,
            window,
            cooldown: SimDuration::from_secs(120),
            linux_uid_scheme: UidScheme::SharedAccount,
        }
    }
}

/// Runs one attack and produces the matrix cell.
pub fn run_attack(
    platform: Platform,
    attacker: AttackerModel,
    attack: AttackId,
    config: &AttackRunConfig,
) -> AttackOutcome {
    let evidence = new_evidence();
    let total = config.warmup + config.window + config.cooldown;

    let (critical, plant, metrics, alive_count): (bool, PlantSnapshot, KernelMetrics, usize) =
        match platform {
            Platform::Minix => {
                let (lookups, builder) = library::minix_script(attack, config.warmup);
                let builder_cell = Rc::new(RefCell::new(Some((lookups, builder))));
                let ev = evidence.clone();
                let overrides = MinixOverrides {
                    web_factory: Some(Box::new(move || {
                        let (lookups, builder) = builder_cell
                            .borrow_mut()
                            .take()
                            .expect("web interface spawned once");
                        Box::new(MinixAttacker::new(lookups, builder, ev.clone()))
                    })),
                    web_uid: match attacker {
                        AttackerModel::ArbitraryCode => 1000,
                        AttackerModel::Root => 0,
                    },
                    acm: None,
                    ..MinixOverrides::default()
                };
                let mut s = build_minix(&config.scenario, overrides);
                s.run_for(total);
                summarize(&s)
            }
            Platform::Sel4 => {
                // "the seL4 kernel and CAmkES generated code have no concept
                // of user or root" — A2 is identical to A1.
                let ev = evidence.clone();
                let warmup = config.warmup;
                let overrides = Sel4Overrides {
                    web_factory: Some(Box::new(move |glue| {
                        Box::new(Sel4Attacker::new(
                            library::sel4_script(attack, warmup, glue),
                            ev,
                        ))
                    })),
                    extra_caps: Vec::new(),
                    ..Sel4Overrides::default()
                };
                let mut s = build_sel4(&config.scenario, overrides);
                s.run_for(total);
                summarize(&s)
            }
            Platform::Linux => {
                let (pid_lookups, builder) = library::linux_script(attack);
                let builder_cell = Rc::new(RefCell::new(Some((pid_lookups, builder))));
                let ev = evidence.clone();
                let warmup = config.warmup;
                let overrides = LinuxOverrides {
                    web_factory: Some(Box::new(move || {
                        let (pid_lookups, builder) = builder_cell
                            .borrow_mut()
                            .take()
                            .expect("web interface spawned once");
                        Box::new(LinuxAttacker::new(pid_lookups, builder, ev.clone(), warmup))
                    })),
                    web_uid: match attacker {
                        AttackerModel::ArbitraryCode => None, // the scheme's web uid
                        AttackerModel::Root => Some(0),
                    },
                    uid_scheme: config.linux_uid_scheme,
                };
                let mut s = build_linux(&config.scenario, overrides);
                s.run_for(total);
                summarize(&s)
            }
        };

    let mut ev: AttackEvidence = evidence.borrow().clone();
    ev.notes
        .push(format!("{alive_count} processes alive after attack"));

    AttackOutcome {
        platform,
        attacker,
        attack,
        mechanism: judge_mechanism(platform, attack, &ev),
        critical_alive: critical,
        physical: PhysicalSummary {
            safety_violated: plant.safety_violated,
            max_deviation_c: plant.max_deviation_c,
            final_temp_c: plant.final_temp_c,
            alarm_on: plant.alarm_on,
            fan_switches: plant.fan_switches,
        },
        plant,
        metrics,
        evidence: ev,
    }
}

fn summarize(s: &dyn Scenario) -> (bool, PlantSnapshot, KernelMetrics, usize) {
    (
        critical_alive(s),
        plant_snapshot(s),
        s.metrics(),
        s.alive_names().len(),
    )
}

fn judge_mechanism(platform: Platform, attack: AttackId, ev: &AttackEvidence) -> MechanismOutcome {
    if attack == AttackId::BruteForceHandles {
        // Enumeration is judged by what it found *beyond the attacker's
        // legitimate holdings* — the paper's criterion: "unsuccessful in
        // finding any additional capabilities". The web interface
        // legitimately holds 1 capability on seL4, 3 queue handles on
        // Linux (setpoint, status, reply), and 0 raw endpoints on MINIX.
        let legitimate = match platform {
            Platform::Sel4 => 1,
            Platform::Linux => 3,
            Platform::Minix => 0,
        };
        return if ev.handles_found > legitimate {
            MechanismOutcome::Succeeded(format!(
                "{} handle(s) reachable ({} beyond legitimate) of {} probed",
                ev.handles_found,
                ev.handles_found - legitimate,
                ev.attempts
            ))
        } else {
            MechanismOutcome::Blocked(format!(
                "no handles beyond the {legitimate} legitimate one(s); {} probed",
                ev.attempts
            ))
        };
    }
    if ev.successes > 0 {
        MechanismOutcome::Succeeded(format!(
            "{}/{} operations accepted",
            ev.successes, ev.attempts
        ))
    } else if ev.denials > 0 {
        MechanismOutcome::Blocked(format!(
            "{}/{} operations denied by access control",
            ev.denials, ev.attempts
        ))
    } else {
        MechanismOutcome::Blocked(format!("no operation completed ({} errors)", ev.errors))
    }
}

/// Runs the full cross-product matrix (E6): every attack × platform ×
/// attacker model.
pub fn run_matrix(config: &AttackRunConfig) -> Vec<AttackOutcome> {
    let mut out = Vec::new();
    for attack in AttackId::ALL {
        for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
            for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
                out.push(run_attack(platform, attacker, attack, config));
            }
        }
    }
    out
}
