//! The attack catalogue: concrete per-platform scripts for each
//! [`AttackId`].
//!
//! Every script expresses the same *intent* on each platform, executed
//! through that platform's real syscall interface, exactly as the paper
//! re-ran its two simulations across Linux, MINIX 3 and seL4.

use bas_camkes::codegen::GlueMap;
use bas_core::platform::minix::prog_ids;
use bas_core::policy::{ctrl_rpc, instances, queues};
use bas_core::proto::{names, BasMsg, AC_WEB};
use bas_sim::time::SimDuration;

use crate::model::AttackId;
use crate::procs::{AttackScript, AttackStep};

/// The "everything is normal" reading injected by the spoofing attack:
/// 21.5 °C sits inside the alarm band (suppressing the alarm window) but
/// below the fan-off hysteresis threshold (idling the fan) — the paper's
/// "the LED [...] showed everything is normal" while "the temperature
/// control process still turn\[ed\] the fan" the wrong way.
pub const FAKE_NORMAL_MILLI_C: i32 = 21_500;

/// An obviously invalid setpoint for the tamper attack.
pub const TAMPER_SETPOINT_MILLI_C: i32 = 95_000;

/// The captured legitimate setpoint the replay attack re-sends: 26 degC is
/// inside the administrator's permitted range but 4 degC away from the real
/// reference, enough to take the room out of the safety band.
pub const REPLAYED_SETPOINT_MILLI_C: i32 = 26_000;

const SPOOF_PACE: SimDuration = SimDuration::from_millis(200);
const KILL_PACE: SimDuration = SimDuration::from_secs(1);
const TAMPER_PACE: SimDuration = SimDuration::from_secs(2);

// ---------------------------------------------------------------------------
// MINIX
// ---------------------------------------------------------------------------

/// MINIX attack plan: the names to resolve plus the script builder.
pub fn minix_script(
    attack: AttackId,
    delay: SimDuration,
) -> (
    Vec<String>,
    crate::procs::minix_attacker::MinixScriptBuilder,
) {
    use bas_minix::endpoint::Endpoint;
    use bas_minix::pm;
    use bas_minix::syscall::Syscall;

    fn send(ep: Endpoint, msg: BasMsg) -> Syscall {
        let (mtype, payload) = msg.to_minix();
        Syscall::Send {
            dest: ep,
            mtype,
            payload,
        }
    }

    let lookups: Vec<String> = match attack {
        AttackId::SpoofSensorData
        | AttackId::FloodLegitChannel
        | AttackId::SetpointTamper
        | AttackId::ReplaySetpoint => vec![names::CONTROL.into()],
        AttackId::SpoofActuatorCommands => vec![names::HEATER.into(), names::ALARM.into()],
        AttackId::KillCritical => vec![names::CONTROL.into(), names::ALARM.into()],
        _ => vec![],
    };

    let builder: crate::procs::minix_attacker::MinixScriptBuilder =
        Box::new(move |resolved: &[Option<Endpoint>]| {
            let mut setup = Vec::new();
            let mut loop_body = Vec::new();
            let mut max_loops = None;
            match attack {
                AttackId::SpoofSensorData => {
                    if let Some(Some(ctrl)) = resolved.first() {
                        loop_body.push(AttackStep::counted(send(
                            *ctrl,
                            BasMsg::SensorReading {
                                milli_c: FAKE_NORMAL_MILLI_C,
                                seq: 0,
                            },
                        )));
                        loop_body.push(AttackStep::pacing(Syscall::Sleep {
                            duration: SPOOF_PACE,
                        }));
                    }
                }
                AttackId::SpoofActuatorCommands => {
                    if let Some(Some(heater)) = resolved.first() {
                        loop_body.push(AttackStep::counted(send(
                            *heater,
                            BasMsg::FanCmd { on: false },
                        )));
                    }
                    if let Some(Some(alarm)) = resolved.get(1) {
                        loop_body.push(AttackStep::counted(send(
                            *alarm,
                            BasMsg::AlarmCmd { on: false },
                        )));
                    }
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: SPOOF_PACE,
                    }));
                }
                AttackId::KillCritical => {
                    for target in resolved.iter().flatten() {
                        loop_body.push(AttackStep::counted(Syscall::SendRec {
                            dest: pm::PM_ENDPOINT,
                            mtype: pm::PM_KILL,
                            payload: pm::encode_kill(*target),
                        }));
                    }
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: KILL_PACE,
                    }));
                    max_loops = Some(30);
                }
                AttackId::ForkBomb => {
                    // Fork the (blocking) actuator image under the web
                    // identity until the table fills.
                    loop_body.push(AttackStep::counted(Syscall::SendRec {
                        dest: pm::PM_ENDPOINT,
                        mtype: pm::PM_FORK2,
                        payload: pm::encode_fork2(prog_ids::HEATER, AC_WEB, 1000),
                    }));
                    max_loops = Some(60);
                }
                AttackId::BruteForceHandles => {
                    // Enumerate every plausible endpoint and try every
                    // scenario message type on it.
                    for slot in 0..32u16 {
                        for mtype in 1..=5u32 {
                            setup.push(AttackStep::counted(Syscall::Send {
                                dest: Endpoint::new(slot, 0),
                                mtype,
                                payload: bas_minix::message::Payload::zeroed(),
                            }));
                        }
                    }
                    max_loops = Some(1);
                }
                AttackId::FloodLegitChannel => {
                    if let Some(Some(ctrl)) = resolved.first() {
                        let (mtype, payload) = BasMsg::SetpointUpdate {
                            milli_c: -1_000_000,
                        }
                        .to_minix();
                        loop_body.push(AttackStep::counted(Syscall::NbSend {
                            dest: *ctrl,
                            mtype,
                            payload,
                        }));
                    }
                    max_loops = Some(1_000);
                }
                AttackId::DirectDeviceWrite => {
                    loop_body.push(AttackStep::counted(Syscall::DevWrite {
                        dev: bas_sim::device::DeviceId::FAN,
                        value: 0,
                    }));
                    loop_body.push(AttackStep::counted(Syscall::DevWrite {
                        dev: bas_sim::device::DeviceId::ALARM,
                        value: 0,
                    }));
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: SPOOF_PACE,
                    }));
                }
                AttackId::SetpointTamper => {
                    if let Some(Some(ctrl)) = resolved.first() {
                        let (mtype, payload) = BasMsg::SetpointUpdate {
                            milli_c: TAMPER_SETPOINT_MILLI_C,
                        }
                        .to_minix();
                        loop_body.push(AttackStep::counted(Syscall::SendRec {
                            dest: *ctrl,
                            mtype,
                            payload,
                        }));
                        loop_body.push(AttackStep::pacing(Syscall::Sleep {
                            duration: TAMPER_PACE,
                        }));
                    }
                    max_loops = Some(60);
                }
                AttackId::ReplaySetpoint => {
                    if let Some(Some(ctrl)) = resolved.first() {
                        let (mtype, payload) = BasMsg::SetpointUpdate {
                            milli_c: REPLAYED_SETPOINT_MILLI_C,
                        }
                        .to_minix();
                        loop_body.push(AttackStep::counted(Syscall::SendRec {
                            dest: *ctrl,
                            mtype,
                            payload,
                        }));
                        loop_body.push(AttackStep::pacing(Syscall::Sleep {
                            duration: TAMPER_PACE,
                        }));
                    }
                    max_loops = Some(60);
                }
            }
            AttackScript {
                delay,
                setup,
                loop_body,
                max_loops,
            }
        });

    (lookups, builder)
}

// ---------------------------------------------------------------------------
// seL4
// ---------------------------------------------------------------------------

/// seL4 attack script, built from the (attacker-known) glue map.
pub fn sel4_script(
    attack: AttackId,
    delay: SimDuration,
    glue: &GlueMap,
) -> AttackScript<bas_sel4::syscall::Syscall> {
    use bas_sel4::cap::CPtr;
    use bas_sel4::message::IpcMessage;
    use bas_sel4::syscall::Syscall;

    let ctrl = glue
        .client_slot(instances::WEB, "ctrl")
        .expect("web has its RPC cap");
    let enc = |v: i32| u64::from(v as u32);

    let mut setup = Vec::new();
    let mut loop_body = Vec::new();
    let mut max_loops = None;

    match attack {
        AttackId::SpoofSensorData => {
            loop_body.push(AttackStep::counted(Syscall::Call {
                ep: ctrl,
                msg: IpcMessage::with_data(
                    ctrl_rpc::REPORT_READING,
                    vec![enc(FAKE_NORMAL_MILLI_C), 0],
                ),
            }));
            loop_body.push(AttackStep::pacing(Syscall::Sleep {
                duration: SPOOF_PACE,
            }));
        }
        AttackId::SpoofActuatorCommands => {
            // The attacker holds no actuator capability; try every slot.
            for slot in 0..8 {
                loop_body.push(AttackStep::counted(Syscall::Call {
                    ep: CPtr::new(slot),
                    msg: IpcMessage::with_data(bas_core::policy::actuator_rpc::SET, vec![0]),
                }));
            }
            loop_body.push(AttackStep::pacing(Syscall::Sleep {
                duration: SPOOF_PACE,
            }));
            max_loops = Some(64);
        }
        AttackId::KillCritical => {
            for slot in 0..64 {
                setup.push(AttackStep::counted(Syscall::TcbSuspend {
                    tcb: CPtr::new(slot),
                }));
            }
            max_loops = Some(1);
        }
        AttackId::ForkBomb => {
            // No fork exists; object creation requires an untyped
            // capability (none granted), and minting stronger caps must
            // also fail.
            for slot in 0..8 {
                setup.push(AttackStep::counted(Syscall::Retype {
                    untyped: CPtr::new(slot),
                    kind: bas_sel4::syscall::RetypeKind::Endpoint,
                }));
                setup.push(AttackStep::counted(Syscall::Mint {
                    src: CPtr::new(slot),
                    rights: bas_sel4::rights::CapRights::ALL,
                    badge: 0,
                }));
            }
            max_loops = Some(1);
        }
        AttackId::BruteForceHandles => {
            // §IV-D.3: "a simple brute-forcing program which attempts to
            // enumerate all the seL4 capability slots."
            for slot in 0..64 {
                setup.push(AttackStep::counted(Syscall::Identify {
                    slot: CPtr::new(slot),
                }));
            }
            for slot in 0..64 {
                setup.push(AttackStep::counted(Syscall::TcbSuspend {
                    tcb: CPtr::new(slot),
                }));
            }
            max_loops = Some(1);
        }
        AttackId::FloodLegitChannel => {
            loop_body.push(AttackStep::counted(Syscall::Call {
                ep: ctrl,
                msg: IpcMessage::with_data(ctrl_rpc::SET_SETPOINT, vec![enc(-1_000_000)]),
            }));
            max_loops = Some(1_000);
        }
        AttackId::DirectDeviceWrite => {
            for slot in 0..8 {
                loop_body.push(AttackStep::counted(Syscall::DevWrite {
                    dev: CPtr::new(slot),
                    value: 0,
                }));
            }
            loop_body.push(AttackStep::pacing(Syscall::Sleep {
                duration: SPOOF_PACE,
            }));
            max_loops = Some(64);
        }
        AttackId::SetpointTamper => {
            loop_body.push(AttackStep::counted(Syscall::Call {
                ep: ctrl,
                msg: IpcMessage::with_data(
                    ctrl_rpc::SET_SETPOINT,
                    vec![enc(TAMPER_SETPOINT_MILLI_C)],
                ),
            }));
            loop_body.push(AttackStep::pacing(Syscall::Sleep {
                duration: TAMPER_PACE,
            }));
            max_loops = Some(60);
        }
        AttackId::ReplaySetpoint => {
            loop_body.push(AttackStep::counted(Syscall::Call {
                ep: ctrl,
                msg: IpcMessage::with_data(
                    ctrl_rpc::SET_SETPOINT,
                    vec![enc(REPLAYED_SETPOINT_MILLI_C)],
                ),
            }));
            loop_body.push(AttackStep::pacing(Syscall::Sleep {
                duration: TAMPER_PACE,
            }));
            max_loops = Some(60);
        }
    }

    AttackScript {
        delay,
        setup,
        loop_body,
        max_loops,
    }
}

// ---------------------------------------------------------------------------
// Linux
// ---------------------------------------------------------------------------

/// Linux attack plan: pid lookups plus the script builder.
pub fn linux_script(
    attack: AttackId,
) -> (
    Vec<String>,
    crate::procs::linux_attacker::LinuxScriptBuilder,
) {
    use bas_linux::syscall::{MqAccess, Signal, Syscall};
    use bas_sim::process::Pid;

    fn open(name: &str, access: MqAccess) -> Syscall {
        Syscall::MqOpen {
            name: name.into(),
            access,
            create: None,
        }
    }

    fn nb_send(qd: u32, msg: BasMsg) -> Syscall {
        Syscall::MqSend {
            qd,
            data: msg.to_bytes(),
            priority: 0,
            nonblocking: true,
        }
    }

    let pid_lookups: Vec<String> = match attack {
        AttackId::KillCritical => vec![names::CONTROL.into(), names::ALARM.into()],
        _ => vec![],
    };

    let builder: crate::procs::linux_attacker::LinuxScriptBuilder =
        Box::new(move |resolved: &[Option<Pid>]| {
            let mut setup = Vec::new();
            let mut loop_body = Vec::new();
            let mut max_loops = None;
            match attack {
                AttackId::SpoofSensorData => {
                    setup.push(AttackStep::counted(open(
                        queues::SENSOR_IN,
                        MqAccess::WRITE,
                    )));
                    loop_body.push(AttackStep::counted(nb_send(
                        0,
                        BasMsg::SensorReading {
                            milli_c: FAKE_NORMAL_MILLI_C,
                            seq: 0,
                        },
                    )));
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: SPOOF_PACE,
                    }));
                }
                AttackId::SpoofActuatorCommands => {
                    setup.push(AttackStep::counted(open(
                        queues::HEATER_CMD,
                        MqAccess::WRITE,
                    )));
                    setup.push(AttackStep::counted(open(
                        queues::ALARM_CMD,
                        MqAccess::WRITE,
                    )));
                    loop_body.push(AttackStep::counted(nb_send(
                        0,
                        BasMsg::FanCmd { on: false },
                    )));
                    loop_body.push(AttackStep::counted(nb_send(
                        1,
                        BasMsg::AlarmCmd { on: false },
                    )));
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: SPOOF_PACE,
                    }));
                }
                AttackId::KillCritical => {
                    for target in resolved.iter().flatten() {
                        loop_body.push(AttackStep::counted(Syscall::Kill {
                            pid: *target,
                            signal: Signal::Kill,
                        }));
                    }
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: KILL_PACE,
                    }));
                    max_loops = Some(30);
                }
                AttackId::ForkBomb => {
                    loop_body.push(AttackStep::counted(Syscall::Fork {
                        program: "sleeper".into(),
                    }));
                    max_loops = Some(60);
                }
                AttackId::BruteForceHandles => {
                    for name in queues::ALL {
                        setup.push(AttackStep::counted(open(name, MqAccess::RW)));
                    }
                    max_loops = Some(1);
                }
                AttackId::FloodLegitChannel => {
                    setup.push(AttackStep::counted(open(
                        queues::SETPOINT_IN,
                        MqAccess::WRITE,
                    )));
                    loop_body.push(AttackStep::counted(nb_send(
                        0,
                        BasMsg::SetpointUpdate {
                            milli_c: -1_000_000,
                        },
                    )));
                    max_loops = Some(1_000);
                }
                AttackId::DirectDeviceWrite => {
                    loop_body.push(AttackStep::counted(Syscall::DevWrite {
                        dev: bas_sim::device::DeviceId::FAN,
                        value: 0,
                    }));
                    loop_body.push(AttackStep::counted(Syscall::DevWrite {
                        dev: bas_sim::device::DeviceId::ALARM,
                        value: 0,
                    }));
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: SPOOF_PACE,
                    }));
                }
                AttackId::SetpointTamper => {
                    // Opening one's own channels is not attack evidence;
                    // the controller's ack is.
                    setup.push(AttackStep::pacing(open(
                        queues::SETPOINT_IN,
                        MqAccess::WRITE,
                    )));
                    setup.push(AttackStep::pacing(open(queues::WEB_REPLY, MqAccess::READ)));
                    loop_body.push(AttackStep::pacing(nb_send(
                        0,
                        BasMsg::SetpointUpdate {
                            milli_c: TAMPER_SETPOINT_MILLI_C,
                        },
                    )));
                    // The evidence is the controller's ack.
                    loop_body.push(AttackStep::counted(Syscall::MqReceive {
                        qd: 1,
                        nonblocking: false,
                    }));
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: TAMPER_PACE,
                    }));
                    max_loops = Some(60);
                }
                AttackId::ReplaySetpoint => {
                    setup.push(AttackStep::pacing(open(
                        queues::SETPOINT_IN,
                        MqAccess::WRITE,
                    )));
                    setup.push(AttackStep::pacing(open(queues::WEB_REPLY, MqAccess::READ)));
                    loop_body.push(AttackStep::pacing(nb_send(
                        0,
                        BasMsg::SetpointUpdate {
                            milli_c: REPLAYED_SETPOINT_MILLI_C,
                        },
                    )));
                    loop_body.push(AttackStep::counted(Syscall::MqReceive {
                        qd: 1,
                        nonblocking: false,
                    }));
                    loop_body.push(AttackStep::pacing(Syscall::Sleep {
                        duration: TAMPER_PACE,
                    }));
                    max_loops = Some(60);
                }
            }
            AttackScript {
                delay: SimDuration::ZERO,
                setup,
                loop_body,
                max_loops,
            }
        });

    (pid_lookups, builder)
}
