//! # bas-attack — attack simulation framework (§IV-D)
//!
//! Reproduces the paper's two attacker models against all three
//! platforms:
//!
//! > "In the first simulation, we assume the web interface process can
//! > execute arbitrary code, and have enough knowledge about other control
//! > processes. In the second simulation, we also assume the web interface
//! > process has root privilege gained through a privilege escalation
//! > exploit or through miss-configuration."
//!
//! The compromise is modeled by *replacing the web-interface program* with
//! attacker-chosen code that runs in exactly the web interface's position:
//! same `ac_id` on MINIX, same single capability on seL4, same account on
//! Linux. Attacks then proceed through each platform's real (simulated)
//! syscall interface; nothing is assumed about their success — outcomes
//! are judged from kernel replies, trace evidence, and the physical
//! world's safety oracle.
//!
//! - [`model`] — attacker models, attack identifiers, outcome types,
//! - [`evidence`] — per-syscall evidence collection and reply
//!   classification,
//! - [`procs`] — the attacker process implementations per platform,
//! - [`library`] — the attack catalogue (spoofing, kills, fork bombs,
//!   brute force, floods, device access, setpoint tampering),
//! - [`harness`] — warmup/attack/cooldown runner producing
//!   [`model::AttackOutcome`]s,
//! - [`expectations`] — the paper's predicted outcome for every cell of
//!   the attack matrix, which `EXPERIMENTS.md` compares against measured
//!   results.

pub mod evidence;
pub mod expectations;
pub mod harness;
pub mod library;
pub mod model;
pub mod procs;

pub use evidence::{AttackEvidence, EvidenceLog};
pub use expectations::paper_expectation;
pub use harness::{run_attack, AttackRunConfig};
pub use model::{AttackId, AttackOutcome, AttackerModel, MechanismOutcome, PhysicalSummary};
