//! The paper's predicted outcome for every attack-matrix cell.
//!
//! §IV-D in one sentence: "the microkernel based approach can stop attacks
//! that can easily be successful on a monolithic kernel (Linux) based
//! system." This module encodes the per-cell predictions the experiments
//! compare against; `EXPERIMENTS.md` records paper-vs-measured.

use bas_core::scenario::Platform;
use serde::{Deserialize, Serialize};

use crate::model::{AttackId, AttackerModel};

/// A predicted outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expectation {
    /// The attack mechanism succeeds and the physical process (or a
    /// critical process) is compromised.
    Compromised,
    /// The attack mechanism succeeds but only exhausts resources; the
    /// running control loop keeps its safety property (fork bombs).
    ResourceExhaustionOnly,
    /// The attack is stopped by the platform's access control (or by
    /// application validation) with no physical impact.
    Stopped,
}

/// The paper's (extrapolated) prediction for one cell.
///
/// Cells the paper does not test directly are extrapolated from its
/// mechanism analysis and flagged in `EXPERIMENTS.md`:
///
/// - Linux A1 kill: the paper demonstrates kill under A2, but with all
///   five processes under one account the same-uid signal rule already
///   allows it — predicted compromised.
/// - Direct device access: not in the paper; `/dev` DAC falls with the
///   shared account or root, device ownership on the microkernels does
///   not.
/// - Flood/tamper via the legitimate channel: junk is *delivered* where
///   the channel is open (Linux queues, the MINIX setpoint channel) but
///   bounded by validation; on seL4 the `seL4RPCCall` connector plus
///   label-coded validation rejects it at the RPC layer. No physical
///   impact anywhere.
pub fn paper_expectation(
    platform: Platform,
    _attacker: AttackerModel,
    attack: AttackId,
) -> Expectation {
    use AttackId::*;
    use Expectation::*;
    match platform {
        Platform::Linux => match attack {
            SpoofSensorData | SpoofActuatorCommands | KillCritical | DirectDeviceWrite => {
                Compromised
            }
            ForkBomb => ResourceExhaustionOnly,
            // With the shared account, every queue handle is reachable.
            BruteForceHandles => ResourceExhaustionOnly,
            // The shared-account queues accept the junk (delivery through
            // one's own channel), but validation bounds the impact.
            FloodLegitChannel => ResourceExhaustionOnly,
            SetpointTamper => Stopped,
            ReplaySetpoint => Compromised,
        },
        Platform::Minix => match attack {
            ForkBomb => ResourceExhaustionOnly, // "This is problematic; although Linux is in the same situation."
            // The ACM permits the setpoint channel, so non-blocking junk
            // is *delivered* — and discarded by validation.
            FloodLegitChannel => ResourceExhaustionOnly,
            // Replaying a captured in-range admin action through the
            // compromised admin channel is indistinguishable from a real
            // one — kernel IPC policy cannot help; application-layer
            // authentication/freshness would be required. The paper's
            // claim is scoped to *unauthorized channels*, and this row
            // marks that boundary.
            ReplaySetpoint => Compromised,
            SpoofSensorData
            | SpoofActuatorCommands
            | KillCritical
            | BruteForceHandles
            | DirectDeviceWrite
            | SetpointTamper => Stopped,
        },
        Platform::Sel4 => match attack {
            ReplaySetpoint => Compromised,
            _ => Stopped,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_falls_microkernels_stand() {
        for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
            assert_eq!(
                paper_expectation(Platform::Linux, attacker, AttackId::SpoofSensorData),
                Expectation::Compromised
            );
            assert_eq!(
                paper_expectation(Platform::Minix, attacker, AttackId::SpoofSensorData),
                Expectation::Stopped
            );
            assert_eq!(
                paper_expectation(Platform::Sel4, attacker, AttackId::SpoofSensorData),
                Expectation::Stopped
            );
        }
    }

    #[test]
    fn fork_bomb_exhausts_but_does_not_violate_safety() {
        assert_eq!(
            paper_expectation(
                Platform::Minix,
                AttackerModel::ArbitraryCode,
                AttackId::ForkBomb
            ),
            Expectation::ResourceExhaustionOnly
        );
        assert_eq!(
            paper_expectation(
                Platform::Sel4,
                AttackerModel::ArbitraryCode,
                AttackId::ForkBomb
            ),
            Expectation::Stopped,
            "no thread-creation authority on seL4"
        );
    }

    #[test]
    fn every_cell_has_a_prediction() {
        for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
            for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
                for attack in AttackId::ALL {
                    let _ = paper_expectation(platform, attacker, attack);
                }
            }
        }
    }
}
