//! Evidence collection: classifying kernel replies to attack syscalls.
//!
//! The harness never trusts the attacker's own claims; the attacker
//! process records the raw kernel replies, and this module classifies
//! them into successes (the kernel did what the attacker asked), denials
//! (an access-control mechanism refused), and neutral errors.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

/// Counters accumulated by an attacker process.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackEvidence {
    /// Counted attack operations issued.
    pub attempts: u64,
    /// Operations the kernel performed as asked.
    pub successes: u64,
    /// Operations refused by an access-control mechanism (ACM,
    /// capabilities, DAC, PM policy, application validation).
    pub denials: u64,
    /// Other failures (dead peers, not-ready, malformed).
    pub errors: u64,
    /// Handles/capabilities discovered during enumeration attacks.
    pub handles_found: u64,
    /// Free-form notes from the attacker.
    pub notes: Vec<String>,
}

/// Shared evidence handle between the harness and the attacker process.
pub type EvidenceLog = Rc<RefCell<AttackEvidence>>;

/// Creates an empty evidence log.
pub fn new_evidence() -> EvidenceLog {
    Rc::new(RefCell::new(AttackEvidence::default()))
}

/// How a single classified reply counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// The operation worked.
    Success,
    /// Access control refused it.
    Denial,
    /// Neutral failure.
    Error,
    /// Not evidence (pacing syscalls, lookups).
    Ignore,
}

impl AttackEvidence {
    /// Applies one classified reply.
    pub fn record(&mut self, class: Class) {
        match class {
            Class::Success => {
                self.attempts += 1;
                self.successes += 1;
            }
            Class::Denial => {
                self.attempts += 1;
                self.denials += 1;
            }
            Class::Error => {
                self.attempts += 1;
                self.errors += 1;
            }
            Class::Ignore => {}
        }
    }
}

/// Classifies a MINIX reply to a *counted* attack syscall.
pub fn classify_minix(reply: &bas_minix::syscall::Reply) -> Class {
    use bas_minix::error::MinixError;
    use bas_minix::pm;
    use bas_minix::syscall::Reply;
    match reply {
        Reply::Ok
        | Reply::DevValue(_)
        | Reply::Uptime(_)
        | Reply::Ident { .. }
        | Reply::Buf(_)
        | Reply::Granted(_)
        | Reply::Bytes(_) => Class::Success,
        Reply::Resolved(_) => Class::Ignore,
        Reply::Msg(m) => {
            if m.source == pm::PM_ENDPOINT {
                // PM reply: PM_ERR payloads are policy denials or errors.
                if m.mtype == pm::PM_ERR {
                    match pm::decode_err(&m.payload) {
                        Some(MinixError::PermissionDenied)
                        | Some(MinixError::CallDenied)
                        | Some(MinixError::QuotaExceeded) => Class::Denial,
                        _ => Class::Error,
                    }
                } else {
                    Class::Success
                }
            } else if m.mtype == 0 {
                // Application ack: nonzero code = validation rejected it.
                if m.payload.read_u32(0) == 0 && m.payload.read_u32(4) == 0 {
                    Class::Success
                } else {
                    Class::Denial
                }
            } else {
                Class::Success
            }
        }
        Reply::Err(e) => match e {
            MinixError::CallDenied
            | MinixError::PermissionDenied
            | MinixError::DeviceAccessDenied
            | MinixError::QuotaExceeded => Class::Denial,
            _ => Class::Error,
        },
    }
}

/// Classifies an seL4 reply to a counted attack syscall.
pub fn classify_sel4(reply: &bas_sel4::syscall::Reply) -> Class {
    use bas_sel4::error::Sel4Error;
    use bas_sel4::syscall::Reply;
    match reply {
        Reply::Ok | Reply::Slot(_) | Reply::DevValue(_) | Reply::Time(_) => Class::Success,
        Reply::Identified(_) => Class::Success, // a cap was found in the probed slot
        Reply::Msg(m) => {
            // RPC replies: servers answer label 0 for accepted requests,
            // nonzero for rejected ones (badge/validation failures).
            if m.label == 0 {
                Class::Success
            } else {
                Class::Denial
            }
        }
        Reply::Err(e) => match e {
            Sel4Error::InvalidCapability
            | Sel4Error::InsufficientRights
            | Sel4Error::RightsViolation => Class::Denial,
            _ => Class::Error,
        },
    }
}

/// Classifies a Linux reply to a counted attack syscall.
pub fn classify_linux(reply: &bas_linux::syscall::Reply) -> Class {
    use bas_linux::error::LinuxError;
    use bas_linux::syscall::Reply;
    match reply {
        Reply::Data { data, .. } => {
            // Application-level acks ride inside the bytes; a nonzero ack
            // code means validation rejected the request.
            match bas_core::proto::BasMsg::from_bytes(data) {
                Ok(bas_core::proto::BasMsg::Ack { code }) if code != 0 => Class::Denial,
                _ => Class::Success,
            }
        }
        Reply::Ok
        | Reply::Qd(_)
        | Reply::Pid(_)
        | Reply::Uid(_)
        | Reply::Time(_)
        | Reply::DevValue(_) => Class::Success,
        Reply::Err(e) => match e {
            LinuxError::AccessDenied | LinuxError::NotPermitted => Class::Denial,
            _ => Class::Error,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_counters() {
        let mut e = AttackEvidence::default();
        e.record(Class::Success);
        e.record(Class::Denial);
        e.record(Class::Denial);
        e.record(Class::Error);
        e.record(Class::Ignore);
        assert_eq!(e.attempts, 4);
        assert_eq!(e.successes, 1);
        assert_eq!(e.denials, 2);
        assert_eq!(e.errors, 1);
    }

    #[test]
    fn minix_classification() {
        use bas_minix::error::MinixError;
        use bas_minix::syscall::Reply;
        assert_eq!(classify_minix(&Reply::Ok), Class::Success);
        assert_eq!(
            classify_minix(&Reply::Err(MinixError::CallDenied)),
            Class::Denial
        );
        assert_eq!(
            classify_minix(&Reply::Err(MinixError::NotReady)),
            Class::Error
        );
        assert_eq!(
            classify_minix(&Reply::Err(MinixError::DeadSourceOrDestination)),
            Class::Error
        );
    }

    #[test]
    fn minix_pm_error_payload_is_denial() {
        use bas_minix::message::Message;
        use bas_minix::pm;
        use bas_minix::syscall::Reply;
        let denied = Message::new(
            pm::PM_ENDPOINT,
            pm::PM_ERR,
            pm::encode_err(bas_minix::error::MinixError::PermissionDenied),
        );
        assert_eq!(classify_minix(&Reply::Msg(denied)), Class::Denial);
        let ok = Message::new(
            pm::PM_ENDPOINT,
            pm::PM_OK,
            bas_minix::message::Payload::zeroed(),
        );
        assert_eq!(classify_minix(&Reply::Msg(ok)), Class::Success);
    }

    #[test]
    fn minix_app_ack_codes() {
        use bas_core::proto::BasMsg;
        use bas_minix::message::Message;
        use bas_minix::syscall::Reply;
        let src = bas_minix::endpoint::Endpoint::new(2, 0);
        let (t, p) = BasMsg::Ack { code: 0 }.to_minix();
        assert_eq!(
            classify_minix(&Reply::Msg(Message::new(src, t, p))),
            Class::Success
        );
        let (t, p) = BasMsg::Ack { code: 1 }.to_minix();
        assert_eq!(
            classify_minix(&Reply::Msg(Message::new(src, t, p))),
            Class::Denial
        );
    }

    #[test]
    fn sel4_classification() {
        use bas_sel4::error::Sel4Error;
        use bas_sel4::message::DeliveredMessage;
        use bas_sel4::syscall::Reply;
        assert_eq!(
            classify_sel4(&Reply::Err(Sel4Error::InvalidCapability)),
            Class::Denial
        );
        assert_eq!(
            classify_sel4(&Reply::Err(Sel4Error::NotReady)),
            Class::Error
        );
        let accepted = DeliveredMessage {
            badge: 0,
            label: 0,
            words: vec![],
            received_caps: vec![],
            reply_expected: false,
        };
        assert_eq!(classify_sel4(&Reply::Msg(accepted.clone())), Class::Success);
        let rejected = DeliveredMessage {
            label: 1,
            ..accepted
        };
        assert_eq!(classify_sel4(&Reply::Msg(rejected)), Class::Denial);
    }

    #[test]
    fn linux_classification() {
        use bas_linux::error::LinuxError;
        use bas_linux::syscall::Reply;
        assert_eq!(classify_linux(&Reply::Ok), Class::Success);
        assert_eq!(
            classify_linux(&Reply::Err(LinuxError::AccessDenied)),
            Class::Denial
        );
        assert_eq!(
            classify_linux(&Reply::Err(LinuxError::NotPermitted)),
            Class::Denial
        );
        assert_eq!(
            classify_linux(&Reply::Err(LinuxError::WouldBlock)),
            Class::Error
        );
    }
}
