//! The paper's temperature-control scenario, bound into the Policy IR.
//!
//! This module owns the scenario-specific glue: lowering each platform's
//! policy artifact with the right binding (identities, endpoint message
//! types, uid schemes), attaching the shared application contracts, and
//! synthesizing the AADL-minimal [`Justification`] the linter diffs
//! against. The cross-validation harness (`exp_policy_audit`, the
//! `static_vs_dynamic` tests) builds every model through here.

use std::collections::{BTreeMap, BTreeSet};

use bas_aadl::backends::linux_plan;
use bas_acm::AccessControlMatrix;
use bas_attack::{AttackId, AttackerModel};
use bas_capdl::spec::{CapDecl, CapTargetSpec};
use bas_core::platform::linux::{uids, UidScheme};
use bas_core::platform::sel4::ExtraCap;
use bas_core::policy::{
    queues, scenario_acm, scenario_assembly, scenario_device_owners, scenario_quotas, SCENARIO_AADL,
};
use bas_core::proto::{
    names, AC_ALARM, AC_CONTROL, AC_HEATER, AC_SCENARIO, AC_SENSOR, AC_WEB, MT_ACK,
    MT_SENSOR_READING, MT_SETPOINT,
};
use bas_core::scenario::Platform;
use bas_linux::cred::Mode;
use bas_minix::pm;
use bas_sim::device::DeviceId;

use crate::ir::{AppContracts, PolicyModel, Roles, Trust};
use crate::lint::Justification;
use crate::lower::acm::AcmBinding;
use crate::lower::capdl::CapdlBinding;
use crate::lower::linux::{LinuxDeployment, QueueSpec};
use crate::taint::{predict, StaticVerdict};

/// AADL instance name → canonical process name.
const INSTANCE_TO_NAME: [(&str, &str); 5] = [
    ("tempSensProc", names::SENSOR),
    ("tempProc", names::CONTROL),
    ("heaterActProc", names::HEATER),
    ("alarmProc", names::ALARM),
    ("webInterface", names::WEB),
];

fn canon(instance: &str) -> String {
    INSTANCE_TO_NAME
        .iter()
        .find(|(i, _)| *i == instance)
        .map(|(_, n)| (*n).to_string())
        .unwrap_or_else(|| instance.to_string())
}

/// The application contracts shared by all three platforms (the process
/// code is identical; only the enforcement underneath differs).
pub fn contracts() -> AppContracts {
    let mut c = AppContracts::default();
    c.authenticated.insert(
        (names::CONTROL.to_string(), MT_SENSOR_READING),
        [names::SENSOR.to_string()].into(),
    );
    c.validated
        .insert((names::CONTROL.to_string(), MT_SETPOINT));
    c.actuation_inputs
        .insert((names::CONTROL.to_string(), MT_SENSOR_READING));
    c
}

/// The scenario role binding.
pub fn roles() -> Roles {
    Roles {
        controller: names::CONTROL.to_string(),
        sensor: names::SENSOR.to_string(),
        heater: names::HEATER.to_string(),
        alarm: names::ALARM.to_string(),
        web: names::WEB.to_string(),
    }
}

fn finish(mut model: PolicyModel, attacker: AttackerModel, web_uid: Option<u32>) -> PolicyModel {
    model.contracts = contracts();
    model.roles = roles();
    let uid = match attacker {
        AttackerModel::ArbitraryCode => web_uid,
        AttackerModel::Root if model.traits.uid_root_bypass => Some(0),
        AttackerModel::Root => web_uid,
    };
    model.add_subject(names::WEB, Trust::Untrusted, uid);
    model
}

/// MINIX 3 + ACM. `acm` overrides the scenario matrix (the E10 ablation);
/// `web_fork_limit` is the fork-quota knob.
pub fn minix_model(
    attacker: AttackerModel,
    acm: Option<&AccessControlMatrix>,
    web_fork_limit: Option<u64>,
) -> PolicyModel {
    let mut subjects = BTreeMap::new();
    subjects.insert(AC_SENSOR, names::SENSOR.to_string());
    subjects.insert(AC_CONTROL, names::CONTROL.to_string());
    subjects.insert(AC_HEATER, names::HEATER.to_string());
    subjects.insert(AC_ALARM, names::ALARM.to_string());
    subjects.insert(AC_WEB, names::WEB.to_string());
    subjects.insert(AC_SCENARIO, names::SCENARIO.to_string());
    let binding = AcmBinding {
        subjects,
        pm_ac: Some(pm::PM_AC_ID),
        device_owners: scenario_device_owners(),
    };
    let default_acm;
    let acm = match acm {
        Some(m) => m,
        None => {
            default_acm = scenario_acm();
            &default_acm
        }
    };
    let model = crate::lower::acm::lower(
        acm,
        &binding,
        &scenario_quotas(web_fork_limit),
        &bas_acm::DelegationLog::default(),
    );
    // A2's root uid exists but buys nothing: the ACM has no uid bypass.
    finish(model, attacker, None)
}

/// seL4/CAmkES, via the compiled CapDL spec. `extra_caps` injects the
/// E11 capability-misconfiguration ablation.
pub fn sel4_model(attacker: AttackerModel, extra_caps: &[ExtraCap]) -> PolicyModel {
    let (mut spec, _glue) =
        bas_camkes::codegen::compile(&scenario_assembly()).expect("scenario assembly compiles");

    // Snapshot the clean per-thread cap counts before injecting extras:
    // "legitimate" means what CAmkES itself distributed.
    let clean_counts: BTreeMap<String, usize> = spec
        .threads
        .iter()
        .map(|t| (t.name.clone(), spec.caps_of(&t.name).count()))
        .collect();

    for extra in extra_caps {
        let (server, iface) = extra.endpoint_of;
        let slot = spec
            .caps_of(extra.holder)
            .map(|c| c.slot)
            .max()
            .map_or(0, |s| s + 1);
        spec.caps.push(CapDecl {
            holder: extra.holder.to_string(),
            slot,
            target: CapTargetSpec::Object(format!("ep_{server}_{iface}")),
            rights: extra.rights,
            badge: extra.badge,
        });
    }

    let mut binding = CapdlBinding::default();
    binding.endpoint_types.insert(
        format!("ep_{}_{}", names::CONTROL, "ctrl"),
        vec![
            MT_SENSOR_READING,
            MT_SETPOINT,
            bas_core::proto::MT_STATUS_QUERY,
        ],
    );
    binding.endpoint_types.insert(
        format!("ep_{}_{}", names::HEATER, "cmd"),
        vec![bas_core::proto::MT_FAN_CMD],
    );
    binding.endpoint_types.insert(
        format!("ep_{}_{}", names::ALARM, "cmd"),
        vec![bas_core::proto::MT_ALARM_CMD],
    );

    let mut model = crate::lower::capdl::lower(&spec, &binding);
    model.legitimate_handles = clean_counts;
    // seL4 has no users: A2 is identical to A1 by construction.
    finish(model, attacker, None)
}

/// Linux mq baseline, for either uid scheme. Under A2 the web interface
/// runs as root ("gained through a privilege escalation exploit").
pub fn linux_model(attacker: AttackerModel, scheme: UidScheme) -> PolicyModel {
    let aadl = bas_aadl::parse(SCENARIO_AADL).expect("scenario AADL parses");
    let plan = linux_plan::compile(&aadl).expect("scenario plan compiles");

    let web_uid = match attacker {
        AttackerModel::ArbitraryCode => scheme.uid_of(names::WEB),
        AttackerModel::Root => 0,
    };
    let mut subject_uids = BTreeMap::new();
    for name in [names::SENSOR, names::CONTROL, names::HEATER, names::ALARM] {
        subject_uids.insert(name.to_string(), scheme.uid_of(name));
    }
    subject_uids.insert(names::WEB.to_string(), web_uid);

    // Message types per queue: the type declared on the out port feeding
    // it (queues are single-purpose in the plan).
    let mut queue_types: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    if let Some(system) = &aadl.system {
        for conn in &system.connections {
            let Some(proc_ty) = aadl.process_of_instance(&conn.from.0) else {
                continue;
            };
            let Some(port) = proc_ty.ports.iter().find(|p| p.name == conn.from.1) else {
                continue;
            };
            let q = linux_plan::queue_name(&conn.to.0, &conn.to.1);
            if let Some(t) = port.msg_type {
                queue_types.entry(q).or_default().push(t);
            }
        }
    }

    let acl_for = |reader: &str, writer: &str| -> (u32, Option<u32>, Mode) {
        match scheme {
            UidScheme::SharedAccount => (uids::SHARED, None, Mode::new(0o600)),
            UidScheme::PerProcessHardened => (
                scheme.uid_of(reader),
                Some(scheme.uid_of(writer)),
                Mode::new(0o620),
            ),
        }
    };

    let mut queue_specs = Vec::new();
    for q in &plan.queues {
        let reader = canon(&q.reader);
        let writers: Vec<String> = q.writers.iter().map(|w| canon(w)).collect();
        let (owner, group, mode) = acl_for(&reader, writers.first().map_or("", |w| w.as_str()));
        queue_specs.push(QueueSpec {
            name: q.name.clone(),
            owner,
            group,
            mode,
            reader,
            writers,
            msg_types: queue_types.get(&q.name).cloned().unwrap_or_default(),
        });
    }
    // The reply queue (control → web acks/status) is created by the
    // loader outside the AADL plan, like `build_linux` does.
    let (owner, group, mode) = acl_for(names::WEB, names::CONTROL);
    queue_specs.push(QueueSpec {
        name: queues::WEB_REPLY.to_string(),
        owner,
        group,
        mode,
        reader: names::WEB.to_string(),
        writers: vec![names::CONTROL.to_string()],
        msg_types: vec![MT_ACK],
    });

    let mut devices = BTreeMap::new();
    devices.insert(
        DeviceId::TEMP_SENSOR,
        (scheme.uid_of(names::SENSOR), Mode::new(0o600)),
    );
    devices.insert(
        DeviceId::FAN,
        (scheme.uid_of(names::HEATER), Mode::new(0o600)),
    );
    devices.insert(
        DeviceId::ALARM,
        (scheme.uid_of(names::ALARM), Mode::new(0o600)),
    );

    let dep = LinuxDeployment {
        subject_uids,
        queues: queue_specs,
        devices,
    };
    let model = crate::lower::linux::lower(&dep);
    finish(model, attacker, Some(web_uid))
}

/// The scenario model for any `(platform, attacker)` cell of the matrix.
pub fn model_for(platform: Platform, attacker: AttackerModel, scheme: UidScheme) -> PolicyModel {
    match platform {
        Platform::Minix => minix_model(attacker, None, None),
        Platform::Sel4 => sel4_model(attacker, &[]),
        Platform::Linux => linux_model(attacker, scheme),
    }
}

/// The AADL-minimal justification the linter diffs policies against.
pub fn scenario_justification() -> Justification {
    let aadl = bas_aadl::parse(SCENARIO_AADL).expect("scenario AADL parses");
    let mut j = Justification::default();

    for (_, name) in INSTANCE_TO_NAME {
        j.subjects.insert(name.to_string());
    }
    j.subjects.insert(names::SCENARIO.to_string());

    if let Some(system) = &aadl.system {
        for conn in &system.connections {
            let from = canon(&conn.from.0);
            let to = canon(&conn.to.0);
            let msg_type = aadl
                .process_of_instance(&conn.from.0)
                .and_then(|p| p.ports.iter().find(|port| port.name == conn.from.1))
                .and_then(|port| port.msg_type);
            if let Some(t) = msg_type {
                j.app_edges.insert((from.clone(), to.clone(), t));
            }
            // Acknowledgments flow both ways on every connected pair.
            j.app_edges.insert((from.clone(), to.clone(), MT_ACK));
            j.app_edges.insert((to, from, MT_ACK));
        }
    }

    j.sys_ops = [
        (names::SCENARIO.to_string(), crate::ir::Operation::Fork),
        (names::SCENARIO.to_string(), crate::ir::Operation::Kill),
        (names::SCENARIO.to_string(), crate::ir::Operation::Exit),
    ]
    .into();

    for (dev, ac) in scenario_device_owners() {
        let name = match ac {
            x if x == AC_SENSOR => names::SENSOR,
            x if x == AC_HEATER => names::HEATER,
            x if x == AC_ALARM => names::ALARM,
            _ => continue,
        };
        j.device_owners.insert(dev, name.to_string());
    }

    let plan = linux_plan::compile(&aadl).expect("scenario plan compiles");
    for q in &plan.queues {
        let mut members: BTreeSet<String> = q.writers.iter().map(|w| canon(w)).collect();
        members.insert(canon(&q.reader));
        j.queue_membership.insert(q.name.clone(), members);
    }
    j.queue_membership.insert(
        queues::WEB_REPLY.to_string(),
        [names::WEB.to_string(), names::CONTROL.to_string()].into(),
    );

    j
}

/// One predicted cell of the attack matrix.
#[derive(Debug, Clone)]
pub struct PredictedCell {
    /// Platform of the cell.
    pub platform: Platform,
    /// Attack mounted.
    pub attack: AttackId,
    /// Attacker model.
    pub attacker: AttackerModel,
    /// The static verdict.
    pub verdict: StaticVerdict,
}

/// The full predicted matrix, in deterministic platform-major order
/// (platform, then attack, then attacker) — the same order the dynamic
/// `exp_attack_matrix` experiment prints.
pub fn predicted_matrix(scheme: UidScheme) -> Vec<PredictedCell> {
    let mut cells = Vec::new();
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        for attack in AttackId::ALL {
            for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
                let model = model_for(platform, attacker, scheme);
                cells.push(PredictedCell {
                    platform,
                    attack,
                    attacker,
                    verdict: predict(&model, attack),
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::expectation;
    use bas_attack::expectations::Expectation;

    #[test]
    fn minix_model_has_scenario_shape() {
        let m = minix_model(AttackerModel::ArbitraryCode, None, None);
        assert_eq!(m.subjects.len(), 6);
        assert!(m
            .delivery_channel(names::WEB, names::CONTROL, MT_SETPOINT)
            .is_some());
        assert!(m
            .delivery_channel(names::WEB, names::CONTROL, MT_SENSOR_READING)
            .is_none());
        assert_eq!(m.untrusted_subjects().collect::<Vec<_>>(), vec![names::WEB]);
    }

    #[test]
    fn sel4_model_badges_and_handles() {
        let m = sel4_model(AttackerModel::ArbitraryCode, &[]);
        let ch = m
            .delivery_channel(names::WEB, names::CONTROL, MT_SETPOINT)
            .expect("web setpoint rpc");
        assert_eq!(ch.badge, Some(2), "web badge fixed by connection order");
        assert_eq!(
            m.enumerable_handles[names::WEB],
            m.legitimate_handles[names::WEB]
        );
    }

    #[test]
    fn linux_schemes_differ_where_the_paper_says() {
        let shared = linux_model(AttackerModel::ArbitraryCode, UidScheme::SharedAccount);
        let hardened = linux_model(AttackerModel::ArbitraryCode, UidScheme::PerProcessHardened);
        assert!(shared
            .delivery_channel(names::WEB, names::CONTROL, MT_SENSOR_READING)
            .is_some());
        assert!(hardened
            .delivery_channel(names::WEB, names::CONTROL, MT_SENSOR_READING)
            .is_none());
        // The legitimate setpoint path survives hardening.
        assert!(hardened
            .delivery_channel(names::WEB, names::CONTROL, MT_SETPOINT)
            .is_some());
    }

    #[test]
    fn predicted_matrix_matches_paper_table() {
        for cell in predicted_matrix(UidScheme::SharedAccount) {
            let want = bas_attack::paper_expectation(cell.platform, cell.attacker, cell.attack);
            let got = expectation(&cell.verdict);
            assert_eq!(
                got, want,
                "{} / {} / {}: {}",
                cell.platform, cell.attack, cell.attacker, cell.verdict.rationale
            );
        }
    }

    #[test]
    fn hardened_linux_stops_most_of_a1() {
        let m = linux_model(AttackerModel::ArbitraryCode, UidScheme::PerProcessHardened);
        let stopped = [
            AttackId::SpoofSensorData,
            AttackId::SpoofActuatorCommands,
            AttackId::KillCritical,
            AttackId::BruteForceHandles,
            AttackId::DirectDeviceWrite,
            AttackId::SetpointTamper,
        ];
        for attack in stopped {
            assert_eq!(
                expectation(&predict(&m, attack)),
                Expectation::Stopped,
                "{attack}"
            );
        }
        assert_eq!(
            expectation(&predict(&m, AttackId::ReplaySetpoint)),
            Expectation::Compromised
        );
        // Root undoes all of it.
        let root = linux_model(AttackerModel::Root, UidScheme::PerProcessHardened);
        assert_eq!(
            expectation(&predict(&root, AttackId::KillCritical)),
            Expectation::Compromised
        );
    }
}
