//! The Policy IR: a platform-neutral channel graph.
//!
//! Every platform's policy artifact — the MINIX ACM, a compiled CapDL
//! spec, the Linux loader's message-queue ACL plan — lowers into one
//! [`PolicyModel`]: a set of *subjects* (processes/threads) and a set of
//! *channels*, each a `(subject, object, operation, message types)` edge
//! annotated with the enforcement mechanism that admits it. Static
//! analyses (attack prediction, linting, least-privilege diffs) then run
//! on the IR without caring which backend produced it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bas_acm::matrix::MsgTypeSet;
use bas_acm::MsgType;
use bas_core::scenario::Platform;
use bas_sim::device::DeviceId;
use serde::{Deserialize, Serialize};

/// Whether a subject is inside or outside the trust boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Trust {
    /// Part of the trusted computing base of the scenario.
    Trusted,
    /// Assumed attacker-controlled (the paper's web interface).
    Untrusted,
}

/// Per-subject facts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubjectInfo {
    /// Trust classification.
    pub trust: Trust,
    /// The uid the subject runs under, where the platform has one.
    pub uid: Option<u32>,
}

/// What a channel points at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectId {
    /// Another subject (message delivery to a process/thread).
    Process(String),
    /// A named POSIX message queue.
    Queue(String),
    /// A hardware device (register file / `/dev` node).
    Device(DeviceId),
    /// The process-management authority (MINIX PM server, or the
    /// fork/kill surface of a monolithic kernel).
    ProcessManager,
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectId::Process(p) => write!(f, "proc:{p}"),
            ObjectId::Queue(q) => write!(f, "mq:{q}"),
            ObjectId::Device(d) => write!(f, "dev:{d}"),
            ObjectId::ProcessManager => write!(f, "pm"),
        }
    }
}

/// The operation a channel authorizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Send a message toward the object.
    Send,
    /// Receive/read from the object.
    Receive,
    /// Write a device register.
    DevWrite,
    /// Read a device register.
    DevRead,
    /// Terminate the target.
    Kill,
    /// Create a new process/thread.
    Fork,
    /// Query one's own pid.
    GetPid,
    /// Exit voluntarily.
    Exit,
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Operation::Send => "send",
            Operation::Receive => "recv",
            Operation::DevWrite => "dev-write",
            Operation::DevRead => "dev-read",
            Operation::Kill => "kill",
            Operation::Fork => "fork",
            Operation::GetPid => "getpid",
            Operation::Exit => "exit",
        };
        f.write_str(s)
    }
}

/// The enforcement mechanism standing between a send and its delivery —
/// this determines *where* an attack's first observable verdict lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChannelKind {
    /// MINIX-style asynchronous send: the kernel consults the ACM at the
    /// send syscall, so the mechanism verdict is the kernel's.
    AsyncSend,
    /// seL4-style `Call` through a badged endpoint: the kernel only
    /// checks capability possession; acceptance is judged *in-band* by
    /// the server's reply label.
    RpcCall,
    /// POSIX mq write: DAC is checked at `mq_open`, the payload carries
    /// no sender identity.
    QueueWrite,
    /// POSIX mq read.
    QueueRead,
    /// Direct device register access.
    DeviceAccess,
    /// Process-management operation (fork/kill/getpid/exit).
    SysOp,
}

/// One edge of the channel graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    /// The acting subject.
    pub subject: String,
    /// The object acted on.
    pub object: ObjectId,
    /// The authorized operation.
    pub op: Operation,
    /// Message types permitted on the channel (for message channels).
    pub msg_types: MsgTypeSet,
    /// The enforcement mechanism admitting the channel.
    pub kind: ChannelKind,
    /// seL4 badge presented to the receiver, if any.
    pub badge: Option<u64>,
}

impl Channel {
    /// Deterministic sort key (severity-stable output ordering).
    pub fn sort_key(&self) -> (String, ObjectId, Operation, u64) {
        (
            self.subject.clone(),
            self.object.clone(),
            self.op,
            type_bits(self.msg_types),
        )
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} --{}[{}]--> {}",
            self.subject, self.op, self.msg_types, self.object
        )
    }
}

/// The raw bitmap of a type set (wildcard = all 64 bits).
pub fn type_bits(set: MsgTypeSet) -> u64 {
    match set {
        MsgTypeSet::All => u64::MAX,
        MsgTypeSet::Bitmap(bits) => bits,
    }
}

/// Platform-level mechanism facts the analyses condition on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformTraits {
    /// Message sources are kernel-stamped (MINIX endpoints, seL4 badges)
    /// — application-level sender authentication is sound.
    pub kernel_stamped_identity: bool,
    /// Message acceptance is judged in-band by the server's RPC reply
    /// (seL4/CAmkES), so junk never "succeeds" at the kernel boundary.
    pub rpc_in_band_validation: bool,
    /// uid 0 bypasses all discretionary checks (Linux DAC).
    pub uid_root_bypass: bool,
    /// Raw IPC handles cannot be forged or guessed by enumeration
    /// (MINIX endpoint generations, seL4 capability unforgeability).
    pub unguessable_handles: bool,
}

/// Application-layer contracts the platforms share (the scenario's
/// process code is the same on all three; only the enforcement differs).
/// These are *trusted facts about application code*, not kernel policy —
/// the analyzer needs them to predict where delivered messages still die.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppContracts {
    /// `(receiver, msg type)` inputs whose sender the receiver
    /// authenticates via kernel-stamped identity, mapped to the set of
    /// senders it accepts. Only effective when
    /// [`PlatformTraits::kernel_stamped_identity`] holds.
    pub authenticated: BTreeMap<(String, u32), BTreeSet<String>>,
    /// `(receiver, msg type)` inputs that are range-validated: junk and
    /// out-of-range values are rejected with an error acknowledgment.
    pub validated: BTreeSet<(String, u32)>,
    /// `(receiver, msg type)` inputs that directly drive actuation
    /// decisions (taint through the receiver reaches the actuators).
    pub actuation_inputs: BTreeSet<(String, u32)>,
}

/// The scenario roles the attack predictor needs to name.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Roles {
    /// The control-loop process.
    pub controller: String,
    /// The sensor driver.
    pub sensor: String,
    /// The heater/fan driver.
    pub heater: String,
    /// The alarm driver.
    pub alarm: String,
    /// The web interface (the compromised position).
    pub web: String,
}

/// The lowered policy of one deployment: the unified channel graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyModel {
    /// Which platform this policy governs.
    pub platform: Platform,
    /// All subjects, with trust and uid annotations.
    pub subjects: BTreeMap<String, SubjectInfo>,
    /// The channel graph, deterministically sorted.
    pub channels: Vec<Channel>,
    /// Mechanism facts of the platform.
    pub traits: PlatformTraits,
    /// Application-layer contracts.
    pub contracts: AppContracts,
    /// Scenario role binding.
    pub roles: Roles,
    /// Per-subject fork quota (absent = unlimited where fork authority
    /// exists at all).
    pub fork_quota: BTreeMap<String, u64>,
    /// How many distinct kernel handles each subject can reach by blind
    /// enumeration (brute-force surface).
    pub enumerable_handles: BTreeMap<String, usize>,
    /// How many of those are legitimately its own.
    pub legitimate_handles: BTreeMap<String, usize>,
    /// Queue metadata: queue name → intended reader.
    pub queue_readers: BTreeMap<String, String>,
    /// The capability derivation forest behind the channel edges (see
    /// [`crate::flow`]).
    pub caps: crate::flow::CapGraph,
}

impl PolicyModel {
    /// Creates an empty model for a platform.
    pub fn new(platform: Platform, traits: PlatformTraits) -> Self {
        PolicyModel {
            platform,
            subjects: BTreeMap::new(),
            channels: Vec::new(),
            traits,
            contracts: AppContracts::default(),
            roles: Roles::default(),
            fork_quota: BTreeMap::new(),
            enumerable_handles: BTreeMap::new(),
            legitimate_handles: BTreeMap::new(),
            queue_readers: BTreeMap::new(),
            caps: crate::flow::CapGraph::default(),
        }
    }

    /// Sorts the channel list into its canonical order. Lowerings call
    /// this last so printed IR and lint output are byte-stable.
    pub fn normalize(&mut self) {
        self.channels.sort_by_key(Channel::sort_key);
        self.channels.dedup();
    }

    /// Registers a subject (idempotent; later trust/uid info wins only
    /// if more specific).
    pub fn add_subject(&mut self, name: &str, trust: Trust, uid: Option<u32>) {
        self.subjects
            .entry(name.to_string())
            .and_modify(|s| {
                if trust == Trust::Untrusted {
                    s.trust = Trust::Untrusted;
                }
                if uid.is_some() {
                    s.uid = uid;
                }
            })
            .or_insert(SubjectInfo { trust, uid });
    }

    /// All untrusted subjects.
    pub fn untrusted_subjects(&self) -> impl Iterator<Item = &str> {
        self.subjects
            .iter()
            .filter(|(_, i)| i.trust == Trust::Untrusted)
            .map(|(n, _)| n.as_str())
    }

    /// The channel (if any) by which `subject` can deliver a message of
    /// type `mtype` into `receiver`'s input handling.
    pub fn delivery_channel(&self, subject: &str, receiver: &str, mtype: u32) -> Option<&Channel> {
        let t = MsgType::new(mtype);
        self.channels.iter().find(|c| {
            c.subject == subject
                && c.msg_types.contains(t)
                && match (&c.kind, &c.object) {
                    (ChannelKind::AsyncSend | ChannelKind::RpcCall, ObjectId::Process(p)) => {
                        p == receiver
                    }
                    (ChannelKind::QueueWrite, ObjectId::Queue(q)) => {
                        self.queue_readers.get(q).map(String::as_str) == Some(receiver)
                    }
                    _ => false,
                }
        })
    }

    /// Whether the *application* at `receiver` accepts a `mtype` message
    /// from `sender` (`in_range` = payload within validated bounds).
    /// Kernel-level delivery is a separate question.
    pub fn app_accepts(&self, sender: &str, receiver: &str, mtype: u32, in_range: bool) -> bool {
        let key = (receiver.to_string(), mtype);
        if self.contracts.validated.contains(&key) && !in_range {
            return false;
        }
        if let Some(accepted) = self.contracts.authenticated.get(&key) {
            if self.traits.kernel_stamped_identity && !accepted.contains(sender) {
                return false;
            }
        }
        true
    }

    /// Whether `subject` holds device access of the given direction.
    pub fn device_channel(&self, subject: &str, dev: DeviceId, write: bool) -> Option<&Channel> {
        let want = if write {
            Operation::DevWrite
        } else {
            Operation::DevRead
        };
        self.channels
            .iter()
            .find(|c| c.subject == subject && c.op == want && c.object == ObjectId::Device(dev))
    }

    /// Whether `subject` can terminate `victim`.
    pub fn can_kill(&self, subject: &str, victim: &str) -> bool {
        self.channels.iter().any(|c| {
            c.subject == subject
                && c.op == Operation::Kill
                && match &c.object {
                    ObjectId::ProcessManager => true,
                    ObjectId::Process(p) => p == victim,
                    _ => false,
                }
        })
    }

    /// Whether `subject` holds process-creation authority.
    pub fn can_fork(&self, subject: &str) -> bool {
        self.channels
            .iter()
            .any(|c| c.subject == subject && c.op == Operation::Fork)
    }

    /// Renders the channel graph as a sorted table (one line per edge).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.channels {
            out.push_str(&format!(
                "{:<16} {:<10} {:<28} {}{}\n",
                c.subject,
                c.op.to_string(),
                c.object.to_string(),
                c.msg_types,
                c.badge.map_or(String::new(), |b| format!(" badge={b}")),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traits() -> PlatformTraits {
        PlatformTraits {
            kernel_stamped_identity: true,
            rpc_in_band_validation: false,
            uid_root_bypass: false,
            unguessable_handles: true,
        }
    }

    fn chan(subject: &str, object: ObjectId, op: Operation, types: &[u32]) -> Channel {
        Channel {
            subject: subject.into(),
            object,
            op,
            msg_types: MsgTypeSet::of(types.iter().map(|&t| MsgType::new(t))),
            kind: ChannelKind::AsyncSend,
            badge: None,
        }
    }

    #[test]
    fn delivery_channel_matches_type_and_target() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.channels.push(chan(
            "web",
            ObjectId::Process("ctrl".into()),
            Operation::Send,
            &[4],
        ));
        m.normalize();
        assert!(m.delivery_channel("web", "ctrl", 4).is_some());
        assert!(m.delivery_channel("web", "ctrl", 1).is_none());
        assert!(m.delivery_channel("web", "heater", 4).is_none());
    }

    #[test]
    fn queue_write_delivery_goes_through_reader() {
        let mut m = PolicyModel::new(Platform::Linux, traits());
        m.channels.push(Channel {
            subject: "web".into(),
            object: ObjectId::Queue("/mq_x".into()),
            op: Operation::Send,
            msg_types: MsgTypeSet::of([MsgType::new(1)]),
            kind: ChannelKind::QueueWrite,
            badge: None,
        });
        m.queue_readers.insert("/mq_x".into(), "ctrl".into());
        assert!(m.delivery_channel("web", "ctrl", 1).is_some());
        assert!(m.delivery_channel("web", "other", 1).is_none());
    }

    #[test]
    fn authentication_only_bites_with_kernel_identity() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.contracts.authenticated.insert(
            ("ctrl".into(), 1),
            std::iter::once("sensor".to_string()).collect(),
        );
        assert!(!m.app_accepts("web", "ctrl", 1, true));
        assert!(m.app_accepts("sensor", "ctrl", 1, true));
        m.traits.kernel_stamped_identity = false;
        assert!(
            m.app_accepts("web", "ctrl", 1, true),
            "no identity, no check"
        );
    }

    #[test]
    fn validation_rejects_out_of_range_only() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.contracts.validated.insert(("ctrl".into(), 4));
        assert!(!m.app_accepts("web", "ctrl", 4, false));
        assert!(m.app_accepts("web", "ctrl", 4, true));
    }

    #[test]
    fn kill_via_pm_or_direct_tcb() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.channels.push(chan(
            "loader",
            ObjectId::ProcessManager,
            Operation::Kill,
            &[3],
        ));
        m.channels.push(chan(
            "web",
            ObjectId::Process("ctrl".into()),
            Operation::Kill,
            &[],
        ));
        assert!(m.can_kill("loader", "anything"));
        assert!(m.can_kill("web", "ctrl"));
        assert!(!m.can_kill("web", "sensor"));
    }

    #[test]
    fn normalize_is_deterministic_and_dedups() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        let a = chan("b", ObjectId::Process("x".into()), Operation::Send, &[1]);
        let b = chan("a", ObjectId::Process("x".into()), Operation::Send, &[1]);
        m.channels = vec![a.clone(), b.clone(), a.clone()];
        m.normalize();
        assert_eq!(m.channels, vec![b, a]);
    }
}
