//! Escalation-path witnesses.
//!
//! A *witness* is the shortest chain by which an untrusted subject
//! reaches a safety-relevant asset: `subject → (capability hops) →
//! asset`. Channel edges (the sound, direct authority the backends
//! grant) and *anomalous* capability edges (derivation breaches the
//! kernel would wrongly honor, and exploitable masquerading handles)
//! both feed the same breadth-first [`super::reach`] search, so every
//! witness path is shortest-hop and byte-stable.
//!
//! The rendered chains are the linter's evidence lines, and the assets
//! map one-to-one onto the model checker's compromise properties — the
//! differential experiment (`exp_cap_flow`, E17) holds the two accountable
//! to each other in both directions.

use std::fmt;

use bas_attack::AttackId;
use bas_core::proto::{MT_ALARM_CMD, MT_FAN_CMD, MT_SETPOINT};
use bas_sim::device::DeviceId;

use super::closure::{closure, Closure};
use super::graph::CapId;
use super::lattice::op;
use super::reach::reach;
use crate::ir::{ObjectId, PolicyModel};
use crate::mc::verdict::props;

/// A safety-relevant sink an escalation chain can end at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Asset {
    /// A critical process can be terminated.
    CriticalKill(String),
    /// An actuator device register can be written.
    DeviceWrite(DeviceId),
    /// A well-formed command can be delivered into an actuator driver.
    ActuatorCommand(String),
    /// An accepted actuation input taints the control loop.
    TaintedActuation {
        /// The accepting receiver.
        receiver: String,
        /// The accepted message type.
        mtype: u32,
    },
    /// An out-of-range setpoint is accepted (tamper).
    TamperAccept(String),
    /// A replayed in-range setpoint is accepted.
    ReplayAccept(String),
    /// A kernel object is reachable through a type-confused handle.
    Masquerade(ObjectId),
}

impl Asset {
    /// The model-checker property bits this asset's exploitation can
    /// set — the forward half of the static/mc differential.
    pub fn property_bits(&self) -> u32 {
        match self {
            Asset::CriticalKill(_) => props::CRITICAL_KILLED,
            // Forcing an actuator register off both is the unauthorized
            // write and (for the alarm) defeats bounded response.
            Asset::DeviceWrite(_) => props::UNAUTH_DEV_WRITE | props::BOUNDED_RESPONSE,
            Asset::ActuatorCommand(_) | Asset::TaintedActuation { .. } => props::BOUNDED_RESPONSE,
            Asset::TamperAccept(_) | Asset::ReplayAccept(_) => props::REF_DIVERGENCE,
            Asset::Masquerade(_) => props::OBJECT_MASQUERADE,
        }
    }
}

impl fmt::Display for Asset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Asset::CriticalKill(p) => write!(f, "proc:{p} (kill)"),
            Asset::DeviceWrite(d) => write!(f, "dev:{d} (direct register write)"),
            Asset::ActuatorCommand(p) => write!(f, "proc:{p} (unmediated actuator command)"),
            Asset::TaintedActuation { receiver, mtype } => write!(
                f,
                "proc:{receiver} (type {mtype}) -> actuators (tainted control input)"
            ),
            Asset::TamperAccept(p) => write!(f, "proc:{p} (out-of-range setpoint accepted)"),
            Asset::ReplayAccept(p) => write!(f, "proc:{p} (replayed setpoint accepted)"),
            Asset::Masquerade(o) => write!(f, "{o} (kernel-object masquerade)"),
        }
    }
}

/// BFS node: subject position, capability in hand, or reached asset.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Hop {
    Subject(String),
    Cap(CapId),
    Goal(Asset),
}

/// One escalation chain from an untrusted subject to an asset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The untrusted starting subject.
    pub subject: String,
    /// The asset reached.
    pub asset: Asset,
    /// Rendered hops, subject first (join with `" -> "` to print).
    pub hops: Vec<String>,
    /// True when the chain crosses an anomalous capability edge
    /// (derivation breach or masquerading handle) rather than a direct
    /// channel.
    pub via_caps: bool,
}

impl Witness {
    /// The chain as one line: `subject -> … -> asset`.
    pub fn render(&self) -> String {
        self.hops.join(" -> ")
    }
}

/// Whether a masquerading handle is exploitable on this platform: with
/// unguessable handles (seL4 caps, MINIX endpoint generations) the
/// kernel re-validates the object type at translation and the confused
/// handle is rejected; raw enumerable handles (Linux) are honored.
pub fn masquerade_exploitable(model: &PolicyModel) -> bool {
    !model.traits.unguessable_handles
}

/// Computes every escalation witness, for every untrusted subject, in
/// deterministic order (subject, then asset).
pub fn escalation_witnesses(model: &PolicyModel) -> Vec<Witness> {
    let cl = closure(&model.caps);
    let breach = cl.breach_caps();
    let masq = cl.masquerade_caps();
    let mut out = Vec::new();
    let untrusted: Vec<String> = model.untrusted_subjects().map(String::from).collect();
    for u in untrusted {
        witnesses_from(model, &cl, &breach, &masq, &u, &mut out);
    }
    out
}

/// Channel-level asset edges available directly from `s`.
fn direct_assets(model: &PolicyModel, s: &str) -> Vec<Asset> {
    let ctrl = model.roles.controller.as_str();
    let mut goals = Vec::new();
    for dev in [DeviceId::FAN, DeviceId::ALARM] {
        if model.device_channel(s, dev, true).is_some() {
            goals.push(Asset::DeviceWrite(dev));
        }
    }
    for (driver, mtype) in [
        (model.roles.heater.clone(), MT_FAN_CMD),
        (model.roles.alarm.clone(), MT_ALARM_CMD),
    ] {
        if model.delivery_channel(s, &driver, mtype).is_some() {
            goals.push(Asset::ActuatorCommand(driver));
        }
    }
    for (recv, mtype) in model.contracts.actuation_inputs.clone() {
        if model.delivery_channel(s, &recv, mtype).is_some()
            && model.app_accepts(s, &recv, mtype, true)
        {
            goals.push(Asset::TaintedActuation {
                receiver: recv,
                mtype,
            });
        }
    }
    for victim in [model.roles.controller.clone(), model.roles.alarm.clone()] {
        if model.can_kill(s, &victim) {
            goals.push(Asset::CriticalKill(victim));
        }
    }
    if model.delivery_channel(s, ctrl, MT_SETPOINT).is_some() {
        if model.app_accepts(s, ctrl, MT_SETPOINT, false) {
            goals.push(Asset::TamperAccept(ctrl.to_string()));
        }
        if model.app_accepts(s, ctrl, MT_SETPOINT, true) {
            goals.push(Asset::ReplayAccept(ctrl.to_string()));
        }
    }
    goals
}

/// Asset edges a (breached) capability's *stored* rights would grant if
/// the kernel honors the slot.
fn cap_assets(model: &PolicyModel, id: CapId) -> Vec<Asset> {
    let node = model.caps.node(id);
    let mut goals = Vec::new();
    let rights = node.rights;
    // Resolve queue objects to their reader for message authority.
    let recv_of = |obj: &ObjectId| -> Option<String> {
        match obj {
            ObjectId::Process(p) => Some(p.clone()),
            ObjectId::Queue(q) => model.queue_readers.get(q).cloned(),
            _ => None,
        }
    };
    if rights.allows(op::DEV_WRITE) {
        if let ObjectId::Device(d) = &node.object {
            goals.push(Asset::DeviceWrite(*d));
        }
    }
    if rights.allows(op::KILL) {
        match &node.object {
            ObjectId::ProcessManager => {
                goals.push(Asset::CriticalKill(model.roles.controller.clone()));
                goals.push(Asset::CriticalKill(model.roles.alarm.clone()));
            }
            ObjectId::Process(p) if *p == model.roles.controller || *p == model.roles.alarm => {
                goals.push(Asset::CriticalKill(p.clone()));
            }
            _ => {}
        }
    }
    if rights.allows(op::SEND) {
        if let Some(recv) = recv_of(&node.object) {
            if recv == model.roles.heater || recv == model.roles.alarm {
                goals.push(Asset::ActuatorCommand(recv));
            } else {
                for (r, mtype) in model.contracts.actuation_inputs.clone() {
                    if r == recv && rights.types & (1u64 << mtype) != 0 {
                        goals.push(Asset::TaintedActuation { receiver: r, mtype });
                    }
                }
            }
        }
    }
    goals
}

fn witnesses_from(
    model: &PolicyModel,
    cl: &Closure,
    breach: &[CapId],
    masq: &[CapId],
    subject: &str,
    out: &mut Vec<Witness>,
) {
    let _ = cl;
    let masq_live = masquerade_exploitable(model);
    let usable_anomalous = |id: CapId| -> bool {
        model.caps.stored_usable(id) && (breach.contains(&id) || (masq_live && masq.contains(&id)))
    };
    let reached = reach([Hop::Subject(subject.to_string())], |hop| match hop {
        Hop::Subject(s) => {
            let mut next: Vec<Hop> = direct_assets(model, s).into_iter().map(Hop::Goal).collect();
            for (id, _) in model.caps.held_by(s) {
                if usable_anomalous(id) {
                    next.push(Hop::Cap(id));
                }
            }
            next
        }
        Hop::Cap(id) => {
            let mut next = Vec::new();
            if masq_live && masq.contains(id) {
                next.push(Hop::Goal(Asset::Masquerade(
                    model.caps.node(*id).object.clone(),
                )));
            }
            if breach.contains(id) {
                next.extend(cap_assets(model, *id).into_iter().map(Hop::Goal));
            }
            next
        }
        Hop::Goal(_) => Vec::new(),
    });
    // Collect every reached asset with its shortest-hop path.
    let goals: Vec<Asset> = reached
        .nodes()
        .filter_map(|h| match h {
            Hop::Goal(a) => Some(a.clone()),
            _ => None,
        })
        .collect();
    for asset in goals {
        let Some(path) = reached.path(&Hop::Goal(asset.clone())) else {
            continue;
        };
        let mut hops = Vec::new();
        let mut via_caps = false;
        for h in &path {
            match h {
                Hop::Subject(s) => hops.push(s.clone()),
                Hop::Cap(id) => {
                    via_caps = true;
                    let n = model.caps.node(*id);
                    hops.push(format!("{id}({} {} via {})", n.object, n.rights, n.via));
                }
                Hop::Goal(a) => hops.push(a.to_string()),
            }
        }
        out.push(Witness {
            subject: subject.to_string(),
            asset,
            hops,
            via_caps,
        });
    }
}

/// The witnesses relevant to one attack of the §IV-D matrix — presence
/// of any is the static compromise verdict for that cell.
pub fn witnesses_for_attack<'a>(
    witnesses: &'a [Witness],
    attack: AttackId,
    model: &PolicyModel,
) -> Vec<&'a Witness> {
    let ctrl = model.roles.controller.as_str();
    witnesses
        .iter()
        .filter(|w| match attack {
            AttackId::SpoofSensorData => {
                matches!(&w.asset, Asset::TaintedActuation { receiver, .. } if receiver == ctrl)
            }
            AttackId::SpoofActuatorCommands => matches!(&w.asset, Asset::ActuatorCommand(_)),
            AttackId::KillCritical => matches!(&w.asset, Asset::CriticalKill(_)),
            AttackId::DirectDeviceWrite => matches!(
                &w.asset,
                Asset::DeviceWrite(d) if *d == DeviceId::FAN || *d == DeviceId::ALARM
            ),
            AttackId::SetpointTamper => matches!(&w.asset, Asset::TamperAccept(_)),
            AttackId::ReplaySetpoint => matches!(&w.asset, Asset::ReplayAccept(_)),
            // Resource attacks never have a compromise witness: they
            // exhaust, they do not escalate.
            AttackId::ForkBomb | AttackId::BruteForceHandles | AttackId::FloodLegitChannel => false,
        })
        // Cells are mounted from the scenario's web position only.
        .filter(|w| w.subject == model.roles.web)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::graph::{DerivationKind, ObjType};
    use crate::flow::lattice::Perms;
    use crate::scenario::model_for;
    use bas_attack::AttackerModel;
    use bas_core::platform::linux::UidScheme;
    use bas_core::scenario::Platform;

    fn shared_linux() -> PolicyModel {
        model_for(
            Platform::Linux,
            AttackerModel::ArbitraryCode,
            UidScheme::SharedAccount,
        )
    }

    #[test]
    fn channel_witness_renders_the_legacy_taint_path() {
        let ws = escalation_witnesses(&shared_linux());
        let tainted: Vec<&Witness> = ws
            .iter()
            .filter(|w| matches!(w.asset, Asset::TaintedActuation { .. }))
            .collect();
        assert!(!tainted.is_empty());
        for w in tainted {
            assert!(!w.via_caps);
            assert!(w.render().contains("-> actuators (tainted control input)"));
        }
    }

    #[test]
    fn clean_lowered_graph_yields_no_cap_witnesses() {
        for (platform, scheme) in [
            (Platform::Linux, UidScheme::PerProcessHardened),
            (Platform::Minix, UidScheme::SharedAccount),
            (Platform::Sel4, UidScheme::SharedAccount),
        ] {
            let m = model_for(platform, AttackerModel::ArbitraryCode, scheme);
            assert!(
                escalation_witnesses(&m).iter().all(|w| !w.via_caps),
                "{platform}: lowered derivation trees must be sound"
            );
        }
    }

    #[test]
    fn breach_cap_produces_cap_witness() {
        let mut m = model_for(
            Platform::Linux,
            AttackerModel::ArbitraryCode,
            UidScheme::PerProcessHardened,
        );
        let web = m.roles.web.clone();
        let r = m.caps.root(
            &m.roles.controller.clone(),
            ObjectId::Device(DeviceId::FAN),
            Perms::of(op::DEV_READ),
        );
        m.caps
            .derive_raw(r, &web, DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        let ws = escalation_witnesses(&m);
        let w = ws
            .iter()
            .find(|w| w.via_caps && matches!(w.asset, Asset::DeviceWrite(DeviceId::FAN)))
            .expect("escalation witness through the amplified cap");
        assert_eq!(w.subject, web);
        assert_eq!(w.hops.len(), 3, "subject -> cap -> asset: {:?}", w.hops);
    }

    #[test]
    fn masquerade_witness_requires_guessable_handles() {
        for (platform, scheme, expect) in [
            (Platform::Linux, UidScheme::PerProcessHardened, true),
            (Platform::Sel4, UidScheme::SharedAccount, false),
        ] {
            let mut m = model_for(platform, AttackerModel::ArbitraryCode, scheme);
            let web = m.roles.web.clone();
            m.caps.root_typed(
                &web,
                ObjectId::Device(DeviceId::ALARM),
                ObjType::DeviceFrame,
                ObjType::Queue,
                Perms::of(op::DEV_WRITE),
            );
            let ws = escalation_witnesses(&m);
            let has = ws.iter().any(|w| matches!(w.asset, Asset::Masquerade(_)));
            assert_eq!(has, expect, "{platform}");
        }
    }
}
