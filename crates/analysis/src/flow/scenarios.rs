//! Seeded derivation scenarios for the static/mc differential.
//!
//! The 54-cell attack matrix exercises *cleanly lowered* derivation
//! graphs, which by construction carry no flow violations. These
//! scenarios seed each platform's Policy IR with one specific anomaly —
//! an amplified mint, an incomplete revocation, a stale expiry, a
//! masquerading handle — plus two deliberately-clean controls, and
//! record what the static analyzer and the model checker must both
//! conclude. `exp_cap_flow` (E17) asserts the agreement cell by cell.

use bas_attack::AttackerModel;
use bas_core::platform::linux::UidScheme;
use bas_core::scenario::Platform;
use bas_sim::device::DeviceId;

use super::graph::{DerivationKind, ObjType};
use super::lattice::{op, Perms};
use crate::ir::{ObjectId, PolicyModel};
use crate::mc::verdict::props;
use crate::scenario::model_for;

/// One seeded scenario with its expected static and dynamic outcomes.
pub struct DerivationScenario {
    /// Stable scenario id, `<platform-key>/<kind>`.
    pub name: String,
    /// The platform whose lowered IR the anomaly is seeded into.
    pub platform: Platform,
    /// The seeded Policy IR.
    pub model: PolicyModel,
    /// The exact flow-finding codes the closure must emit, in `CapId`
    /// order.
    pub expect_codes: Vec<&'static str>,
    /// Whether a capability-borne escalation witness must exist.
    pub expect_witness: bool,
    /// The new-property bits (`OBJECT_MASQUERADE` / `DERIVATION_BREACH`)
    /// the model checker must reach — and no others of the pair.
    pub expect_flags: u32,
    /// Why the expectation is what it is.
    pub note: &'static str,
}

fn key(platform: Platform) -> &'static str {
    match platform {
        Platform::Linux => "linux",
        Platform::Minix => "minix",
        Platform::Sel4 => "sel4",
    }
}

/// The base model anomalies are seeded into: hardened configuration so
/// the background attack (handle probing) is flag-clean on every
/// platform and any reached new-property bit is attributable to the
/// seeded capability alone.
fn base(platform: Platform) -> PolicyModel {
    model_for(
        platform,
        AttackerModel::ArbitraryCode,
        UidScheme::PerProcessHardened,
    )
}

/// Builds all 21 scenarios (3 platforms × 7 kinds), platform-major, in
/// deterministic order.
pub fn derivation_scenarios() -> Vec<DerivationScenario> {
    let mut out = Vec::new();
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let k = key(platform);

        // 1. A well-formed attenuating chain: control, must stay silent.
        let mut m = base(platform);
        let ctrl = m.roles.controller.clone();
        let heater = m.roles.heater.clone();
        let r = m.caps.root(
            &ctrl,
            ObjectId::Device(DeviceId::FAN),
            Perms::of(op::DEV_WRITE | op::DEV_READ),
        );
        m.caps.derive(
            r,
            &heater,
            DerivationKind::Attenuate,
            Perms::of(op::DEV_WRITE),
        );
        out.push(DerivationScenario {
            name: format!("{k}/clean-chain"),
            platform,
            model: m,
            expect_codes: vec![],
            expect_witness: false,
            expect_flags: 0,
            note: "attenuating derivation between trusted subjects is sound",
        });

        // 2. An amplified mint hands the attacker write authority the
        //    source never had.
        let mut m = base(platform);
        let ctrl = m.roles.controller.clone();
        let web = m.roles.web.clone();
        let r = m.caps.root(
            &ctrl,
            ObjectId::Device(DeviceId::FAN),
            Perms::of(op::DEV_READ),
        );
        m.caps
            .derive_raw(r, &web, DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        out.push(DerivationScenario {
            name: format!("{k}/amplified-derive"),
            platform,
            model: m,
            expect_codes: vec!["attenuation-violation"],
            expect_witness: true,
            expect_flags: props::DERIVATION_BREACH,
            note: "derived rights exceed the source: attacker gains fan write",
        });

        // 3. Root revoked node-locally: the derived chain leaks.
        let mut m = base(platform);
        let ctrl = m.roles.controller.clone();
        let heater = m.roles.heater.clone();
        let web = m.roles.web.clone();
        let r = m.caps.root(
            &ctrl,
            ObjectId::Device(DeviceId::ALARM),
            Perms::of(op::DEV_WRITE),
        );
        let mid = m
            .caps
            .derive(r, &heater, DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        m.caps
            .derive(mid, &web, DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        m.caps.revoke(r);
        out.push(DerivationScenario {
            name: format!("{k}/revocation-leak"),
            platform,
            model: m,
            expect_codes: vec!["revocation-leak", "revocation-leak"],
            expect_witness: true,
            expect_flags: props::DERIVATION_BREACH,
            note: "revocation not transitively complete: descendants stay usable",
        });

        // 4. Same chain, revoked recursively: control, must stay silent.
        let mut m = base(platform);
        let ctrl = m.roles.controller.clone();
        let heater = m.roles.heater.clone();
        let web = m.roles.web.clone();
        let r = m.caps.root(
            &ctrl,
            ObjectId::Device(DeviceId::ALARM),
            Perms::of(op::DEV_WRITE),
        );
        let mid = m
            .caps
            .derive(r, &heater, DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        m.caps
            .derive(mid, &web, DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        m.caps.revoke_recursive(r);
        out.push(DerivationScenario {
            name: format!("{k}/revoke-complete"),
            platform,
            model: m,
            expect_codes: vec![],
            expect_witness: false,
            expect_flags: 0,
            note: "transitive revocation empties the derived closure",
        });

        // 5. The root's expiry has passed but the derived slot still
        //    reads usable.
        let mut m = base(platform);
        let ctrl = m.roles.controller.clone();
        let web = m.roles.web.clone();
        let r = m.caps.root(
            &ctrl,
            ObjectId::Device(DeviceId::FAN),
            Perms::of(op::DEV_WRITE),
        );
        m.caps.expire_at(r, 3);
        m.caps
            .derive(r, &web, DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        m.caps.clock = 5;
        out.push(DerivationScenario {
            name: format!("{k}/expired-live"),
            platform,
            model: m,
            expect_codes: vec!["expired-cap-live"],
            expect_witness: true,
            expect_flags: props::DERIVATION_BREACH,
            note: "inherited expiry passed; the leaf slot was never swept",
        });

        // 6. A type-confused handle in the attacker's possession. The
        //    finding is platform-independent; exploitation is not:
        //    unguessable handles are re-validated at translation.
        let mut m = base(platform);
        let web = m.roles.web.clone();
        m.caps.root_typed(
            &web,
            ObjectId::Device(DeviceId::ALARM),
            ObjType::DeviceFrame,
            ObjType::Queue,
            Perms::of(op::DEV_WRITE),
        );
        let exploitable = !m.traits.unguessable_handles;
        out.push(DerivationScenario {
            name: format!("{k}/masquerade-device"),
            platform,
            model: m,
            expect_codes: vec!["object-masquerade"],
            expect_witness: exploitable,
            expect_flags: if exploitable {
                props::OBJECT_MASQUERADE
            } else {
                0
            },
            note: "handle asserts queue, kernel object is a device frame",
        });

        // 7. The same confused handle held by a *trusted* subject: a
        //    hygiene finding, but no escalation path.
        let mut m = base(platform);
        let heater = m.roles.heater.clone();
        m.caps.root_typed(
            &heater,
            ObjectId::Device(DeviceId::ALARM),
            ObjType::DeviceFrame,
            ObjType::Queue,
            Perms::of(op::DEV_WRITE),
        );
        out.push(DerivationScenario {
            name: format!("{k}/masquerade-trusted"),
            platform,
            model: m,
            expect_codes: vec!["object-masquerade"],
            expect_witness: false,
            expect_flags: 0,
            note: "type confusion on a trusted holder: finding, no escalation",
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{closure, escalation_witnesses};

    #[test]
    fn twenty_one_scenarios_platform_major() {
        let ss = derivation_scenarios();
        assert_eq!(ss.len(), 21);
        assert_eq!(ss[0].name, "linux/clean-chain");
        assert_eq!(ss[7].name, "minix/clean-chain");
        assert_eq!(ss[14].name, "sel4/clean-chain");
        let names: std::collections::BTreeSet<&str> = ss.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 21, "names are unique");
    }

    #[test]
    fn static_expectations_hold_for_every_scenario() {
        for s in derivation_scenarios() {
            let cl = closure(&s.model.caps);
            let codes: Vec<&str> = cl.findings.iter().map(|f| f.kind.code()).collect();
            assert_eq!(codes, s.expect_codes, "{}: finding codes", s.name);
            let ws = escalation_witnesses(&s.model);
            let via_caps = ws.iter().any(|w| w.via_caps);
            assert_eq!(via_caps, s.expect_witness, "{}: witness presence", s.name);
        }
    }
}
