//! The permission lattice the capability-flow analysis runs over.
//!
//! A capability's authority is a pair: a bitmask of *operations* (send,
//! receive, device read/write, kill, fork, grant) and a bitmap of
//! *message types* it may carry (meaningful only for send authority).
//! Both components are powerset lattices, so the product [`Perms`] is a
//! finite lattice under componentwise ⊆, with `meet` = intersection and
//! `join` = union. Derivation legality is exactly the partial order:
//! a derived capability is well-formed iff its rights ⊑ its source's
//! effective rights.

use std::fmt;

use bas_sel4::rights::CapRights;
use serde::{Deserialize, Serialize};

use crate::ir::Operation;

/// Operation bits of the lattice.
pub mod op {
    /// Send a message toward the object.
    pub const SEND: u8 = 1 << 0;
    /// Receive from the object.
    pub const RECV: u8 = 1 << 1;
    /// Write the object's device registers.
    pub const DEV_WRITE: u8 = 1 << 2;
    /// Read the object's device registers.
    pub const DEV_READ: u8 = 1 << 3;
    /// Terminate the target.
    pub const KILL: u8 = 1 << 4;
    /// Create processes from the backing resource.
    pub const FORK: u8 = 1 << 5;
    /// Mint further capabilities from this one.
    pub const GRANT: u8 = 1 << 6;
}

/// One point of the permission lattice: `(operations, message types)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Perms {
    /// Operation bitmask (see [`op`]).
    pub ops: u8,
    /// Message-type bitmap carried by send authority (`u64::MAX` = all).
    pub types: u64,
}

impl Perms {
    /// The lattice bottom.
    pub const NONE: Perms = Perms { ops: 0, types: 0 };

    /// Non-message authority (device, kill, fork): no type bits.
    pub fn of(ops: u8) -> Perms {
        Perms { ops, types: 0 }
    }

    /// Message authority over a set of types.
    pub fn sending(ops: u8, types: u64) -> Perms {
        Perms { ops, types }
    }

    /// The partial order: `self` ⊑ `other` (componentwise subset).
    pub fn le(self, other: Perms) -> bool {
        self.ops & !other.ops == 0 && self.types & !other.types == 0
    }

    /// Greatest lower bound (intersection).
    pub fn meet(self, other: Perms) -> Perms {
        Perms {
            ops: self.ops & other.ops,
            types: self.types & other.types,
        }
    }

    /// Least upper bound (union).
    pub fn join(self, other: Perms) -> Perms {
        Perms {
            ops: self.ops | other.ops,
            types: self.types | other.types,
        }
    }

    /// True if the given operation bit is present.
    pub fn allows(self, bit: u8) -> bool {
        self.ops & bit != 0
    }

    /// Lifts a seL4 rights triple onto the lattice: read = receive,
    /// write = send (over `types`), grant = mint authority.
    pub fn from_cap_rights(r: CapRights, types: u64) -> Perms {
        let mut ops = 0u8;
        if r.read {
            ops |= op::RECV;
        }
        if r.write {
            ops |= op::SEND;
        }
        if r.grant {
            ops |= op::GRANT;
        }
        Perms {
            ops,
            types: if r.write { types } else { 0 },
        }
    }

    /// The lattice bit of an IR channel operation (`GetPid`/`Exit`
    /// carry no capability authority and map to bottom).
    pub fn op_bit(o: Operation) -> u8 {
        match o {
            Operation::Send => op::SEND,
            Operation::Receive => op::RECV,
            Operation::DevWrite => op::DEV_WRITE,
            Operation::DevRead => op::DEV_READ,
            Operation::Kill => op::KILL,
            Operation::Fork => op::FORK,
            Operation::GetPid | Operation::Exit => 0,
        }
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const LETTERS: [(u8, char); 7] = [
            (op::SEND, 'S'),
            (op::RECV, 'R'),
            (op::DEV_WRITE, 'W'),
            (op::DEV_READ, 'r'),
            (op::KILL, 'K'),
            (op::FORK, 'F'),
            (op::GRANT, 'G'),
        ];
        if self.ops == 0 {
            f.write_str("-")?;
        } else {
            for (bit, c) in LETTERS {
                if self.ops & bit != 0 {
                    write!(f, "{c}")?;
                }
            }
        }
        if self.ops & op::SEND != 0 {
            if self.types == u64::MAX {
                write!(f, "/t:*")?;
            } else {
                write!(f, "/t:{:#x}", self.types)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_order_is_componentwise() {
        let a = Perms::sending(op::SEND, 0b0110);
        let b = Perms::sending(op::SEND | op::GRANT, 0b1110);
        assert!(a.le(b));
        assert!(!b.le(a));
        assert!(Perms::NONE.le(a));
        // Same ops, incomparable types.
        let c = Perms::sending(op::SEND, 0b0001);
        assert!(!c.le(a));
        assert!(!a.le(c));
    }

    #[test]
    fn meet_and_join_are_bounds() {
        let a = Perms::sending(op::SEND | op::RECV, 0b0110);
        let b = Perms::sending(op::SEND | op::KILL, 0b0011);
        let m = a.meet(b);
        let j = a.join(b);
        assert!(m.le(a) && m.le(b));
        assert!(a.le(j) && b.le(j));
        assert_eq!(m, Perms::sending(op::SEND, 0b0010));
        assert_eq!(j, Perms::sending(op::SEND | op::RECV | op::KILL, 0b0111));
    }

    #[test]
    fn cap_rights_lift_matches_sel4_semantics() {
        let p = Perms::from_cap_rights(CapRights::WRITE_GRANT, 0b1010);
        assert_eq!(p.ops, op::SEND | op::GRANT);
        assert_eq!(p.types, 0b1010);
        // A read-only cap carries no send types.
        let r = Perms::from_cap_rights(CapRights::READ, 0b1010);
        assert_eq!(r.ops, op::RECV);
        assert_eq!(r.types, 0);
    }

    #[test]
    fn display_is_compact_and_total() {
        assert_eq!(Perms::NONE.to_string(), "-");
        assert_eq!(Perms::of(op::DEV_WRITE | op::KILL).to_string(), "WK");
        assert_eq!(Perms::sending(op::SEND, u64::MAX).to_string(), "S/t:*");
        assert_eq!(Perms::sending(op::SEND, 0x12).to_string(), "S/t:0x12");
    }
}
