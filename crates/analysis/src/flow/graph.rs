//! Capability derivation trees.
//!
//! Each backend's policy artifact records not only *who holds what* but
//! *where each capability came from*: seL4 caps are minted from an
//! original object capability, MINIX ACM rows can be delegated onward
//! under a quota, hardened-Linux queue access is inherited from the
//! owner's ACL through group membership. The [`CapGraph`] captures that
//! provenance as a forest: every capability is either a *root*
//! (bootstrap authority) or *derived* from exactly one parent by a
//! grant or attenuate edge, and may additionally be revoked or carry an
//! expiry. The flow analysis ([`crate::flow::closure`]) folds the
//! permission lattice over these edges.

use std::fmt;

use serde::{Deserialize, Serialize};

use super::lattice::Perms;
use crate::ir::ObjectId;

/// Index of a capability node in its [`CapGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CapId(pub u32);

impl fmt::Display for CapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cap#{}", self.0)
    }
}

/// The kernel-object type behind a capability, as two views: what the
/// kernel's object table *declares*, and what the holder's *handle*
/// asserts. The masquerading detector flags any disagreement (the
/// ThreadX kernel-object-masquerading shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ObjType {
    /// An IPC endpoint / process mailbox.
    Endpoint,
    /// A POSIX message queue.
    Queue,
    /// A device register frame.
    DeviceFrame,
    /// A thread control block.
    Tcb,
    /// The process-management authority.
    ProcessSlot,
    /// Untyped memory (retype/fork source).
    Untyped,
}

impl ObjType {
    /// The declared type implied by an IR object reference.
    pub fn of(object: &ObjectId) -> ObjType {
        match object {
            ObjectId::Process(_) => ObjType::Endpoint,
            ObjectId::Queue(_) => ObjType::Queue,
            ObjectId::Device(_) => ObjType::DeviceFrame,
            ObjectId::ProcessManager => ObjType::ProcessSlot,
        }
    }
}

impl fmt::Display for ObjType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjType::Endpoint => "endpoint",
            ObjType::Queue => "queue",
            ObjType::DeviceFrame => "device-frame",
            ObjType::Tcb => "tcb",
            ObjType::ProcessSlot => "process-slot",
            ObjType::Untyped => "untyped",
        };
        f.write_str(s)
    }
}

/// How a capability came into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DerivationKind {
    /// Bootstrap authority; no parent.
    Root,
    /// Copied to another holder (rights preserved or shrunk).
    Grant,
    /// Derived with explicitly reduced rights.
    Attenuate,
}

impl fmt::Display for DerivationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DerivationKind::Root => "root",
            DerivationKind::Grant => "grant",
            DerivationKind::Attenuate => "attenuate",
        };
        f.write_str(s)
    }
}

/// One capability: holder, object, both type views, stored rights and
/// provenance. `rights` is what the kernel's slot *records* — the flow
/// analysis separately computes what the chain actually *justifies*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapNode {
    /// The subject holding the capability.
    pub holder: String,
    /// The kernel object it refers to.
    pub object: ObjectId,
    /// The object type per the kernel's object table.
    pub declared: ObjType,
    /// The object type the holder's handle asserts.
    pub handle: ObjType,
    /// Stored (slot) rights.
    pub rights: Perms,
    /// The source capability, if derived.
    pub parent: Option<CapId>,
    /// The edge kind that produced this capability.
    pub via: DerivationKind,
    /// True once this specific node has been revoked.
    pub revoked: bool,
    /// Logical expiry instant, if the grant is time-bounded.
    pub expires_at: Option<u32>,
}

/// The derivation forest of one policy, plus the logical clock expiries
/// are judged against.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapGraph {
    /// All capability nodes; `CapId` indexes this vector.
    pub nodes: Vec<CapNode>,
    /// The logical instant "now" for expiry checks.
    pub clock: u32,
}

impl CapGraph {
    /// True when no capabilities are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of capability nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this graph.
    pub fn node(&self, id: CapId) -> &CapNode {
        &self.nodes[id.0 as usize]
    }

    fn push(&mut self, node: CapNode) -> CapId {
        let id = CapId(u32::try_from(self.nodes.len()).expect("capability graph fits in u32"));
        self.nodes.push(node);
        id
    }

    /// Adds a bootstrap capability; declared and handle types agree.
    pub fn root(&mut self, holder: &str, object: ObjectId, rights: Perms) -> CapId {
        let t = ObjType::of(&object);
        self.root_typed(holder, object, t, t, rights)
    }

    /// Adds a bootstrap capability with explicit type views (the
    /// masquerade seeding path sets `handle != declared`).
    pub fn root_typed(
        &mut self,
        holder: &str,
        object: ObjectId,
        declared: ObjType,
        handle: ObjType,
        rights: Perms,
    ) -> CapId {
        self.push(CapNode {
            holder: holder.to_string(),
            object,
            declared,
            handle,
            rights,
            parent: None,
            via: DerivationKind::Root,
            revoked: false,
            expires_at: None,
        })
    }

    /// Derives a capability the way a well-behaved kernel does: the
    /// child's stored rights are clamped to the parent's stored rights.
    pub fn derive(
        &mut self,
        parent: CapId,
        holder: &str,
        via: DerivationKind,
        rights: Perms,
    ) -> CapId {
        let p = self.node(parent).clone();
        self.push(CapNode {
            holder: holder.to_string(),
            object: p.object,
            declared: p.declared,
            handle: p.handle,
            rights: rights.meet(p.rights),
            parent: Some(parent),
            via,
            revoked: false,
            expires_at: None,
        })
    }

    /// Derives a capability *without* clamping — models a buggy or
    /// hostile mint whose stored rights may exceed the source's.
    pub fn derive_raw(
        &mut self,
        parent: CapId,
        holder: &str,
        via: DerivationKind,
        rights: Perms,
    ) -> CapId {
        let p = self.node(parent).clone();
        self.push(CapNode {
            holder: holder.to_string(),
            object: p.object,
            declared: p.declared,
            handle: p.handle,
            rights,
            parent: Some(parent),
            via,
            revoked: false,
            expires_at: None,
        })
    }

    /// Marks one node revoked *without* touching its descendants — the
    /// incomplete-revocation bug the flow analysis must catch.
    pub fn revoke(&mut self, id: CapId) {
        self.nodes[id.0 as usize].revoked = true;
    }

    /// Revokes a node and its entire derived subtree (the correct
    /// kernel semantics).
    pub fn revoke_recursive(&mut self, id: CapId) {
        self.revoke(id);
        let kids: Vec<CapId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parent == Some(id))
            .map(|i| CapId(i as u32))
            .collect();
        for k in kids {
            self.revoke_recursive(k);
        }
    }

    /// Sets a node's expiry instant.
    pub fn expire_at(&mut self, id: CapId, at: u32) {
        self.nodes[id.0 as usize].expires_at = Some(at);
    }

    /// Overrides the handle-side type view (masquerade seeding).
    pub fn set_handle_type(&mut self, id: CapId, t: ObjType) {
        self.nodes[id.0 as usize].handle = t;
    }

    /// Node-local usability: what a kernel consulting only the slot
    /// sees — not revoked here, not expired here.
    pub fn stored_usable(&self, id: CapId) -> bool {
        let n = self.node(id);
        !n.revoked && n.expires_at.is_none_or(|e| e > self.clock)
    }

    /// All capabilities held by `holder`, in id order.
    pub fn held_by<'a>(&'a self, holder: &'a str) -> impl Iterator<Item = (CapId, &'a CapNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.holder == holder)
            .map(|(i, n)| (CapId(i as u32), n))
    }

    /// Child adjacency (index-aligned with `nodes`).
    pub fn children(&self) -> Vec<Vec<CapId>> {
        let mut kids: Vec<Vec<CapId>> = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                kids[p.0 as usize].push(CapId(i as u32));
            }
        }
        kids
    }

    /// The derivation chain root → … → `id`.
    pub fn chain(&self, id: CapId) -> Vec<CapId> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            // Defensive cycle guard: a malformed parent pointer must
            // not hang the analysis.
            if chain.contains(&p) {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::lattice::op;
    use bas_sim::device::DeviceId;

    #[test]
    fn derive_clamps_raw_does_not() {
        let mut g = CapGraph::default();
        let r = g.root(
            "a",
            ObjectId::Device(DeviceId::FAN),
            Perms::of(op::DEV_READ),
        );
        let c = g.derive(r, "b", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        assert_eq!(g.node(c).rights, Perms::NONE, "clamped to the parent");
        let d = g.derive_raw(r, "b", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        assert_eq!(g.node(d).rights, Perms::of(op::DEV_WRITE));
    }

    #[test]
    fn recursive_revoke_covers_the_subtree() {
        let mut g = CapGraph::default();
        let r = g.root("a", ObjectId::Process("x".into()), Perms::of(op::SEND));
        let c1 = g.derive(r, "b", DerivationKind::Grant, Perms::of(op::SEND));
        let c2 = g.derive(c1, "c", DerivationKind::Grant, Perms::of(op::SEND));
        g.revoke_recursive(r);
        assert!(g.node(r).revoked && g.node(c1).revoked && g.node(c2).revoked);
    }

    #[test]
    fn chain_walks_to_the_root() {
        let mut g = CapGraph::default();
        let r = g.root("a", ObjectId::Process("x".into()), Perms::of(op::SEND));
        let c1 = g.derive(r, "b", DerivationKind::Grant, Perms::of(op::SEND));
        let c2 = g.derive(c1, "c", DerivationKind::Attenuate, Perms::of(op::SEND));
        assert_eq!(g.chain(c2), vec![r, c1, c2]);
        assert_eq!(g.chain(r), vec![r]);
    }

    #[test]
    fn stored_usable_is_node_local() {
        let mut g = CapGraph::default();
        let r = g.root("a", ObjectId::Process("x".into()), Perms::of(op::SEND));
        let c = g.derive(r, "b", DerivationKind::Grant, Perms::of(op::SEND));
        g.revoke(r);
        assert!(!g.stored_usable(r));
        assert!(g.stored_usable(c), "the leak the closure must catch");
        g.expire_at(c, 3);
        g.clock = 3;
        assert!(!g.stored_usable(c), "expiry is inclusive at the instant");
    }
}
