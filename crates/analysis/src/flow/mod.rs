//! Capability-flow static analysis over the Policy IR.
//!
//! The three backends lower not only *who may do what* but *where each
//! capability came from*: a derivation forest ([`CapGraph`]) of
//! grant/attenuate edges with revocations and expiries. A worklist
//! fixpoint ([`closure`]) folds the permission lattice ([`Perms`]) over
//! the forest and checks three derivation invariants — attenuation
//! monotone, revocation transitively complete, no expired capability
//! live — plus the kernel-object-masquerading detector (handle type vs
//! declared object type, the ThreadX KOM shape).
//!
//! Everything reachability-shaped in the analyzer — the closure
//! propagation, the taint actuator-path search, the escalation-witness
//! search — runs on one shared deterministic BFS engine ([`reach`]).
//! Witnesses ([`Witness`]) are shortest escalation chains `subject →
//! cap hops → asset`; `exp_cap_flow` (E17) cross-validates them against
//! model-checker reachability in both directions.

mod closure;
mod graph;
mod lattice;
mod reach;
mod scenarios;
mod witness;

pub use closure::{closure, Closure, FlowFinding, FlowKind};
pub use graph::{CapGraph, CapId, CapNode, DerivationKind, ObjType};
pub use lattice::{op, Perms};
pub use reach::{reach, Reached};
pub use scenarios::{derivation_scenarios, DerivationScenario};
pub use witness::{
    escalation_witnesses, masquerade_exploitable, witnesses_for_attack, Asset, Witness,
};
