//! A small deterministic worklist engine.
//!
//! One breadth-first fixpoint serves every reachability question in the
//! analyzer: the derivation-closure propagation, the taint
//! actuator-path search and the escalation-witness search all
//! instantiate [`reach`] with their own node type and successor
//! function. Nodes are ordered (`Ord`) and successors are sorted before
//! expansion, so the exploration order — and therefore every rendered
//! path — is byte-stable across runs. Because the search is
//! breadth-first, the parent pointers recover a *shortest-hop* path to
//! every reached node.

use std::collections::{BTreeMap, VecDeque};

/// The result of a [`reach`] run: every reached node with its BFS
/// parent (`None` for sources).
pub struct Reached<N: Ord + Clone> {
    parents: BTreeMap<N, Option<N>>,
}

impl<N: Ord + Clone> Reached<N> {
    /// True if the node was reached.
    pub fn contains(&self, n: &N) -> bool {
        self.parents.contains_key(n)
    }

    /// The shortest-hop path `source ..= n`, if `n` was reached.
    pub fn path(&self, n: &N) -> Option<Vec<N>> {
        if !self.parents.contains_key(n) {
            return None;
        }
        let mut path = vec![n.clone()];
        let mut cur = n.clone();
        while let Some(Some(p)) = self.parents.get(&cur) {
            path.push(p.clone());
            cur = p.clone();
        }
        path.reverse();
        Some(path)
    }

    /// All reached nodes, in `Ord` order.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.parents.keys()
    }
}

/// Breadth-first worklist fixpoint from `sources` under `succs`.
///
/// Each node is expanded exactly once; successor lists are sorted and
/// deduplicated so insertion order cannot leak into the result.
pub fn reach<N, I, F>(sources: I, mut succs: F) -> Reached<N>
where
    N: Ord + Clone,
    I: IntoIterator<Item = N>,
    F: FnMut(&N) -> Vec<N>,
{
    let mut parents: BTreeMap<N, Option<N>> = BTreeMap::new();
    let mut queue: VecDeque<N> = VecDeque::new();
    for s in sources {
        if !parents.contains_key(&s) {
            parents.insert(s.clone(), None);
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        let mut next = succs(&n);
        next.sort();
        next.dedup();
        for m in next {
            if !parents.contains_key(&m) {
                parents.insert(m.clone(), Some(n.clone()));
                queue.push_back(m);
            }
        }
    }
    Reached { parents }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_paths_are_shortest_hop() {
        // 0 → 1 → 3 and 0 → 3 directly: the path to 3 must be direct.
        let r = reach([0u32], |&n| match n {
            0 => vec![1, 3],
            1 => vec![3],
            _ => vec![],
        });
        assert_eq!(r.path(&3), Some(vec![0, 3]));
        assert_eq!(r.path(&1), Some(vec![0, 1]));
        assert!(r.path(&9).is_none());
    }

    #[test]
    fn cycles_terminate() {
        let r = reach([0u32], |&n| vec![(n + 1) % 4]);
        assert_eq!(r.nodes().count(), 4);
        assert_eq!(r.path(&3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn multiple_sources_expand_once() {
        let mut expansions = 0;
        let r = reach([0u32, 1], |&n| {
            expansions += 1;
            vec![n + 2].into_iter().filter(|&m| m < 4).collect()
        });
        assert!(r.contains(&2) && r.contains(&3));
        assert_eq!(expansions, 4);
    }
}
