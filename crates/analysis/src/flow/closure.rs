//! The derivation-closure fixpoint and its invariant checks.
//!
//! A worklist pass propagates two facts down every derivation chain:
//!
//! - the *effective* rights of a capability — the meet (greatest lower
//!   bound) of the stored rights along its chain, i.e. the authority
//!   the chain actually justifies, and
//! - the *sound liveness* of a capability — usable only if no ancestor
//!   (or the node itself) has been revoked and no chain expiry has
//!   passed the graph clock.
//!
//! Comparing these against the node-local *stored* view (what a kernel
//! consulting only the slot would honor) yields the three derivation
//! invariants plus the type-confusion check:
//!
//! - **attenuation-violation** — stored rights ⋢ the source's effective
//!   rights: somewhere a mint amplified authority;
//! - **revocation-leak** — an ancestor was revoked but this descendant
//!   is still locally usable: revocation was not transitively complete;
//! - **expired-cap-live** — an inherited expiry has passed but the slot
//!   still reads usable;
//! - **object-masquerade** — the handle's asserted object type
//!   disagrees with the kernel's declared type (the ThreadX
//!   kernel-object-masquerading shape, arXiv:2504.19486).

use std::fmt;

use super::graph::{CapGraph, CapId};
use super::lattice::Perms;
use super::reach::reach;
use crate::ir::ObjectId;

/// The invariant a flow finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowKind {
    /// Derived rights exceed the source's effective rights.
    AttenuationViolation,
    /// A locally-usable capability survives an ancestor's revoke.
    RevocationLeak,
    /// A locally-usable capability survives an inherited expiry.
    ExpiredCapLive,
    /// Handle type and declared object type disagree.
    ObjectMasquerade,
}

impl FlowKind {
    /// The stable lint code for this invariant.
    pub fn code(self) -> &'static str {
        match self {
            FlowKind::AttenuationViolation => "attenuation-violation",
            FlowKind::RevocationLeak => "revocation-leak",
            FlowKind::ExpiredCapLive => "expired-cap-live",
            FlowKind::ObjectMasquerade => "object-masquerade",
        }
    }
}

impl fmt::Display for FlowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One violated invariant, with the derivation chain as evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowFinding {
    /// Which invariant.
    pub kind: FlowKind,
    /// The offending capability.
    pub cap: CapId,
    /// Its holder.
    pub holder: String,
    /// The object it reaches.
    pub object: ObjectId,
    /// The derivation chain root → … → cap.
    pub chain: Vec<CapId>,
    /// Human-readable specifics.
    pub detail: String,
}

/// The computed closure: per-capability effective rights, sound
/// liveness, and every invariant violation.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Chain-meet rights, indexed by `CapId`.
    pub effective: Vec<Perms>,
    /// Sound liveness (chain-aware), indexed by `CapId`.
    pub live: Vec<bool>,
    /// Derivation depth (roots = 0), indexed by `CapId`.
    pub depth: Vec<u32>,
    /// All invariant violations, in `CapId` order.
    pub findings: Vec<FlowFinding>,
}

impl Closure {
    /// Capabilities violating a derivation invariant (attenuation,
    /// revocation or expiry) — the ones the kernel would wrongly honor.
    pub fn breach_caps(&self) -> Vec<CapId> {
        let mut v: Vec<CapId> = self
            .findings
            .iter()
            .filter(|f| f.kind != FlowKind::ObjectMasquerade)
            .map(|f| f.cap)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Capabilities whose handle type masquerades as another object
    /// type.
    pub fn masquerade_caps(&self) -> Vec<CapId> {
        self.findings
            .iter()
            .filter(|f| f.kind == FlowKind::ObjectMasquerade)
            .map(|f| f.cap)
            .collect()
    }
}

/// Per-node facts propagated down the chains by the worklist.
#[derive(Clone, Copy)]
struct ChainFacts {
    /// Meet of stored rights along the chain (including self).
    effective: Perms,
    /// Nearest revoked ancestor-or-self.
    revoked_at: Option<CapId>,
    /// Earliest expiry along the chain (including self), with source.
    expires: Option<(u32, CapId)>,
    /// Depth below the root.
    depth: u32,
}

/// Runs the worklist fixpoint over a derivation graph.
pub fn closure(g: &CapGraph) -> Closure {
    let n = g.len();
    let mut facts: Vec<Option<ChainFacts>> = vec![None; n];
    let kids = g.children();

    // Worklist over the forest: roots seed the frontier; every node's
    // facts are the meet/merge of its own slot with its parent's facts.
    // The shared `reach` engine drives the traversal (each node visited
    // once; malformed parent cycles simply stay unvisited and dead).
    let roots: Vec<CapId> = (0..n)
        .filter(|&i| g.nodes[i].parent.is_none())
        .map(|i| CapId(i as u32))
        .collect();
    reach(roots, |&id| {
        let node = g.node(id);
        let inherited = node.parent.and_then(|p| facts[p.0 as usize]);
        let fact = match inherited {
            None => ChainFacts {
                effective: node.rights,
                revoked_at: node.revoked.then_some(id),
                expires: node.expires_at.map(|e| (e, id)),
                depth: 0,
            },
            Some(pf) => ChainFacts {
                effective: node.rights.meet(pf.effective),
                revoked_at: pf.revoked_at.or(node.revoked.then_some(id)),
                expires: match (pf.expires, node.expires_at.map(|e| (e, id))) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                },
                depth: pf.depth + 1,
            },
        };
        facts[id.0 as usize] = Some(fact);
        kids[id.0 as usize].clone()
    });

    let mut effective = vec![Perms::NONE; n];
    let mut live = vec![false; n];
    let mut depth = vec![0u32; n];
    let mut findings = Vec::new();

    for i in 0..n {
        let id = CapId(i as u32);
        let node = g.node(id);
        let Some(fact) = facts[i] else {
            // Unreached under a malformed parent pointer: dead, bottom.
            continue;
        };
        effective[i] = fact.effective;
        depth[i] = fact.depth;
        live[i] = fact.revoked_at.is_none() && fact.expires.is_none_or(|(e, _)| e > g.clock);

        let finding = |kind: FlowKind, detail: String| FlowFinding {
            kind,
            cap: id,
            holder: node.holder.clone(),
            object: node.object.clone(),
            chain: g.chain(id),
            detail,
        };

        if let Some(p) = node.parent {
            let source = facts[p.0 as usize].map_or(Perms::NONE, |f| f.effective);
            if !node.rights.le(source) {
                findings.push(finding(
                    FlowKind::AttenuationViolation,
                    format!(
                        "stored rights {} exceed effective source rights {} ({} from {})",
                        node.rights, source, node.via, p
                    ),
                ));
            }
            if g.stored_usable(id) {
                let pf = facts[p.0 as usize];
                if let Some(r) = pf.and_then(|f| f.revoked_at) {
                    findings.push(finding(
                        FlowKind::RevocationLeak,
                        format!("{r} was revoked but this descendant slot still reads usable"),
                    ));
                }
                if let Some((e, src)) = pf.and_then(|f| f.expires) {
                    if e <= g.clock {
                        findings.push(finding(
                            FlowKind::ExpiredCapLive,
                            format!(
                                "inherited expiry t={e} (from {src}) passed at clock {} \
                                 but this slot still reads usable",
                                g.clock
                            ),
                        ));
                    }
                }
            }
        }
        if node.declared != node.handle {
            findings.push(finding(
                FlowKind::ObjectMasquerade,
                format!(
                    "handle presents as {} but the kernel object is {}",
                    node.handle, node.declared
                ),
            ));
        }
    }

    Closure {
        effective,
        live,
        depth,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::graph::{DerivationKind, ObjType};
    use crate::flow::lattice::{op, Perms};
    use bas_sim::device::DeviceId;

    fn dev(d: DeviceId) -> ObjectId {
        ObjectId::Device(d)
    }

    #[test]
    fn clean_chain_has_no_findings() {
        let mut g = CapGraph::default();
        let r = g.root(
            "ctrl",
            dev(DeviceId::FAN),
            Perms::of(op::DEV_WRITE | op::DEV_READ),
        );
        let c = g.derive(
            r,
            "heater",
            DerivationKind::Attenuate,
            Perms::of(op::DEV_WRITE),
        );
        let cl = closure(&g);
        assert!(cl.findings.is_empty());
        assert!(cl.live[r.0 as usize] && cl.live[c.0 as usize]);
        assert_eq!(cl.effective[c.0 as usize], Perms::of(op::DEV_WRITE));
        assert_eq!(cl.depth[c.0 as usize], 1);
    }

    #[test]
    fn amplified_mint_is_flagged() {
        let mut g = CapGraph::default();
        let r = g.root("ctrl", dev(DeviceId::FAN), Perms::of(op::DEV_READ));
        let c = g.derive_raw(r, "web", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        let cl = closure(&g);
        assert_eq!(cl.findings.len(), 1);
        assert_eq!(cl.findings[0].kind, FlowKind::AttenuationViolation);
        assert_eq!(cl.findings[0].cap, c);
        assert_eq!(cl.findings[0].chain, vec![r, c]);
        // The closure itself stays monotone regardless of the breach.
        assert!(cl.effective[c.0 as usize].le(cl.effective[r.0 as usize]));
    }

    #[test]
    fn incomplete_revocation_leaks() {
        let mut g = CapGraph::default();
        let r = g.root("ctrl", dev(DeviceId::ALARM), Perms::of(op::DEV_WRITE));
        let mid = g.derive(r, "heater", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        let leaf = g.derive(mid, "web", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        g.revoke(r);
        let cl = closure(&g);
        let leaks: Vec<CapId> = cl
            .findings
            .iter()
            .filter(|f| f.kind == FlowKind::RevocationLeak)
            .map(|f| f.cap)
            .collect();
        assert_eq!(leaks, vec![mid, leaf]);
        assert!(!cl.live[leaf.0 as usize], "sound view: the chain is dead");
        // Transitive revoke fixes it.
        g.revoke_recursive(r);
        assert!(closure(&g).findings.is_empty());
    }

    #[test]
    fn inherited_expiry_is_enforced() {
        let mut g = CapGraph::default();
        let r = g.root("ctrl", dev(DeviceId::FAN), Perms::of(op::DEV_WRITE));
        g.expire_at(r, 3);
        let leaf = g.derive(r, "web", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        g.clock = 2;
        assert!(closure(&g).findings.is_empty(), "not yet expired");
        g.clock = 5;
        let cl = closure(&g);
        assert_eq!(cl.findings.len(), 1);
        assert_eq!(cl.findings[0].kind, FlowKind::ExpiredCapLive);
        assert_eq!(cl.findings[0].cap, leaf);
        assert!(!cl.live[leaf.0 as usize]);
    }

    #[test]
    fn masquerade_detected_on_type_disagreement() {
        let mut g = CapGraph::default();
        let c = g.root_typed(
            "web",
            dev(DeviceId::ALARM),
            ObjType::DeviceFrame,
            ObjType::Queue,
            Perms::of(op::DEV_WRITE),
        );
        let cl = closure(&g);
        assert_eq!(cl.findings.len(), 1);
        assert_eq!(cl.findings[0].kind, FlowKind::ObjectMasquerade);
        assert_eq!(cl.masquerade_caps(), vec![c]);
        assert!(cl.breach_caps().is_empty());
    }
}
