//! ACM → Policy IR (the MINIX backend).
//!
//! The access-control matrix *is* the kernel's complete IPC policy: one
//! cell per directed `(sender, receiver)` pair, one bit per message type.
//! Rows targeting the PM server's identity encode process-management
//! authority (`fork2`/`kill`/…), everything else is an application
//! channel. Device access is not in the matrix — MINIX binds devices to
//! their driver's `ac_id` — so the binding carries the owner map.

use std::collections::BTreeMap;

use bas_acm::{AcId, AccessControlMatrix, DelegationLog, MsgType, QuotaTable, SyscallClass};
use bas_core::scenario::Platform;
use bas_minix::pm;
use bas_sim::device::DeviceId;

use crate::flow::{op, DerivationKind, Perms};
use crate::ir::{
    type_bits, Channel, ChannelKind, ObjectId, Operation, PlatformTraits, PolicyModel, Trust,
};

/// Binding from ACM identities to subject names and platform facts the
/// matrix itself does not carry.
#[derive(Debug, Clone, Default)]
pub struct AcmBinding {
    /// `ac_id` → subject name.
    pub subjects: BTreeMap<AcId, String>,
    /// The PM server's identity (rows targeting it become sys-ops).
    pub pm_ac: Option<AcId>,
    /// Device → owning identity (MINIX device ownership).
    pub device_owners: BTreeMap<DeviceId, AcId>,
}

/// The mechanism facts of security-enhanced MINIX 3.
pub fn minix_traits() -> PlatformTraits {
    PlatformTraits {
        kernel_stamped_identity: true,
        rpc_in_band_validation: false,
        uid_root_bypass: false,
        unguessable_handles: true,
    }
}

fn pm_op(msg_type: u32) -> Option<Operation> {
    match msg_type {
        pm::PM_FORK2 | pm::PM_SRV_FORK2 => Some(Operation::Fork),
        pm::PM_KILL => Some(Operation::Kill),
        pm::PM_EXIT => Some(Operation::Exit),
        pm::PM_GETPID => Some(Operation::GetPid),
        _ => None,
    }
}

/// Lowers an access-control matrix (plus its binding, quota table, and
/// delegation log) into the Policy IR.
pub fn lower(
    acm: &AccessControlMatrix,
    binding: &AcmBinding,
    quotas: &QuotaTable,
    delegations: &DelegationLog,
) -> PolicyModel {
    let mut model = PolicyModel::new(Platform::Minix, minix_traits());

    for name in binding.subjects.values() {
        model.add_subject(name, Trust::Trusted, None);
    }

    // Root caps of the derivation forest, keyed by the matrix cell they
    // came from so delegation records can find their source.
    let mut row_caps: BTreeMap<(AcId, AcId), crate::flow::CapId> = BTreeMap::new();
    let subject_name = |ac: AcId| -> String {
        binding
            .subjects
            .get(&ac)
            .cloned()
            .unwrap_or_else(|| ac.to_string())
    };

    for (sender, receiver, types) in acm.entries() {
        // Rows *from* the PM identity are reply plumbing (PM_OK/PM_ERR
        // back to the caller), not subject authority.
        if Some(sender) == binding.pm_ac {
            continue;
        }
        let subject = match binding.subjects.get(&sender) {
            Some(name) => name.clone(),
            // An identity nobody is bound to: keep the raw name so the
            // linter can flag it as dangling.
            None => sender.to_string(),
        };
        if Some(receiver) == binding.pm_ac {
            for t in 0..64 {
                if !types.contains(MsgType::new(t)) {
                    continue;
                }
                let Some(pm_operation) = pm_op(t) else {
                    continue;
                };
                model.channels.push(Channel {
                    subject: subject.clone(),
                    object: ObjectId::ProcessManager,
                    op: pm_operation,
                    msg_types: bas_acm::matrix::MsgTypeSet::of([MsgType::new(t)]),
                    kind: ChannelKind::SysOp,
                    badge: None,
                });
                let bit = Perms::op_bit(pm_operation);
                if bit != 0 {
                    model
                        .caps
                        .root(&subject, ObjectId::ProcessManager, Perms::of(bit));
                }
            }
            continue;
        }
        let object = match binding.subjects.get(&receiver) {
            Some(name) => ObjectId::Process(name.clone()),
            None => ObjectId::Process(receiver.to_string()),
        };
        let row_cap = model.caps.root(
            &subject,
            object.clone(),
            Perms::sending(op::SEND, type_bits(types)),
        );
        row_caps.insert((sender, receiver), row_cap);
        model.channels.push(Channel {
            subject,
            object,
            op: Operation::Send,
            msg_types: types,
            kind: ChannelKind::AsyncSend,
            badge: None,
        });
    }

    for (&dev, owner) in &binding.device_owners {
        let Some(name) = binding.subjects.get(owner) else {
            continue;
        };
        for operation in [Operation::DevRead, Operation::DevWrite] {
            model.channels.push(Channel {
                subject: name.clone(),
                object: ObjectId::Device(dev),
                op: operation,
                msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
                kind: ChannelKind::DeviceAccess,
                badge: None,
            });
        }
        model.caps.root(
            name,
            ObjectId::Device(dev),
            Perms::of(op::DEV_READ | op::DEV_WRITE),
        );
    }

    // The delegation log replays as derivation edges. A well-founded
    // record hangs off the grantor's matrix row; a record whose grantor
    // holds no such row hangs off a rights-less synthetic root, so the
    // flow analysis flags the delegated rights as non-monotone. Stored
    // rights are taken verbatim (`derive_raw`): the analyzer, not the
    // lowering, adjudicates amplification.
    for rec in &delegations.records {
        let grantee = subject_name(rec.grantee);
        let parent = *row_caps
            .entry((rec.grantor, rec.receiver))
            .or_insert_with(|| {
                model.caps.root(
                    &subject_name(rec.grantor),
                    ObjectId::Process(subject_name(rec.receiver)),
                    Perms::NONE,
                )
            });
        let child = model.caps.derive_raw(
            parent,
            &grantee,
            DerivationKind::Grant,
            Perms::sending(op::SEND, type_bits(rec.types)),
        );
        if rec.revoked {
            model.caps.revoke(child);
        }
        if let Some(at) = rec.expires_at {
            model.caps.expire_at(child, at);
        }
    }
    model.caps.clock = delegations.clock;

    for (ac, name) in &binding.subjects {
        if let Some(limit) = quotas.limit(*ac, SyscallClass::Fork) {
            model.fork_quota.insert(name.clone(), limit);
        }
        // Raw endpoint references carry a generation counter; blind
        // enumeration reaches nothing (§IV-D.3's brute-force result).
        model.enumerable_handles.insert(name.clone(), 0);
        model.legitimate_handles.insert(name.clone(), 0);
    }

    model.normalize();
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_core::policy::{scenario_acm, scenario_device_owners, scenario_quotas};
    use bas_core::proto::{names, AC_CONTROL, AC_SCENARIO, AC_WEB, MT_SETPOINT};

    fn scenario_binding() -> AcmBinding {
        let mut subjects = BTreeMap::new();
        subjects.insert(bas_core::proto::AC_SENSOR, names::SENSOR.to_string());
        subjects.insert(AC_CONTROL, names::CONTROL.to_string());
        subjects.insert(bas_core::proto::AC_HEATER, names::HEATER.to_string());
        subjects.insert(bas_core::proto::AC_ALARM, names::ALARM.to_string());
        subjects.insert(AC_WEB, names::WEB.to_string());
        subjects.insert(AC_SCENARIO, names::SCENARIO.to_string());
        AcmBinding {
            subjects,
            pm_ac: Some(pm::PM_AC_ID),
            device_owners: scenario_device_owners(),
        }
    }

    #[test]
    fn scenario_acm_lowers_to_expected_edges() {
        let m = lower(
            &scenario_acm(),
            &scenario_binding(),
            &scenario_quotas(None),
            &DelegationLog::default(),
        );
        // Web can deliver a setpoint to the controller...
        assert!(m
            .delivery_channel(names::WEB, names::CONTROL, MT_SETPOINT)
            .is_some());
        // ...but not sensor readings, and not actuator commands.
        assert!(m
            .delivery_channel(
                names::WEB,
                names::CONTROL,
                bas_core::proto::MT_SENSOR_READING
            )
            .is_none());
        assert!(m
            .delivery_channel(names::WEB, names::HEATER, bas_core::proto::MT_FAN_CMD)
            .is_none());
        // PM rows became sys-ops: loader kills, web forks but cannot kill.
        assert!(m.can_kill(names::SCENARIO, names::CONTROL));
        assert!(!m.can_kill(names::WEB, names::CONTROL));
        assert!(m.can_fork(names::WEB));
    }

    #[test]
    fn device_ownership_becomes_device_channels() {
        let m = lower(
            &scenario_acm(),
            &scenario_binding(),
            &scenario_quotas(None),
            &DelegationLog::default(),
        );
        assert!(m
            .device_channel(names::HEATER, DeviceId::FAN, true)
            .is_some());
        assert!(m.device_channel(names::WEB, DeviceId::FAN, true).is_none());
    }

    #[test]
    fn fork_quota_carried_through() {
        let m = lower(
            &scenario_acm(),
            &scenario_binding(),
            &scenario_quotas(Some(2)),
            &DelegationLog::default(),
        );
        assert_eq!(m.fork_quota.get(names::WEB), Some(&2));
    }

    #[test]
    fn delegations_replay_into_the_derivation_forest() {
        use bas_acm::MsgTypeSet;
        use bas_core::proto::MT_SENSOR_READING;

        // Well-founded attenuation: web re-delegates a subset of its
        // setpoint row — clean.
        let mut log = DelegationLog::new();
        log.delegate(
            AC_WEB,
            AC_SCENARIO,
            AC_CONTROL,
            MsgTypeSet::of([MsgType::new(MT_SETPOINT)]),
        );
        let m = lower(
            &scenario_acm(),
            &scenario_binding(),
            &scenario_quotas(None),
            &log,
        );
        assert!(!m.caps.is_empty());
        let c = crate::flow::closure(&m.caps);
        assert!(
            c.findings.is_empty(),
            "subset delegation is monotone: {:?}",
            c.findings
        );

        // Amplified delegation: web hands out a message type its own row
        // never carried — the flow analysis must flag it.
        let mut log = DelegationLog::new();
        log.delegate(
            AC_WEB,
            AC_SCENARIO,
            AC_CONTROL,
            MsgTypeSet::of([MsgType::new(MT_SENSOR_READING)]),
        );
        let m = lower(
            &scenario_acm(),
            &scenario_binding(),
            &scenario_quotas(None),
            &log,
        );
        let c = crate::flow::closure(&m.caps);
        assert!(c
            .findings
            .iter()
            .any(|f| f.kind == crate::flow::FlowKind::AttenuationViolation));
    }

    #[test]
    fn pm_reply_rows_are_not_subject_authority() {
        let m = lower(
            &scenario_acm(),
            &scenario_binding(),
            &scenario_quotas(None),
            &DelegationLog::default(),
        );
        assert!(
            !m.channels
                .iter()
                .any(|c| c.subject == pm::PM_AC_ID.to_string()),
            "PM reply rows must be skipped"
        );
    }
}
