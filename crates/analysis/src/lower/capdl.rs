//! CapDL → Policy IR (the seL4 backend).
//!
//! A CapDL spec *is* the post-bootstrap authority distribution: on seL4
//! "a thread can only do what its capabilities permit". Every write-right
//! endpoint capability becomes an RPC channel to the endpoint's server
//! (the thread holding the read cap), device-frame caps become device
//! channels, TCB caps become kill authority, and untyped-memory caps
//! become creation (fork) authority.

use std::collections::BTreeMap;

use bas_capdl::spec::{CapDlSpec, CapTargetSpec, SpecObjKind};
use bas_core::scenario::Platform;

use crate::flow::{op, DerivationKind, ObjType, Perms};
use crate::ir::{Channel, ChannelKind, ObjectId, Operation, PlatformTraits, PolicyModel, Trust};

/// Facts the spec does not carry: which message types each endpoint's
/// server accepts (CapDL knows objects, not protocols).
#[derive(Debug, Clone, Default)]
pub struct CapdlBinding {
    /// Endpoint object name → message types its server dispatches.
    pub endpoint_types: BTreeMap<String, Vec<u32>>,
}

/// The mechanism facts of seL4 + CAmkES.
pub fn sel4_traits() -> PlatformTraits {
    PlatformTraits {
        kernel_stamped_identity: true, // badges are kernel-attached
        rpc_in_band_validation: true,  // seL4RPCCall: server replies in-band
        uid_root_bypass: false,        // "no concept of user or root"
        unguessable_handles: true,     // capabilities are unforgeable
    }
}

/// Lowers a CapDL spec into the Policy IR.
pub fn lower(spec: &CapDlSpec, binding: &CapdlBinding) -> PolicyModel {
    let mut model = PolicyModel::new(Platform::Sel4, sel4_traits());

    for t in &spec.threads {
        model.add_subject(&t.name, Trust::Trusted, None);
    }

    // An endpoint's server is the thread holding a read capability on it.
    let mut server_of: BTreeMap<&str, &str> = BTreeMap::new();
    for c in &spec.caps {
        if let CapTargetSpec::Object(name) = &c.target {
            if c.rights.read
                && matches!(
                    spec.object(name).map(|o| o.kind),
                    Some(SpecObjKind::Endpoint | SpecObjKind::Notification)
                )
            {
                server_of.entry(name.as_str()).or_insert(c.holder.as_str());
            }
        }
    }

    for c in &spec.caps {
        match &c.target {
            CapTargetSpec::Tcb(thread) => {
                // TCB authority: suspend/kill the thread.
                model.channels.push(Channel {
                    subject: c.holder.clone(),
                    object: ObjectId::Process(thread.clone()),
                    op: Operation::Kill,
                    msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
                    kind: ChannelKind::SysOp,
                    badge: None,
                });
            }
            CapTargetSpec::Object(name) => {
                let kind = spec.object(name).map(|o| o.kind);
                match kind {
                    Some(SpecObjKind::Endpoint | SpecObjKind::Notification) => {
                        if !c.rights.write {
                            continue; // the server's own receive cap
                        }
                        let Some(server) = server_of.get(name.as_str()) else {
                            continue; // endpoint with no receiver: dead letter
                        };
                        if *server == c.holder {
                            continue;
                        }
                        let types = binding
                            .endpoint_types
                            .get(name)
                            .map(|ts| {
                                bas_acm::matrix::MsgTypeSet::of(
                                    ts.iter().map(|&t| bas_acm::MsgType::new(t)),
                                )
                            })
                            .unwrap_or(bas_acm::matrix::MsgTypeSet::EMPTY);
                        model.channels.push(Channel {
                            subject: c.holder.clone(),
                            object: ObjectId::Process((*server).to_string()),
                            op: Operation::Send,
                            msg_types: types,
                            kind: ChannelKind::RpcCall,
                            badge: Some(c.badge),
                        });
                    }
                    Some(SpecObjKind::Device(dev)) => {
                        if c.rights.read {
                            model.channels.push(Channel {
                                subject: c.holder.clone(),
                                object: ObjectId::Device(dev),
                                op: Operation::DevRead,
                                msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
                                kind: ChannelKind::DeviceAccess,
                                badge: None,
                            });
                        }
                        if c.rights.write {
                            model.channels.push(Channel {
                                subject: c.holder.clone(),
                                object: ObjectId::Device(dev),
                                op: Operation::DevWrite,
                                msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
                                kind: ChannelKind::DeviceAccess,
                                badge: None,
                            });
                        }
                    }
                    Some(SpecObjKind::Untyped(_)) => {
                        // Untyped memory is the only route to new threads.
                        model.channels.push(Channel {
                            subject: c.holder.clone(),
                            object: ObjectId::ProcessManager,
                            op: Operation::Fork,
                            msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
                            kind: ChannelKind::SysOp,
                            badge: None,
                        });
                    }
                    None => {}
                }
            }
        }
    }

    // The derivation forest. A cap with a `derive` record descends from
    // the original capability to its object (synthesized lazily, holding
    // the full send/recv/grant rights the rootserver minted at retype
    // time); everything else is a bootstrap root of its own.
    let derived: BTreeMap<(&str, u32), &str> = spec
        .derivations
        .iter()
        .map(|d| ((d.child.0.as_str(), d.child.1), d.origin.as_str()))
        .collect();
    let bits_of = |name: &str| -> Option<u64> {
        binding
            .endpoint_types
            .get(name)
            .map(|ts| ts.iter().fold(0u64, |b, &t| b | (1u64 << t)))
    };
    let mut origin_caps: BTreeMap<String, crate::flow::CapId> = BTreeMap::new();
    for c in &spec.caps {
        match &c.target {
            CapTargetSpec::Tcb(thread) => {
                model.caps.root_typed(
                    &c.holder,
                    ObjectId::Process(thread.clone()),
                    ObjType::Tcb,
                    ObjType::Tcb,
                    Perms::of(op::KILL),
                );
            }
            CapTargetSpec::Object(name) => {
                let (object, rights) = match spec.object(name).map(|o| o.kind) {
                    Some(SpecObjKind::Endpoint | SpecObjKind::Notification) => {
                        let server = server_of.get(name.as_str()).copied().unwrap_or(name);
                        (
                            ObjectId::Process(server.to_string()),
                            Perms::from_cap_rights(c.rights, bits_of(name).unwrap_or(0)),
                        )
                    }
                    Some(SpecObjKind::Device(dev)) => {
                        let mut ops = 0u8;
                        if c.rights.read {
                            ops |= op::DEV_READ;
                        }
                        if c.rights.write {
                            ops |= op::DEV_WRITE;
                        }
                        (ObjectId::Device(dev), Perms::of(ops))
                    }
                    Some(SpecObjKind::Untyped(_)) => {
                        model.caps.root_typed(
                            &c.holder,
                            ObjectId::ProcessManager,
                            ObjType::Untyped,
                            ObjType::Untyped,
                            Perms::of(op::FORK),
                        );
                        continue;
                    }
                    None => continue,
                };
                match derived.get(&(c.holder.as_str(), c.slot)) {
                    Some(&origin) => {
                        let parent = *origin_caps.entry(origin.to_string()).or_insert_with(|| {
                            let original_holder =
                                server_of.get(origin).copied().unwrap_or(origin).to_string();
                            model.caps.root(
                                &original_holder,
                                ObjectId::Process(original_holder.clone()),
                                Perms::sending(
                                    op::SEND | op::RECV | op::GRANT,
                                    bits_of(origin).unwrap_or(u64::MAX),
                                ),
                            )
                        });
                        model
                            .caps
                            .derive(parent, &c.holder, DerivationKind::Attenuate, rights);
                    }
                    None => {
                        model.caps.root(&c.holder, object, rights);
                    }
                }
            }
        }
    }

    // Brute-force surface: every cap in a thread's CSpace is reachable
    // by slot enumeration (`Identify`), and nothing else is.
    for t in &spec.threads {
        let count = spec.caps_of(&t.name).count();
        model.enumerable_handles.insert(t.name.clone(), count);
        model.legitimate_handles.insert(t.name.clone(), count);
    }

    model.normalize();
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_capdl::spec::{CapDecl, ObjDecl, ThreadDecl};
    use bas_sel4::rights::CapRights;
    use bas_sim::device::DeviceId;

    fn spec() -> CapDlSpec {
        CapDlSpec {
            objects: vec![
                ObjDecl {
                    name: "ep_srv_api".into(),
                    kind: SpecObjKind::Endpoint,
                },
                ObjDecl {
                    name: "dev_srv_fan".into(),
                    kind: SpecObjKind::Device(DeviceId::FAN),
                },
            ],
            threads: vec![
                ThreadDecl { name: "srv".into() },
                ThreadDecl { name: "cli".into() },
            ],
            caps: vec![
                CapDecl {
                    holder: "srv".into(),
                    slot: 0,
                    target: CapTargetSpec::Object("ep_srv_api".into()),
                    rights: CapRights::READ,
                    badge: 0,
                },
                CapDecl {
                    holder: "cli".into(),
                    slot: 0,
                    target: CapTargetSpec::Object("ep_srv_api".into()),
                    rights: CapRights::WRITE_GRANT,
                    badge: 7,
                },
                CapDecl {
                    holder: "srv".into(),
                    slot: 1,
                    target: CapTargetSpec::Object("dev_srv_fan".into()),
                    rights: CapRights::WRITE,
                    badge: 0,
                },
            ],
            derivations: vec![
                bas_capdl::spec::DerivationDecl {
                    child: ("srv".into(), 0),
                    origin: "ep_srv_api".into(),
                },
                bas_capdl::spec::DerivationDecl {
                    child: ("cli".into(), 0),
                    origin: "ep_srv_api".into(),
                },
            ],
        }
    }

    #[test]
    fn write_cap_becomes_rpc_channel_to_server() {
        let mut binding = CapdlBinding::default();
        binding.endpoint_types.insert("ep_srv_api".into(), vec![2]);
        let m = lower(&spec(), &binding);
        let ch = m.delivery_channel("cli", "srv", 2).expect("rpc channel");
        assert_eq!(ch.kind, ChannelKind::RpcCall);
        assert_eq!(ch.badge, Some(7));
        // The server's own read cap is not a send channel.
        assert!(m.delivery_channel("srv", "srv", 2).is_none());
    }

    #[test]
    fn device_and_handle_counts() {
        let m = lower(&spec(), &CapdlBinding::default());
        assert!(m.device_channel("srv", DeviceId::FAN, true).is_some());
        assert!(m.device_channel("cli", DeviceId::FAN, true).is_none());
        assert_eq!(m.enumerable_handles["cli"], 1);
        assert_eq!(m.enumerable_handles["srv"], 2);
    }

    #[test]
    fn tcb_cap_is_kill_authority_and_untyped_is_fork() {
        let mut s = spec();
        s.caps.push(CapDecl {
            holder: "cli".into(),
            slot: 1,
            target: CapTargetSpec::Tcb("srv".into()),
            rights: CapRights::ALL,
            badge: 0,
        });
        s.objects.push(ObjDecl {
            name: "ut".into(),
            kind: SpecObjKind::Untyped(4096),
        });
        s.caps.push(CapDecl {
            holder: "cli".into(),
            slot: 2,
            target: CapTargetSpec::Object("ut".into()),
            rights: CapRights::ALL,
            badge: 0,
        });
        let m = lower(&s, &CapdlBinding::default());
        assert!(m.can_kill("cli", "srv"));
        assert!(m.can_fork("cli"));
        assert!(!m.can_fork("srv"));
    }

    #[test]
    fn derivation_records_become_cdt_edges_and_stay_clean() {
        let mut binding = CapdlBinding::default();
        binding.endpoint_types.insert("ep_srv_api".into(), vec![2]);
        let m = lower(&spec(), &binding);
        assert!(!m.caps.is_empty());
        // Both endpoint caps hang off one synthesized original cap.
        let derived = m.caps.nodes.iter().filter(|n| n.parent.is_some()).count();
        assert_eq!(derived, 2);
        // Attenuated client rights stay within the original's, so the
        // fixpoint reports nothing.
        let c = crate::flow::closure(&m.caps);
        assert!(c.findings.is_empty(), "clean CDT: {:?}", c.findings);
    }
}
