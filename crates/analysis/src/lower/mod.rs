//! Lowerings from each platform's policy artifact into the Policy IR.

pub mod acm;
pub mod capdl;
pub mod linux;
