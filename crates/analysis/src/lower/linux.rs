//! Linux mq ACL plan → Policy IR (the monolithic baseline).
//!
//! Linux has no compiled-in IPC policy; what exists is the loader's
//! deployment plan — queue owners, groups and modes, device-node owners,
//! and the uid each process runs under. The lowering evaluates the DAC
//! rules ([`Mode::allows_with_group`], including the root bypass) for
//! every `(subject, object)` pair and emits a channel wherever access
//! would be granted — the *effective* policy, which is exactly what the
//! paper's Linux attacks probe.

use std::collections::BTreeMap;

use bas_core::scenario::Platform;
use bas_linux::cred::{Mode, Uid};
use bas_sim::device::DeviceId;

use crate::flow::{op, DerivationKind, Perms};
use crate::ir::{Channel, ChannelKind, ObjectId, Operation, PlatformTraits, PolicyModel, Trust};

/// One queue as the loader creates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSpec {
    /// VFS name.
    pub name: String,
    /// Owner uid.
    pub owner: u32,
    /// Group uid (one-member groups, as in the hardened scheme).
    pub group: Option<u32>,
    /// Permission bits.
    pub mode: Mode,
    /// Intended reader (from the AADL-derived plan).
    pub reader: String,
    /// Intended writers.
    pub writers: Vec<String>,
    /// Message types the queue carries.
    pub msg_types: Vec<u32>,
}

/// The full Linux deployment the lowering evaluates.
#[derive(Debug, Clone, Default)]
pub struct LinuxDeployment {
    /// Subject → uid.
    pub subject_uids: BTreeMap<String, u32>,
    /// All queues.
    pub queues: Vec<QueueSpec>,
    /// Device node → (owner uid, mode).
    pub devices: BTreeMap<DeviceId, (u32, Mode)>,
}

/// The mechanism facts of the monolithic baseline.
pub fn linux_traits() -> PlatformTraits {
    PlatformTraits {
        kernel_stamped_identity: false, // "the bytes are all there is"
        rpc_in_band_validation: false,
        uid_root_bypass: true,
        unguessable_handles: false, // queue names are well known
    }
}

fn types_of(types: &[u32]) -> bas_acm::matrix::MsgTypeSet {
    bas_acm::matrix::MsgTypeSet::of(types.iter().map(|&t| bas_acm::MsgType::new(t)))
}

/// Lowers a Linux deployment into the Policy IR.
pub fn lower(dep: &LinuxDeployment) -> PolicyModel {
    let mut model = PolicyModel::new(Platform::Linux, linux_traits());

    for (name, &uid) in &dep.subject_uids {
        model.add_subject(name, Trust::Trusted, Some(uid));
    }

    for (subject, &uid) in &dep.subject_uids {
        let who = Uid::new(uid);
        let mut reachable_rw = 0usize;
        for q in &dep.queues {
            let owner = Uid::new(q.owner);
            let group = q.group.map(Uid::new);
            let can_read = q.mode.allows_with_group(who, owner, group, true, false);
            let can_write = q.mode.allows_with_group(who, owner, group, false, true);
            if can_write {
                model.channels.push(Channel {
                    subject: subject.clone(),
                    object: ObjectId::Queue(q.name.clone()),
                    op: Operation::Send,
                    msg_types: types_of(&q.msg_types),
                    kind: ChannelKind::QueueWrite,
                    badge: None,
                });
            }
            if can_read {
                model.channels.push(Channel {
                    subject: subject.clone(),
                    object: ObjectId::Queue(q.name.clone()),
                    op: Operation::Receive,
                    msg_types: types_of(&q.msg_types),
                    kind: ChannelKind::QueueRead,
                    badge: None,
                });
            }
            if can_read && can_write {
                reachable_rw += 1;
            }
        }
        for (&dev, &(owner, mode)) in &dep.devices {
            let owner = Uid::new(owner);
            if mode.allows(who, owner, false, true) {
                model.channels.push(Channel {
                    subject: subject.clone(),
                    object: ObjectId::Device(dev),
                    op: Operation::DevWrite,
                    msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
                    kind: ChannelKind::DeviceAccess,
                    badge: None,
                });
            }
            if mode.allows(who, owner, true, false) {
                model.channels.push(Channel {
                    subject: subject.clone(),
                    object: ObjectId::Device(dev),
                    op: Operation::DevRead,
                    msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
                    kind: ChannelKind::DeviceAccess,
                    badge: None,
                });
            }
        }
        // Signals: same uid or root.
        for (victim, &victim_uid) in &dep.subject_uids {
            if victim == subject {
                continue;
            }
            if uid == 0 || uid == victim_uid {
                model.channels.push(Channel {
                    subject: subject.clone(),
                    object: ObjectId::Process(victim.clone()),
                    op: Operation::Kill,
                    msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
                    kind: ChannelKind::SysOp,
                    badge: None,
                });
            }
        }
        // fork(2) is ambient authority on Linux.
        model.channels.push(Channel {
            subject: subject.clone(),
            object: ObjectId::ProcessManager,
            op: Operation::Fork,
            msg_types: bas_acm::matrix::MsgTypeSet::EMPTY,
            kind: ChannelKind::SysOp,
            badge: None,
        });

        // Brute-force surface: a queue is "grabbed" when it opens
        // read-write; legitimate holdings are the planned memberships.
        model
            .enumerable_handles
            .insert(subject.clone(), reachable_rw);
        let legit = dep
            .queues
            .iter()
            .filter(|q| q.reader == *subject || q.writers.contains(subject))
            .count();
        model.legitimate_handles.insert(subject.clone(), legit);
    }

    for q in &dep.queues {
        model.queue_readers.insert(q.name.clone(), q.reader.clone());
    }

    // The derivation forest behind the edges above. The planned reader
    // holds each queue's original descriptor; everyone else who passes
    // DAC holds a descriptor derived from it — an *attenuation* when the
    // plan lists them as a writer, an ambient DAC *grant* otherwise.
    for q in &dep.queues {
        let bits: u64 = q.msg_types.iter().fold(0, |b, &t| b | (1u64 << t));
        let root = model.caps.root(
            &q.reader,
            ObjectId::Queue(q.name.clone()),
            Perms::sending(op::SEND | op::RECV, bits),
        );
        for (subject, &uid) in &dep.subject_uids {
            if *subject == q.reader {
                continue;
            }
            let who = Uid::new(uid);
            let owner = Uid::new(q.owner);
            let group = q.group.map(Uid::new);
            let mut ops = 0u8;
            if q.mode.allows_with_group(who, owner, group, false, true) {
                ops |= op::SEND;
            }
            if q.mode.allows_with_group(who, owner, group, true, false) {
                ops |= op::RECV;
            }
            if ops == 0 {
                continue;
            }
            let via = if q.writers.contains(subject) {
                DerivationKind::Attenuate
            } else {
                DerivationKind::Grant
            };
            model
                .caps
                .derive(root, subject, via, Perms::sending(ops, bits));
        }
    }
    // Device nodes: the owning uid's subject holds the original handle;
    // any other subject DAC admits holds a derived one.
    for (&dev, &(owner_uid, mode)) in &dep.devices {
        let owner_subject = dep
            .subject_uids
            .iter()
            .find(|(_, &u)| u == owner_uid)
            .map(|(s, _)| s.clone());
        let root = owner_subject.as_ref().map(|s| {
            model.caps.root(
                s,
                ObjectId::Device(dev),
                Perms::of(op::DEV_READ | op::DEV_WRITE),
            )
        });
        for (subject, &uid) in &dep.subject_uids {
            if Some(subject) == owner_subject.as_ref() {
                continue;
            }
            let who = Uid::new(uid);
            let owner = Uid::new(owner_uid);
            let mut ops = 0u8;
            if mode.allows(who, owner, false, true) {
                ops |= op::DEV_WRITE;
            }
            if mode.allows(who, owner, true, false) {
                ops |= op::DEV_READ;
            }
            if ops == 0 {
                continue;
            }
            match root {
                Some(r) => {
                    model
                        .caps
                        .derive(r, subject, DerivationKind::Grant, Perms::of(ops));
                }
                None => {
                    model
                        .caps
                        .root(subject, ObjectId::Device(dev), Perms::of(ops));
                }
            }
        }
    }
    // Signals and fork(2) are ambient kernel authority, not derived.
    for (subject, &uid) in &dep.subject_uids {
        for (victim, &victim_uid) in &dep.subject_uids {
            if victim != subject && (uid == 0 || uid == victim_uid) {
                model.caps.root(
                    subject,
                    ObjectId::Process(victim.clone()),
                    Perms::of(op::KILL),
                );
            }
        }
        model
            .caps
            .root(subject, ObjectId::ProcessManager, Perms::of(op::FORK));
    }

    model.normalize();
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployment(shared: bool, web_uid: u32) -> LinuxDeployment {
        let (ctrl_uid, web_q_owner) = if shared { (1000, 1000) } else { (1002, 1002) };
        let mut subject_uids = BTreeMap::new();
        subject_uids.insert("ctrl".to_string(), ctrl_uid);
        subject_uids.insert("web".to_string(), web_uid);
        let queue = if shared {
            QueueSpec {
                name: "/mq_in".into(),
                owner: 1000,
                group: None,
                mode: Mode::new(0o600),
                reader: "ctrl".into(),
                writers: vec!["sensor".into()],
                msg_types: vec![1],
            }
        } else {
            QueueSpec {
                name: "/mq_in".into(),
                owner: web_q_owner,
                group: Some(1001),
                mode: Mode::new(0o620),
                reader: "ctrl".into(),
                writers: vec!["sensor".into()],
                msg_types: vec![1],
            }
        };
        LinuxDeployment {
            subject_uids,
            queues: vec![queue],
            devices: BTreeMap::new(),
        }
    }

    #[test]
    fn shared_account_opens_everything() {
        let m = lower(&deployment(true, 1000));
        assert!(m.delivery_channel("web", "ctrl", 1).is_some());
        assert!(m.can_kill("web", "ctrl"), "same uid → signal allowed");
    }

    #[test]
    fn hardened_scheme_separates_accounts() {
        let m = lower(&deployment(false, 1005));
        assert!(m.delivery_channel("web", "ctrl", 1).is_none());
        assert!(!m.can_kill("web", "ctrl"));
    }

    #[test]
    fn root_bypasses_dac_and_signal_checks() {
        let m = lower(&deployment(false, 0));
        assert!(m.delivery_channel("web", "ctrl", 1).is_some());
        assert!(m.can_kill("web", "ctrl"));
    }

    #[test]
    fn fork_is_ambient() {
        let m = lower(&deployment(false, 1005));
        assert!(m.can_fork("web"));
        assert!(m.can_fork("ctrl"));
    }

    #[test]
    fn derivation_forest_tracks_dac_and_stays_clean() {
        let m = lower(&deployment(true, 1000));
        assert!(!m.caps.is_empty());
        // web shares uid 1000 with the queue owner, so it holds a
        // descriptor derived (ambient DAC grant) from ctrl's original.
        assert!(m
            .caps
            .held_by("web")
            .any(|(_, n)| matches!(n.object, ObjectId::Queue(_))
                && n.parent.is_some()
                && n.via == DerivationKind::Grant));
        let c = crate::flow::closure(&m.caps);
        assert!(c.findings.is_empty(), "DAC grants clamp: {:?}", c.findings);
    }

    #[test]
    fn handle_counts_follow_dac() {
        let m = lower(&deployment(true, 1000));
        assert_eq!(m.enumerable_handles["web"], 1, "0600 + owner → rw");
        assert_eq!(m.legitimate_handles["web"], 0, "web is not a member");
        let m = lower(&deployment(false, 1005));
        assert_eq!(m.enumerable_handles["web"], 0, "0620 group sensor");
    }
}
