//! Policy linter: severity-ranked findings over the Policy IR.
//!
//! The linter compares the *effective* policy (the lowered channel
//! graph) against a *justification* — the minimal authority implied by
//! the AADL connection topology — and flags everything the policy grants
//! beyond it. Findings are deterministically ordered (severity, code,
//! subject, object, detail) so lint output is byte-stable.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bas_acm::matrix::MsgTypeSet;
use bas_acm::MsgType;
use bas_core::proto::MT_ACK;
use bas_sim::device::DeviceId;

use crate::flow::{self, FlowKind};
use crate::ir::{ChannelKind, ObjectId, Operation, PolicyModel, Trust};
use crate::taint::untrusted_actuator_paths;

/// Finding severity, most severe first (sort order = report order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// An *untrusted* subject holds authority that breaks the scenario's
    /// security argument — CI gates on this level (`exp_policy_audit`
    /// exits nonzero when a secure configuration produces one).
    Error,
    /// Violates the scenario's security argument.
    High,
    /// Excess authority with a known-bounded blast radius.
    Medium,
    /// Hygiene: granted but unused.
    Low,
    /// Informational summary.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Error => "error",
            Severity::High => "high",
            Severity::Medium => "medium",
            Severity::Low => "low",
            Severity::Info => "info",
        };
        f.write_str(s)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity rank.
    pub severity: Severity,
    /// Stable rule code.
    pub code: &'static str,
    /// Subject the finding is about.
    pub subject: String,
    /// Object (rendered) the finding is about.
    pub object: String,
    /// Explanation.
    pub detail: String,
}

/// The minimal authority the scenario actually needs — synthesized from
/// the AADL connection topology, platform-independent.
#[derive(Debug, Clone, Default)]
pub struct Justification {
    /// Required `(sender, receiver, msg type)` application edges.
    pub app_edges: BTreeSet<(String, String, u32)>,
    /// Required process-management authority.
    pub sys_ops: BTreeSet<(String, Operation)>,
    /// Device → its one legitimate driver.
    pub device_owners: BTreeMap<DeviceId, String>,
    /// Queue → intended members (reader + writers).
    pub queue_membership: BTreeMap<String, BTreeSet<String>>,
    /// All expected subject names.
    pub subjects: BTreeSet<String>,
}

impl Justification {
    fn pair_connected(&self, a: &str, b: &str) -> bool {
        self.app_edges
            .iter()
            .any(|(s, r, _)| (s == a && r == b) || (s == b && r == a))
    }

    fn justified_types(&self, sender: &str, receiver: &str) -> BTreeSet<u32> {
        self.app_edges
            .iter()
            .filter(|(s, r, _)| s == sender && r == receiver)
            .map(|(_, _, t)| *t)
            .collect()
    }
}

/// Whether `subject` is bound and marked untrusted — excess authority in
/// untrusted hands is what the CI gate fails the build on.
fn is_untrusted(model: &PolicyModel, subject: &str) -> bool {
    model
        .subjects
        .get(subject)
        .is_some_and(|s| s.trust == Trust::Untrusted)
}

/// `Error` when the subject is untrusted, `base` otherwise.
fn escalate(model: &PolicyModel, subject: &str, base: Severity) -> Severity {
    if is_untrusted(model, subject) {
        Severity::Error
    } else {
        base
    }
}

/// Runs every lint rule; returns findings sorted most-severe first.
pub fn lint(model: &PolicyModel, justification: &Justification) -> Vec<Finding> {
    let mut findings = Vec::new();

    check_message_channels(model, justification, &mut findings);
    check_sys_ops(model, justification, &mut findings);
    check_device_access(model, justification, &mut findings);
    check_queue_membership(model, justification, &mut findings);
    check_dangling_identities(model, &mut findings);
    check_actuator_paths(model, &mut findings);
    check_derivations(model, &mut findings);
    check_escalation_witnesses(model, &mut findings);
    least_privilege_diff(model, justification, &mut findings);

    findings.sort_by(|a, b| {
        (a.severity, a.code, &a.subject, &a.object, &a.detail)
            .cmp(&(b.severity, b.code, &b.subject, &b.object, &b.detail))
    });
    findings.dedup();
    findings
}

/// Rule: over-granted-capability / unused-message-type on message
/// channels (ACM rows, endpoint capabilities).
fn check_message_channels(
    model: &PolicyModel,
    justification: &Justification,
    findings: &mut Vec<Finding>,
) {
    for c in &model.channels {
        let receiver = match (&c.kind, &c.object) {
            (ChannelKind::AsyncSend | ChannelKind::RpcCall, ObjectId::Process(p)) => p.as_str(),
            _ => continue,
        };
        if c.kind == ChannelKind::RpcCall {
            // Capability granularity: a write cap to someone's endpoint
            // is justified only by a connection toward that server.
            if justification
                .justified_types(&c.subject, receiver)
                .is_empty()
            {
                findings.push(Finding {
                    severity: escalate(model, &c.subject, Severity::High),
                    code: "over-granted-capability",
                    subject: c.subject.clone(),
                    object: c.object.to_string(),
                    detail: format!(
                        "endpoint capability{} has no AADL connection justifying it",
                        c.badge.map_or(String::new(), |b| format!(" (badge {b})"))
                    ),
                });
            }
            continue;
        }
        // ACM granularity: per message type.
        if c.msg_types == MsgTypeSet::All {
            findings.push(Finding {
                severity: escalate(model, &c.subject, Severity::High),
                code: "over-granted-capability",
                subject: c.subject.clone(),
                object: c.object.to_string(),
                detail: "wildcard message-type grant (allow-all)".into(),
            });
            continue;
        }
        let justified = justification.justified_types(&c.subject, receiver);
        let ack_ok = justification.pair_connected(&c.subject, receiver);
        let granted: Vec<u32> = (0..64)
            .filter(|&t| c.msg_types.contains(MsgType::new(t)))
            .collect();
        let excess: Vec<u32> = granted
            .iter()
            .copied()
            .filter(|&t| {
                if t == MT_ACK {
                    !ack_ok
                } else {
                    !justified.contains(&t)
                }
            })
            .collect();
        if excess.is_empty() {
            continue;
        }
        let has_any_justified = granted
            .iter()
            .any(|&t| (t == MT_ACK && ack_ok) || justified.contains(&t));
        if has_any_justified {
            for t in excess {
                findings.push(Finding {
                    severity: Severity::Low,
                    code: "unused-message-type",
                    subject: c.subject.clone(),
                    object: c.object.to_string(),
                    detail: format!("type {t} granted but no connection carries it"),
                });
            }
        } else {
            findings.push(Finding {
                severity: escalate(model, &c.subject, Severity::High),
                code: "over-granted-capability",
                subject: c.subject.clone(),
                object: c.object.to_string(),
                detail: format!(
                    "channel (types {:?}) has no AADL connection justifying it",
                    excess
                ),
            });
        }
    }
}

/// Rule: fork/kill authority beyond the loader's.
fn check_sys_ops(model: &PolicyModel, justification: &Justification, findings: &mut Vec<Finding>) {
    for c in &model.channels {
        if c.kind != ChannelKind::SysOp {
            continue;
        }
        let needs_justification = matches!(c.op, Operation::Fork | Operation::Kill);
        if !needs_justification {
            continue; // getpid/exit are harmless baseline
        }
        if justification.sys_ops.contains(&(c.subject.clone(), c.op)) {
            continue;
        }
        // Kill authority in untrusted hands defeats the availability half
        // of the security argument; unjustified fork stays a bounded
        // hygiene issue (the quota contains it), so it is never escalated.
        let severity = if c.op == Operation::Kill {
            escalate(model, &c.subject, Severity::Medium)
        } else {
            Severity::Medium
        };
        findings.push(Finding {
            severity,
            code: "over-granted-capability",
            subject: c.subject.clone(),
            object: c.object.to_string(),
            detail: format!("{} authority not required by the scenario", c.op),
        });
    }
}

/// Rule: device access held by anyone but the device's driver.
fn check_device_access(
    model: &PolicyModel,
    justification: &Justification,
    findings: &mut Vec<Finding>,
) {
    for c in &model.channels {
        let ObjectId::Device(dev) = &c.object else {
            continue;
        };
        if justification.device_owners.get(dev) == Some(&c.subject) {
            continue;
        }
        findings.push(Finding {
            severity: escalate(model, &c.subject, Severity::High),
            code: "over-granted-capability",
            subject: c.subject.clone(),
            object: c.object.to_string(),
            detail: format!("{} access; device belongs to another driver", c.op),
        });
    }
}

/// Rule: ambient-authority-queue — DAC admits a subject the plan never
/// made a member of the queue.
fn check_queue_membership(
    model: &PolicyModel,
    justification: &Justification,
    findings: &mut Vec<Finding>,
) {
    let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
    for c in &model.channels {
        let ObjectId::Queue(q) = &c.object else {
            continue;
        };
        let member = justification
            .queue_membership
            .get(q)
            .is_some_and(|m| m.contains(&c.subject));
        if member {
            continue;
        }
        if !flagged.insert((c.subject.clone(), q.clone())) {
            continue;
        }
        findings.push(Finding {
            severity: escalate(model, &c.subject, Severity::Medium),
            code: "ambient-authority-queue",
            subject: c.subject.clone(),
            object: c.object.to_string(),
            detail: "DAC admits a non-member of the queue".into(),
        });
    }
}

/// Rule: dangling-ac-id — identities granted rights that no subject is
/// bound to (stale rows after a process was removed).
fn check_dangling_identities(model: &PolicyModel, findings: &mut Vec<Finding>) {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for c in &model.channels {
        let mut names = vec![c.subject.clone()];
        if let ObjectId::Process(p) = &c.object {
            names.push(p.clone());
        }
        for name in names {
            if model.subjects.contains_key(&name) || !seen.insert(name.clone()) {
                continue;
            }
            findings.push(Finding {
                severity: Severity::Medium,
                code: "dangling-ac-id",
                subject: name.clone(),
                object: "-".into(),
                detail: "identity appears in the policy but no subject is bound to it".into(),
            });
        }
    }
}

/// Rule: untrusted-to-actuator-path — taint reachability from untrusted
/// subjects into actuation.
fn check_actuator_paths(model: &PolicyModel, findings: &mut Vec<Finding>) {
    for path in untrusted_actuator_paths(model) {
        let subject = path.split(' ').next().unwrap_or("?").to_string();
        // The path's source is untrusted by construction, so this always
        // escalates; `High` covers a source that lost its binding.
        findings.push(Finding {
            severity: escalate(model, &subject, Severity::High),
            code: "untrusted-to-actuator-path",
            subject,
            object: "actuators".into(),
            detail: path,
        });
    }
}

/// Rules: attenuation-violation / revocation-leak / expired-cap-live /
/// object-masquerade — the capability-flow closure's derivation
/// invariants, each finding carrying its derivation chain as evidence.
fn check_derivations(model: &PolicyModel, findings: &mut Vec<Finding>) {
    if model.caps.is_empty() {
        return;
    }
    let cl = flow::closure(&model.caps);
    let kids = model.caps.children();
    for f in &cl.findings {
        let severity = match f.kind {
            // A slot the kernel would wrongly honor: breaks the security
            // argument outright, worse in untrusted hands.
            FlowKind::AttenuationViolation | FlowKind::ExpiredCapLive => {
                escalate(model, &f.holder, Severity::High)
            }
            // A leak errors as soon as the revoked-but-live right *or
            // anything derived from it* sits in untrusted hands: the
            // whole subtree survived the revoke, so every descendant is
            // the same TOCTOU window the race detector demonstrates
            // dynamically.
            FlowKind::RevocationLeak => {
                if leak_reaches_untrusted(model, &kids, f.cap) {
                    Severity::Error
                } else {
                    escalate(model, &f.holder, Severity::High)
                }
            }
            // Type confusion is exploitable only where handles are
            // guessable; elsewhere it is a (serious) hygiene defect.
            FlowKind::ObjectMasquerade => {
                if flow::masquerade_exploitable(model) {
                    escalate(model, &f.holder, Severity::High)
                } else {
                    Severity::Medium
                }
            }
        };
        let chain = f
            .chain
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" -> ");
        findings.push(Finding {
            severity,
            code: f.kind.code(),
            subject: f.holder.clone(),
            object: f.object.to_string(),
            detail: format!("{} [chain: {chain}]", f.detail),
        });
    }
}

/// Whether the derivation subtree rooted at `cap` (the leaked slot and
/// everything derived from it) contains a capability held by an
/// untrusted subject. `kids` is the graph's child adjacency.
fn leak_reaches_untrusted(
    model: &PolicyModel,
    kids: &[Vec<crate::flow::CapId>],
    cap: crate::flow::CapId,
) -> bool {
    let mut queue = vec![cap];
    let mut seen = BTreeSet::new();
    while let Some(id) = queue.pop() {
        if !seen.insert(id) {
            continue; // defensive: malformed parent pointers
        }
        if is_untrusted(model, &model.caps.node(id).holder) {
            return true;
        }
        queue.extend(kids[id.0 as usize].iter().copied());
    }
    false
}

/// Rule: derived-cap-escalation — an untrusted subject reaches a
/// safety-relevant asset *through* an anomalous capability edge. The
/// shortest chain is the finding's evidence.
fn check_escalation_witnesses(model: &PolicyModel, findings: &mut Vec<Finding>) {
    if model.caps.is_empty() {
        return;
    }
    for w in flow::escalation_witnesses(model) {
        if !w.via_caps {
            continue; // channel-direct routes are covered by other rules
        }
        findings.push(Finding {
            // The subject is untrusted by construction of the search.
            severity: Severity::Error,
            code: "derived-cap-escalation",
            subject: w.subject.clone(),
            object: w.hops.last().cloned().unwrap_or_default(),
            detail: w.render(),
        });
    }
}

/// Rule: least-privilege-diff — one summary finding comparing deliverable
/// message edges against the AADL-minimal policy.
fn least_privilege_diff(
    model: &PolicyModel,
    justification: &Justification,
    findings: &mut Vec<Finding>,
) {
    let mut actual: BTreeSet<(String, String, u32)> = BTreeSet::new();
    for c in &model.channels {
        let receiver = match (&c.kind, &c.object) {
            (ChannelKind::AsyncSend | ChannelKind::RpcCall, ObjectId::Process(p)) => p.clone(),
            (ChannelKind::QueueWrite, ObjectId::Queue(q)) => match model.queue_readers.get(q) {
                Some(r) => r.clone(),
                None => continue,
            },
            _ => continue,
        };
        for t in 0..64 {
            if t != MT_ACK && c.msg_types.contains(MsgType::new(t)) {
                actual.insert((c.subject.clone(), receiver.clone(), t));
            }
        }
        if c.msg_types == MsgTypeSet::All {
            // `type_bits` saturates; record symbolically as one wildcard.
            actual.insert((c.subject.clone(), receiver.clone(), u32::MAX));
        }
    }
    let minimal: BTreeSet<(String, String, u32)> = justification
        .app_edges
        .iter()
        .filter(|(_, _, t)| *t != MT_ACK)
        .cloned()
        .collect();
    let excess = actual.difference(&minimal).count();
    findings.push(Finding {
        severity: Severity::Info,
        code: "least-privilege-diff",
        subject: "policy".into(),
        object: model.platform.to_string(),
        detail: format!(
            "{} deliverable sender->receiver message edges; {} required by AADL connections; {} excess",
            actual.len(),
            minimal.len(),
            excess
        ),
    });
}

/// Renders findings as a JSON array (hand-rolled: stable, no deps).
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"severity\": \"{}\", \"code\": \"{}\", \"subject\": \"{}\", \"object\": \"{}\", \"detail\": \"{}\"}}{}\n",
            f.severity,
            esc(f.code),
            esc(&f.subject),
            esc(&f.object),
            esc(&f.detail),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

/// The attack classes the analyzer covers: the nine matrix attacks, the
/// two capability-flow classes, and the two churn-race classes.
pub const ATTACK_CLASSES: [&str; 13] = [
    "spoof-sensor-data",
    "spoof-actuator-cmds",
    "kill-critical",
    "fork-bomb",
    "brute-force-handles",
    "flood-legit-channel",
    "direct-device-write",
    "setpoint-tamper",
    "replay-setpoint",
    "kernel-object-masquerade",
    "derived-capability-escalation",
    "capability-race",
    "use-after-revoke",
];

/// Renders findings as a JSON report object: the covered attack classes
/// plus the findings array of [`findings_to_json`]. Ordering is
/// deterministic ([`lint`] sorts by severity, then subject/object ids).
pub fn findings_report_json(findings: &[Finding]) -> String {
    let classes = ATTACK_CLASSES
        .iter()
        .map(|c| format!("\"{c}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let body = findings_to_json(findings)
        .lines()
        .collect::<Vec<_>>()
        .join("\n  ");
    format!("{{\n  \"attack_classes\": [{classes}],\n  \"findings\": {body}\n}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Channel, PlatformTraits, PolicyModel, Trust};
    use bas_core::scenario::Platform;

    fn traits() -> PlatformTraits {
        PlatformTraits {
            kernel_stamped_identity: true,
            rpc_in_band_validation: false,
            uid_root_bypass: false,
            unguessable_handles: true,
        }
    }

    fn send(subject: &str, receiver: &str, types: &[u32]) -> Channel {
        Channel {
            subject: subject.into(),
            object: ObjectId::Process(receiver.into()),
            op: Operation::Send,
            msg_types: MsgTypeSet::of(types.iter().map(|&t| MsgType::new(t))),
            kind: ChannelKind::AsyncSend,
            badge: None,
        }
    }

    fn justification() -> Justification {
        let mut j = Justification::default();
        j.app_edges.insert(("a".into(), "b".into(), 1));
        j.subjects.insert("a".into());
        j.subjects.insert("b".into());
        j
    }

    #[test]
    fn justified_channel_is_clean() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.add_subject("a", Trust::Trusted, None);
        m.add_subject("b", Trust::Trusted, None);
        m.channels.push(send("a", "b", &[1]));
        m.normalize();
        let f = lint(&m, &justification());
        assert!(f.iter().all(|x| x.severity == Severity::Info), "{f:#?}");
    }

    #[test]
    fn extra_type_on_justified_pair_is_low() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.add_subject("a", Trust::Trusted, None);
        m.add_subject("b", Trust::Trusted, None);
        m.channels.push(send("a", "b", &[1, 5]));
        m.normalize();
        let f = lint(&m, &justification());
        let unused: Vec<_> = f
            .iter()
            .filter(|x| x.code == "unused-message-type")
            .collect();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].severity, Severity::Low);
    }

    #[test]
    fn unjustified_channel_is_high() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.add_subject("a", Trust::Trusted, None);
        m.add_subject("b", Trust::Trusted, None);
        m.channels.push(send("b", "a", &[2]));
        m.normalize();
        let f = lint(&m, &justification());
        assert!(f
            .iter()
            .any(|x| x.code == "over-granted-capability" && x.severity == Severity::High));
    }

    #[test]
    fn wildcard_grant_is_high() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.add_subject("a", Trust::Trusted, None);
        m.add_subject("b", Trust::Trusted, None);
        m.channels.push(Channel {
            msg_types: MsgTypeSet::All,
            ..send("a", "b", &[])
        });
        m.normalize();
        let f = lint(&m, &justification());
        assert!(f.iter().any(|x| x.detail.contains("wildcard")));
    }

    #[test]
    fn dangling_identity_flagged_once() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.add_subject("a", Trust::Trusted, None);
        m.channels.push(send("a", "ac107", &[1]));
        m.channels.push(send("a", "ac107", &[2]));
        m.normalize();
        let f = lint(&m, &justification());
        let dangling: Vec<_> = f.iter().filter(|x| x.code == "dangling-ac-id").collect();
        assert_eq!(dangling.len(), 1);
        assert_eq!(dangling[0].subject, "ac107");
    }

    #[test]
    fn untrusted_queue_access_is_error() {
        let mut m = PolicyModel::new(Platform::Linux, traits());
        m.traits.kernel_stamped_identity = false;
        m.add_subject("web", Trust::Untrusted, None);
        m.channels.push(Channel {
            subject: "web".into(),
            object: ObjectId::Queue("/mq_q".into()),
            op: Operation::Send,
            msg_types: MsgTypeSet::of([MsgType::new(1)]),
            kind: ChannelKind::QueueWrite,
            badge: None,
        });
        m.normalize();
        let mut j = justification();
        j.queue_membership
            .insert("/mq_q".into(), ["sensor".to_string()].into());
        let f = lint(&m, &j);
        assert!(f
            .iter()
            .any(|x| x.code == "ambient-authority-queue" && x.severity == Severity::Error));
    }

    #[test]
    fn trusted_queue_access_stays_medium() {
        let mut m = PolicyModel::new(Platform::Linux, traits());
        m.add_subject("sensor2", Trust::Trusted, None);
        m.channels.push(Channel {
            subject: "sensor2".into(),
            object: ObjectId::Queue("/mq_q".into()),
            op: Operation::Send,
            msg_types: MsgTypeSet::of([MsgType::new(1)]),
            kind: ChannelKind::QueueWrite,
            badge: None,
        });
        m.normalize();
        let mut j = justification();
        j.queue_membership
            .insert("/mq_q".into(), ["sensor".to_string()].into());
        let f = lint(&m, &j);
        assert!(f
            .iter()
            .any(|x| x.code == "ambient-authority-queue" && x.severity == Severity::Medium));
    }

    #[test]
    fn untrusted_channel_escalates_to_error() {
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.add_subject("a", Trust::Trusted, None);
        m.add_subject("w", Trust::Untrusted, None);
        m.channels.push(send("w", "a", &[2]));
        m.normalize();
        let f = lint(&m, &justification());
        assert!(f
            .iter()
            .any(|x| x.code == "over-granted-capability" && x.severity == Severity::Error));
        assert_eq!(f[0].severity, Severity::Error, "errors sort first");
    }

    #[test]
    fn revocation_leak_escalates_when_the_subtree_reaches_untrusted_hands() {
        use crate::flow::{op, DerivationKind, Perms};
        // root(a) -> mid(b) -> leaf(w, untrusted); node-local root revoke
        // leaks mid and leaf. b is trusted, but the leak flows onward to
        // w — both findings must error.
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.add_subject("a", Trust::Trusted, None);
        m.add_subject("b", Trust::Trusted, None);
        m.add_subject("w", Trust::Untrusted, None);
        let r = m.caps.root(
            "a",
            ObjectId::Device(DeviceId::ALARM),
            Perms::of(op::DEV_WRITE),
        );
        let mid = m
            .caps
            .derive(r, "b", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        m.caps
            .derive(mid, "w", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        m.caps.revoke(r);
        m.normalize();
        let leaks: Vec<_> = lint(&m, &justification())
            .into_iter()
            .filter(|x| x.code == "revocation-leak")
            .collect();
        assert_eq!(leaks.len(), 2, "one finding per leaked descendant");
        for leak in &leaks {
            assert_eq!(
                leak.severity,
                Severity::Error,
                "{}: leak reaches untrusted hands",
                leak.subject
            );
        }

        // Control: the same chain ending in trusted hands stays High.
        let mut m = PolicyModel::new(Platform::Minix, traits());
        m.add_subject("a", Trust::Trusted, None);
        m.add_subject("b", Trust::Trusted, None);
        let r = m.caps.root(
            "a",
            ObjectId::Device(DeviceId::ALARM),
            Perms::of(op::DEV_WRITE),
        );
        m.caps
            .derive(r, "b", DerivationKind::Grant, Perms::of(op::DEV_WRITE));
        m.caps.revoke(r);
        m.normalize();
        let leaks: Vec<_> = lint(&m, &justification())
            .into_iter()
            .filter(|x| x.code == "revocation-leak")
            .collect();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].severity, Severity::High, "trusted subtree");
    }

    #[test]
    fn findings_sorted_and_json_escapes() {
        let findings = vec![
            Finding {
                severity: Severity::Low,
                code: "unused-message-type",
                subject: "a".into(),
                object: "b".into(),
                detail: "x".into(),
            },
            Finding {
                severity: Severity::High,
                code: "over-granted-capability",
                subject: "a".into(),
                object: "b".into(),
                detail: "say \"hi\"".into(),
            },
        ];
        let json = findings_to_json(&findings);
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
