//! Attack prediction by reachability over the Policy IR.
//!
//! For each attack of the paper's §IV-D matrix the predictor walks the
//! channel graph from the attacker's position (the untrusted web
//! interface) and decides two things *without running anything*:
//!
//! * **mechanism delivery** — does the attack's primitive get past the
//!   enforcement point it is judged at (kernel ACM / capability check /
//!   DAC / in-band server reply)?
//! * **compromise** — does the delivered effect reach a safety-relevant
//!   sink (controller actuation state, actuator drivers, device
//!   registers, or the liveness of a critical process)?
//!
//! The pair maps onto the dynamic harness verdicts: compromise ⇒
//! `Compromised`, delivery without compromise ⇒ `ResourceExhaustionOnly`,
//! neither ⇒ `Stopped`.

use bas_attack::expectations::Expectation;
use bas_attack::AttackId;
use bas_core::proto::{MT_ALARM_CMD, MT_FAN_CMD, MT_SENSOR_READING, MT_SETPOINT};
use bas_sim::device::DeviceId;

use crate::ir::{ChannelKind, PolicyModel};

/// The static verdict for one `(policy, attack)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticVerdict {
    /// The attack primitive gets past its enforcement point at least once.
    pub mechanism_delivers: bool,
    /// The attack reaches a safety-relevant sink (plant compromise or
    /// loss of a critical process).
    pub compromised: bool,
    /// Human-readable justification (one line).
    pub rationale: String,
}

/// Collapses a verdict to the paper's three-valued outcome.
pub fn expectation(v: &StaticVerdict) -> Expectation {
    if v.compromised {
        Expectation::Compromised
    } else if v.mechanism_delivers {
        Expectation::ResourceExhaustionOnly
    } else {
        Expectation::Stopped
    }
}

/// Whether a delivered message of `mtype` from `sender` is *accepted* by
/// the receiving application (authentication + range validation).
fn delivered_and_accepted(
    model: &PolicyModel,
    sender: &str,
    receiver: &str,
    mtype: u32,
    in_range: bool,
) -> (bool, bool) {
    let Some(ch) = model.delivery_channel(sender, receiver, mtype) else {
        return (false, false);
    };
    let accepted = model.app_accepts(sender, receiver, mtype, in_range);
    // On an RPC-call channel the mechanism verdict *is* the server's
    // in-band reply: a rejected message never counts as delivered.
    let mech = if ch.kind == ChannelKind::RpcCall {
        accepted
    } else {
        true
    };
    (mech, accepted)
}

/// Predicts the outcome of `attack` mounted from the model's untrusted
/// subject (the scenario's web interface).
pub fn predict(model: &PolicyModel, attack: AttackId) -> StaticVerdict {
    let web = model.roles.web.as_str();
    let ctrl = model.roles.controller.as_str();
    let heater = model.roles.heater.as_str();
    let alarm = model.roles.alarm.as_str();

    match attack {
        AttackId::SpoofSensorData => {
            let (mech, accepted) =
                delivered_and_accepted(model, web, ctrl, MT_SENSOR_READING, true);
            let rationale = if !mech && !accepted {
                format!("no accepted {web} -> {ctrl} sensor-reading channel")
            } else if !accepted {
                format!("{ctrl} authenticates readings; {web} is not the sensor")
            } else {
                format!("{web} can inject accepted readings into {ctrl}")
            };
            StaticVerdict {
                mechanism_delivers: mech,
                compromised: accepted,
                rationale,
            }
        }
        AttackId::SpoofActuatorCommands => {
            let targets = [(heater, MT_FAN_CMD), (alarm, MT_ALARM_CMD)];
            let mut mech = false;
            let mut accepted = false;
            for (target, mtype) in targets {
                let (m, a) = delivered_and_accepted(model, web, target, mtype, true);
                mech |= m;
                accepted |= a && model.delivery_channel(web, target, mtype).is_some();
            }
            let rationale = if accepted {
                format!("{web} reaches an actuator driver; drivers obey any well-formed command")
            } else {
                format!("no {web} -> actuator command channel")
            };
            StaticVerdict {
                mechanism_delivers: mech,
                compromised: accepted,
                rationale,
            }
        }
        AttackId::KillCritical => {
            let can = model.can_kill(web, ctrl) || model.can_kill(web, alarm);
            let rationale = if can {
                format!("{web} holds kill authority over a critical process")
            } else {
                format!("{web} has no kill authority over {ctrl} or {alarm}")
            };
            StaticVerdict {
                mechanism_delivers: can,
                compromised: can,
                rationale,
            }
        }
        AttackId::ForkBomb => {
            let mech = model.can_fork(web) && model.fork_quota.get(web) != Some(&0);
            let rationale = match (model.can_fork(web), model.fork_quota.get(web)) {
                (false, _) => format!("{web} holds no process-creation authority"),
                (true, Some(0)) => format!("{web} fork quota is zero"),
                (true, Some(n)) => {
                    format!("{web} can fork up to quota {n}; resource pressure only")
                }
                (true, None) => format!("{web} can fork without limit; resource pressure only"),
            };
            StaticVerdict {
                mechanism_delivers: mech,
                compromised: false,
                rationale,
            }
        }
        AttackId::BruteForceHandles => {
            let reach = model.enumerable_handles.get(web).copied().unwrap_or(0);
            let legit = model.legitimate_handles.get(web).copied().unwrap_or(0);
            let mech = reach > legit;
            let rationale = format!(
                "enumeration reaches {reach} handle(s), {legit} legitimately {}'s",
                web
            );
            StaticVerdict {
                mechanism_delivers: mech,
                compromised: false,
                rationale,
            }
        }
        AttackId::FloodLegitChannel => {
            let ch = model.delivery_channel(web, ctrl, MT_SETPOINT);
            // The flood payload is junk: on an RPC channel the server's
            // validation reply is the verdict; elsewhere the kernel/DAC
            // admits the traffic regardless of content.
            let mech = match ch {
                Some(c) if c.kind == ChannelKind::RpcCall => {
                    model.app_accepts(web, ctrl, MT_SETPOINT, false)
                }
                Some(_) => true,
                None => false,
            };
            let rationale = if mech {
                format!("{web} may flood its setpoint channel; contents are discarded")
            } else {
                format!("flood dies at the enforcement point before {ctrl}")
            };
            StaticVerdict {
                mechanism_delivers: mech,
                compromised: false,
                rationale,
            }
        }
        AttackId::DirectDeviceWrite => {
            let can = model.device_channel(web, DeviceId::FAN, true).is_some()
                || model.device_channel(web, DeviceId::ALARM, true).is_some();
            let rationale = if can {
                format!("{web} holds write access to actuator device registers")
            } else {
                format!("{web} holds no device capability/node access")
            };
            StaticVerdict {
                mechanism_delivers: can,
                compromised: can,
                rationale,
            }
        }
        AttackId::SetpointTamper => {
            let (_, accepted) = delivered_and_accepted(model, web, ctrl, MT_SETPOINT, false);
            // Out-of-range setpoints: acceptance is the whole story —
            // every platform's controller range-validates, so tampering
            // is judged at the application acknowledgment.
            let rationale = if accepted {
                format!("{ctrl} accepts out-of-range setpoints")
            } else {
                format!("{ctrl} range-validates setpoints; tamper rejected in-band")
            };
            StaticVerdict {
                mechanism_delivers: accepted,
                compromised: accepted,
                rationale,
            }
        }
        AttackId::ReplaySetpoint => {
            let (_, accepted) = delivered_and_accepted(model, web, ctrl, MT_SETPOINT, true);
            let rationale = if accepted {
                format!("replayed setpoints are in-range and unauthenticated; {ctrl} accepts them")
            } else {
                format!("no {web} -> {ctrl} setpoint channel")
            };
            StaticVerdict {
                mechanism_delivers: accepted,
                compromised: accepted,
                rationale,
            }
        }
    }
}

/// Paths by which untrusted subjects influence actuation, one line per
/// path (sorted). Used by the linter's `untrusted-to-actuator-path`
/// rule. This is a projection of the escalation-witness search
/// ([`crate::flow::escalation_witnesses`]) onto the actuator assets:
/// direct device access, unmediated commands into a driver, tainted
/// control input — plus any capability-borne route a breached
/// derivation opens.
pub fn untrusted_actuator_paths(model: &PolicyModel) -> Vec<String> {
    use crate::flow::Asset;
    let mut paths: Vec<String> = crate::flow::escalation_witnesses(model)
        .iter()
        .filter(|w| {
            matches!(
                w.asset,
                Asset::DeviceWrite(_) | Asset::ActuatorCommand(_) | Asset::TaintedActuation { .. }
            )
        })
        .map(|w| w.render())
        .collect();
    paths.sort();
    paths.dedup();
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Channel, ObjectId, Operation, PlatformTraits, PolicyModel, Trust};
    use bas_acm::matrix::MsgTypeSet;
    use bas_acm::MsgType;
    use bas_core::scenario::Platform;

    fn base(kind: ChannelKind, stamped: bool) -> PolicyModel {
        let mut m = PolicyModel::new(
            Platform::Minix,
            PlatformTraits {
                kernel_stamped_identity: stamped,
                rpc_in_band_validation: kind == ChannelKind::RpcCall,
                uid_root_bypass: false,
                unguessable_handles: true,
            },
        );
        m.roles.web = "web".into();
        m.roles.controller = "ctrl".into();
        m.roles.heater = "heater".into();
        m.roles.alarm = "alarm".into();
        m.add_subject("web", Trust::Untrusted, None);
        m.add_subject("ctrl", Trust::Trusted, None);
        m.contracts.authenticated.insert(
            ("ctrl".into(), MT_SENSOR_READING),
            ["sensor".to_string()].into(),
        );
        m.contracts.validated.insert(("ctrl".into(), MT_SETPOINT));
        m.contracts
            .actuation_inputs
            .insert(("ctrl".into(), MT_SENSOR_READING));
        m.channels.push(Channel {
            subject: "web".into(),
            object: ObjectId::Process("ctrl".into()),
            op: Operation::Send,
            msg_types: MsgTypeSet::of([MsgType::new(MT_SENSOR_READING), MsgType::new(MT_SETPOINT)]),
            kind,
            badge: Some(2),
        });
        m.normalize();
        m
    }

    #[test]
    fn spoof_on_async_channel_delivers_but_dies_at_auth() {
        let m = base(ChannelKind::AsyncSend, true);
        let v = predict(&m, AttackId::SpoofSensorData);
        assert!(v.mechanism_delivers, "kernel admits the send");
        assert!(!v.compromised, "app authentication rejects it");
        assert_eq!(expectation(&v), Expectation::ResourceExhaustionOnly);
    }

    #[test]
    fn spoof_on_rpc_channel_is_stopped_in_band() {
        let m = base(ChannelKind::RpcCall, true);
        let v = predict(&m, AttackId::SpoofSensorData);
        assert!(!v.mechanism_delivers, "rejection is the RPC reply");
        assert_eq!(expectation(&v), Expectation::Stopped);
    }

    #[test]
    fn spoof_without_kernel_identity_compromises() {
        let m = base(ChannelKind::QueueWrite, false);
        // Queue delivery needs reader metadata.
        let mut m = m;
        m.channels = vec![Channel {
            subject: "web".into(),
            object: ObjectId::Queue("/mq_in".into()),
            op: Operation::Send,
            msg_types: MsgTypeSet::of([MsgType::new(MT_SENSOR_READING)]),
            kind: ChannelKind::QueueWrite,
            badge: None,
        }];
        m.queue_readers.insert("/mq_in".into(), "ctrl".into());
        let v = predict(&m, AttackId::SpoofSensorData);
        assert!(v.compromised, "no sender identity to authenticate");
        assert_eq!(expectation(&v), Expectation::Compromised);
    }

    #[test]
    fn replay_compromises_wherever_setpoints_flow() {
        for kind in [ChannelKind::AsyncSend, ChannelKind::RpcCall] {
            let m = base(kind, true);
            let v = predict(&m, AttackId::ReplaySetpoint);
            assert_eq!(expectation(&v), Expectation::Compromised, "{kind:?}");
        }
    }

    #[test]
    fn tamper_is_stopped_by_validation() {
        let m = base(ChannelKind::AsyncSend, true);
        let v = predict(&m, AttackId::SetpointTamper);
        assert_eq!(expectation(&v), Expectation::Stopped);
    }

    #[test]
    fn fork_quota_zero_stops_the_bomb() {
        let mut m = base(ChannelKind::AsyncSend, true);
        m.channels.push(Channel {
            subject: "web".into(),
            object: ObjectId::ProcessManager,
            op: Operation::Fork,
            msg_types: MsgTypeSet::EMPTY,
            kind: ChannelKind::SysOp,
            badge: None,
        });
        let v = predict(&m, AttackId::ForkBomb);
        assert_eq!(expectation(&v), Expectation::ResourceExhaustionOnly);
        m.fork_quota.insert("web".into(), 0);
        let v = predict(&m, AttackId::ForkBomb);
        assert_eq!(expectation(&v), Expectation::Stopped);
    }

    #[test]
    fn taint_paths_surface_unauthenticated_influence() {
        let m = base(ChannelKind::QueueWrite, false);
        let mut m = m;
        m.channels = vec![Channel {
            subject: "web".into(),
            object: ObjectId::Queue("/mq_in".into()),
            op: Operation::Send,
            msg_types: MsgTypeSet::of([MsgType::new(MT_SENSOR_READING)]),
            kind: ChannelKind::QueueWrite,
            badge: None,
        }];
        m.queue_readers.insert("/mq_in".into(), "ctrl".into());
        let paths = untrusted_actuator_paths(&m);
        assert_eq!(paths.len(), 1, "{paths:?}");
        assert!(paths[0].contains("tainted control input"));
        // With kernel identity, the same graph is clean.
        let m2 = base(ChannelKind::AsyncSend, true);
        assert!(untrusted_actuator_paths(&m2).is_empty());
    }
}
