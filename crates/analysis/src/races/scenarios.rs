//! Seeded churn scenarios: live kernels under deterministic capability
//! mutation schedules.
//!
//! Each scenario boots the real five-process stack on one platform,
//! enables the kernel's capability-event stream, installs a
//! `bas-faults` schedule of [`FaultKind::CapChurn`] events, runs the
//! lockstep engine, and records the exact race kinds the detector must
//! (and must not) find. The catalog is deliberately asymmetric across
//! platforms, because the kernels *are*: a timed revoke between IPC
//! periods is clean on MINIX and seL4 (the next admission check denies
//! it) but races on Linux, where an mq descriptor opened before the
//! revoke stays usable forever — the DAC check happens only at
//! `mq_open`. Armed schedules (fire right after the Nth successful
//! admission check) land inside the check→use window deterministically
//! on every platform, which is what makes microsecond-wide rendezvous
//! TOCTOU reproducible in a seeded catalog.

use bas_core::engine::{PlatformKernel, ScenarioEngine};
use bas_core::platform::linux::LinuxStack;
use bas_core::platform::minix::MinixStack;
use bas_core::platform::sel4::Sel4Stack;
use bas_core::proto::names;
use bas_core::scenario::{Platform, Scenario, ScenarioConfig};
use bas_faults::inject::install;
use bas_faults::plan::{FaultEvent, FaultKind, FaultPlan};
use bas_sim::caps::{CapChurnOp, CapTrace, ChurnKind};
use bas_sim::time::SimDuration;

use super::detect::RaceKind;

/// One seeded churn scenario with its expected detector outcome.
pub struct ChurnScenario {
    /// Stable id, `<platform-key>/<slug>`.
    pub name: String,
    /// The platform under churn.
    pub platform: Platform,
    /// The churn schedule, expressed as a regular fault plan.
    pub plan: FaultPlan,
    /// Virtual time to run.
    pub horizon: SimDuration,
    /// The exact *set* of race kinds the detector must report (empty =
    /// the trace must be race-free; the zero-false-positive half).
    pub expect: Vec<RaceKind>,
    /// Why the expectation is what it is.
    pub note: &'static str,
}

fn key(platform: Platform) -> &'static str {
    match platform {
        Platform::Linux => "linux",
        Platform::Minix => "minix",
        Platform::Sel4 => "sel4",
    }
}

fn churn(at: SimDuration, op: CapChurnOp) -> FaultEvent {
    FaultEvent::new(
        at,
        FaultKind::CapChurn {
            op,
            arm_after_checks: None,
        },
    )
}

fn armed(at: SimDuration, op: CapChurnOp, after_checks: u32) -> FaultEvent {
    FaultEvent::new(
        at,
        FaultKind::CapChurn {
            op,
            arm_after_checks: Some(after_checks),
        },
    )
}

/// Builds the full catalog (3 platforms × 7 shapes = 21 scenarios),
/// platform-major, in deterministic order.
pub fn churn_scenarios() -> Vec<ChurnScenario> {
    let s = SimDuration::from_secs;
    let mut out = Vec::new();
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        let k = key(platform);
        // Linux admission checks happen once, at boot-time `mq_open`;
        // MINIX and seL4 re-check every send. An armed op must target
        // the check stream the platform actually has.
        let arm_delay = if platform == Platform::Linux { 0 } else { 2 };

        // 1. Grant-only churn: a single widening write. Nothing is
        //    invalidated, one actor cannot conflict with itself.
        out.push(ChurnScenario {
            name: format!("{k}/grant-only"),
            platform,
            plan: FaultPlan::new(
                "grant-only",
                vec![churn(
                    s(60),
                    CapChurnOp::new(ChurnKind::Grant, names::SENSOR, names::CONTROL),
                )],
            ),
            horizon: SimDuration::from_mins(3),
            expect: vec![],
            note: "a widening write invalidates nothing: detector must stay silent",
        });

        // 2. Armed op whose window never opens: the alarm actuator
        //    never initiates IPC toward the sensor, so the admission
        //    check the op waits for never happens.
        out.push(ChurnScenario {
            name: format!("{k}/armed-never-fires"),
            platform,
            plan: FaultPlan::new(
                "armed-never-fires",
                vec![armed(
                    s(0),
                    CapChurnOp::new(ChurnKind::Revoke, names::ALARM, names::SENSOR),
                    0,
                )],
            ),
            horizon: SimDuration::from_mins(3),
            expect: vec![],
            note: "no matching admission check ever fires the armed op: no writes, no races",
        });

        // 3. Timed revoke + later regrant, landing *between* IPC
        //    periods. MINIX and seL4 re-check at every send, so the
        //    revocation is enforced cleanly; Linux keeps honoring the
        //    descriptor the sensor opened at boot.
        out.push(ChurnScenario {
            name: format!("{k}/timed-revoke-regrant"),
            platform,
            plan: FaultPlan::new(
                "timed-revoke-regrant",
                vec![
                    churn(
                        s(60),
                        CapChurnOp::new(ChurnKind::Revoke, names::SENSOR, names::CONTROL),
                    ),
                    churn(
                        s(120),
                        CapChurnOp::new(ChurnKind::Grant, names::SENSOR, names::CONTROL),
                    ),
                ],
            ),
            horizon: SimDuration::from_mins(3),
            expect: if platform == Platform::Linux {
                vec![RaceKind::Toctou]
            } else {
                vec![]
            },
            note: "per-send re-checking makes timed revocation clean; \
                   Linux's open-time-only check leaves a stale descriptor",
        });

        // 4. Armed revoke inside the admission window: the classic
        //    TOCTOU, deterministic on every platform.
        out.push(ChurnScenario {
            name: format!("{k}/armed-revoke-toctou"),
            platform,
            plan: FaultPlan::new(
                "armed-revoke-toctou",
                vec![
                    armed(
                        s(0),
                        CapChurnOp::new(ChurnKind::Revoke, names::SENSOR, names::CONTROL),
                        arm_delay,
                    ),
                    churn(
                        s(120),
                        CapChurnOp::new(ChurnKind::Grant, names::SENSOR, names::CONTROL),
                    ),
                ],
            ),
            horizon: SimDuration::from_mins(3),
            expect: vec![RaceKind::Toctou],
            note: "revoke lands after the check and before the delivery that trusts it",
        });

        // 5. Same armed revoke, performed by the victim itself: the
        //    write is program-ordered before the stale use, so this is
        //    an ordered use-after-revoke, not a concurrent TOCTOU.
        out.push(ChurnScenario {
            name: format!("{k}/self-revoke-uar"),
            platform,
            plan: FaultPlan::new(
                "self-revoke-uar",
                vec![
                    armed(
                        s(0),
                        CapChurnOp::new(ChurnKind::Revoke, names::SENSOR, names::CONTROL)
                            .by(names::SENSOR),
                        arm_delay,
                    ),
                    churn(
                        s(120),
                        CapChurnOp::new(ChurnKind::Grant, names::SENSOR, names::CONTROL)
                            .by(names::SENSOR),
                    ),
                ],
            ),
            horizon: SimDuration::from_mins(3),
            expect: vec![RaceKind::UseAfterRevoke],
            note: "the revoker and the stale user are one subject: happens-before \
                   orders write → use, the kernel honors the handle anyway",
        });

        // 6. Armed attenuation inside the window: the right narrows
        //    (MINIX keeps only acks, seL4 strips write, Linux strips
        //    the write bits) between check and delivery.
        out.push(ChurnScenario {
            name: format!("{k}/attenuate-window"),
            platform,
            plan: FaultPlan::new(
                "attenuate-window",
                vec![
                    armed(
                        s(0),
                        CapChurnOp::new(ChurnKind::Attenuate, names::SENSOR, names::CONTROL),
                        arm_delay,
                    ),
                    churn(
                        s(120),
                        CapChurnOp::new(ChurnKind::Grant, names::SENSOR, names::CONTROL),
                    ),
                ],
            ),
            horizon: SimDuration::from_mins(3),
            expect: vec![RaceKind::Toctou],
            note: "attenuation races the window exactly like revocation",
        });

        // 7. Two administrators churning the same right with no
        //    synchronization, plus an armed revoke: the storm shape the
        //    witness minimizer reduces back to single-event causes.
        out.push(ChurnScenario {
            name: format!("{k}/churn-storm"),
            platform,
            plan: FaultPlan::new(
                "churn-storm",
                vec![
                    armed(
                        s(0),
                        CapChurnOp::new(ChurnKind::Revoke, names::SENSOR, names::CONTROL),
                        arm_delay,
                    ),
                    churn(
                        s(60),
                        CapChurnOp::new(ChurnKind::Revoke, names::WEB, names::CONTROL).by("admin"),
                    ),
                    churn(
                        s(90),
                        CapChurnOp::new(ChurnKind::Grant, names::WEB, names::CONTROL).by("tenant"),
                    ),
                    churn(
                        s(150),
                        CapChurnOp::new(ChurnKind::Grant, names::SENSOR, names::CONTROL),
                    ),
                ],
            ),
            horizon: SimDuration::from_mins(4),
            expect: vec![RaceKind::Toctou, RaceKind::WriteWrite],
            note: "unsynchronized admins conflict on the web right while the armed \
                   revoke races the sensor window",
        });
    }
    out
}

/// Boots `platform`, enables capability tracing, installs `plan`, runs
/// for `horizon`, and returns the recorded trace. Fully deterministic:
/// the same plan always yields the same trace.
pub fn run_churn_plan(platform: Platform, plan: &FaultPlan, horizon: SimDuration) -> CapTrace {
    fn collect<K: PlatformKernel>(plan: &FaultPlan, horizon: SimDuration) -> CapTrace {
        let config = ScenarioConfig::default();
        let mut engine = ScenarioEngine::<K>::boot(&config, K::Overrides::default());
        // Tracing goes on before the first chunk: spawned processes
        // only execute once the kernel steps, so even boot-time opens
        // land in the stream.
        engine.stack.enable_cap_trace();
        let _log = install(&mut engine, plan);
        engine.run_for(horizon);
        engine.stack.cap_trace()
    }
    match platform {
        Platform::Minix => collect::<MinixStack>(plan, horizon),
        Platform::Sel4 => collect::<Sel4Stack>(plan, horizon),
        Platform::Linux => collect::<LinuxStack>(plan, horizon),
    }
}

/// Runs one catalog scenario and returns its trace.
pub fn run_scenario(sc: &ChurnScenario) -> CapTrace {
    run_churn_plan(sc.platform, &sc.plan, sc.horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_platform_major_and_unique() {
        let ss = churn_scenarios();
        assert_eq!(ss.len(), 21);
        assert_eq!(ss[0].name, "linux/grant-only");
        assert_eq!(ss[7].name, "minix/grant-only");
        assert_eq!(ss[14].name, "sel4/grant-only");
        let names: std::collections::BTreeSet<&str> = ss.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 21, "names are unique");
    }

    #[test]
    fn every_scenario_schedule_is_pure_churn() {
        for sc in churn_scenarios() {
            assert!(
                sc.plan
                    .events()
                    .iter()
                    .all(|e| matches!(e.kind, FaultKind::CapChurn { .. })),
                "{}: churn scenarios must not mix in other fault kinds",
                sc.name
            );
        }
    }
}
