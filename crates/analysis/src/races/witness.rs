//! 1-minimal interleaving witnesses, replayed through the real engine.
//!
//! A detected race names two trace events; a *witness* is the smallest
//! churn schedule that still produces it. Minimization is delta-style
//! over the scenario's schedule: repeatedly drop one churn event,
//! re-run the **full** `ScenarioEngine` scenario (no trace surgery —
//! the kernel itself decides what the reduced schedule does), and keep
//! the drop iff a race with the same identity `(kind, cap)` survives.
//! The loop runs to fixpoint, so the result is 1-minimal: removing any
//! single remaining event makes the race vanish. The final fixpoint
//! run doubles as replay confirmation — the reported witness is never
//! an artifact of the reduction, it is a schedule the engine actually
//! executed and the detector actually flagged.

use bas_faults::plan::{FaultEvent, FaultPlan};

use super::detect::{detect, Race, RaceKind};
use super::scenarios::{run_churn_plan, ChurnScenario};

/// A minimized, replay-confirmed schedule for one race.
#[derive(Debug, Clone)]
pub struct RaceWitness {
    /// The scenario the race came from.
    pub scenario: String,
    /// The race's identity.
    pub kind: RaceKind,
    /// The raced capability.
    pub cap: String,
    /// The minimal churn schedule (subset of the scenario's events).
    pub schedule: Vec<FaultEvent>,
    /// Events the minimizer removed.
    pub dropped: usize,
    /// Whether the final fixpoint run still produced the race — by
    /// construction this is the replay check, through the real engine.
    pub replay_confirmed: bool,
}

/// True when running `events` under `sc`'s platform and horizon still
/// yields a race with `race`'s `(kind, cap)` identity.
fn reproduces(sc: &ChurnScenario, events: &[FaultEvent], race: &Race) -> bool {
    let plan = FaultPlan::new(sc.plan.name(), events.to_vec());
    let trace = run_churn_plan(sc.platform, &plan, sc.horizon);
    detect(&trace)
        .iter()
        .any(|r| r.kind == race.kind && r.cap == race.cap)
}

/// Minimizes `sc`'s schedule against `race` and replay-confirms the
/// result. Each candidate reduction is a complete scenario run, so the
/// cost is `O(passes × events)` engine runs — small schedules only.
pub fn minimize(sc: &ChurnScenario, race: &Race) -> RaceWitness {
    let original = sc.plan.events().to_vec();
    let mut events = original.clone();
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < events.len() {
            let mut candidate = events.clone();
            candidate.remove(i);
            if reproduces(sc, &candidate, race) {
                events = candidate;
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }
    let replay_confirmed = reproduces(sc, &events, race);
    RaceWitness {
        scenario: sc.name.clone(),
        kind: race.kind,
        cap: race.cap.clone(),
        dropped: original.len() - events.len(),
        schedule: events,
        replay_confirmed,
    }
}
