//! Capability-churn race detection: happens-before analysis of
//! grant/attenuate/revoke against the *live* kernels.
//!
//! The static half of this crate reasons about policies at rest; this
//! module reasons about policies **in motion**. Every kernel can emit a
//! structured capability-event stream ([`bas_sim::caps::CapTrace`]):
//! grants, attenuations, revocations, admission checks, uses and
//! receives, each bound to a subject and a logical tick, with IPC edges
//! recorded at delivery. On top of that stream:
//!
//! * [`clock`] — vector clocks (Fidge/Mattern) assigned from program
//!   order plus the recorded IPC edges; happens-before and concurrency
//!   queries over event pairs.
//! * [`detect`] — the race detector: check→use pairs racing a
//!   concurrent revoke (TOCTOU), uses strictly after an ordered revoke
//!   the kernel still honored (use-after-revoke), and unordered
//!   effective writes by distinct actors (write-write). Defined purely
//!   over the happens-before closure, so reports are invariant under
//!   trace-equivalent reorderings, and structurally silent on
//!   churn-free traces.
//! * [`scenarios`] — a 21-scenario seeded catalog (3 platforms × 7
//!   churn shapes) driven through the real [`ScenarioEngine`] by
//!   `bas-faults` schedules, with per-platform expected outcomes — the
//!   kernels genuinely differ (Linux's open-time-only check leaves
//!   stale descriptors; MINIX and seL4 re-check per send).
//! * [`witness`] — 1-minimal schedule witnesses: delta-minimize the
//!   churn schedule by re-running the full engine, fixpoint until no
//!   single event can be dropped; the last run is the replay
//!   confirmation.
//! * [`crossval`] — maps every static `revocation-leak` finding from
//!   the derivation fixpoint to a demonstrated dynamic race or a
//!   justified suppression; `exp_cap_races` (E19) checks totality.
//!
//! [`ScenarioEngine`]: bas_core::engine::ScenarioEngine

pub mod clock;
pub mod crossval;
pub mod detect;
pub mod scenarios;
pub mod witness;

pub use clock::{ClockedTrace, VClock};
pub use crossval::{map_revocation_leaks, LeakMapping};
pub use detect::{detect, Race, RaceKind};
pub use scenarios::{churn_scenarios, run_churn_plan, run_scenario, ChurnScenario};
pub use witness::{minimize, RaceWitness};
