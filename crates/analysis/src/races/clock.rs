//! Vector clocks over capability-event streams.
//!
//! Each event's subject is its thread of control: events of one subject
//! are program-ordered by emission sequence, and the recorded IPC edges
//! (`Use → Recv`) induce the only cross-subject ordering. The clock
//! assignment is the classic Fidge/Mattern construction: an event's
//! clock is the join of its subject's running clock with the clocks of
//! all its edge sources, ticked in the subject's own component.
//! Everything not ordered by that closure is *concurrent* — exactly the
//! window the race detector hunts.

use std::collections::BTreeMap;

use bas_sim::caps::CapTrace;

/// A vector clock keyed by subject name. Subjects are dynamic (churn
/// actors appear mid-run), so the map is sparse: an absent component
/// reads as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    counts: BTreeMap<String, u64>,
}

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock::default()
    }

    /// This clock's component for `subject` (0 when absent).
    pub fn get(&self, subject: &str) -> u64 {
        self.counts.get(subject).copied().unwrap_or(0)
    }

    /// Advances `subject`'s component by one.
    pub fn tick(&mut self, subject: &str) {
        *self.counts.entry(subject.to_string()).or_insert(0) += 1;
    }

    /// Pointwise maximum with `other`, in place.
    pub fn join(&mut self, other: &VClock) {
        for (k, &v) in &other.counts {
            let e = self.counts.entry(k.clone()).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
    }

    /// Pointwise `self ≤ other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.counts.iter().all(|(k, &v)| v <= other.get(k))
    }

    /// Neither clock is ≤ the other (and they differ): the two events
    /// are unordered by happens-before.
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

/// A capability trace with one vector clock per event and a fast
/// happens-before query.
#[derive(Debug)]
pub struct ClockedTrace {
    clocks: Vec<VClock>,
    subjects: Vec<String>,
}

impl ClockedTrace {
    /// Assigns vector clocks to `trace` in emission order. Edges whose
    /// source was dropped (capacity) are skipped, matching the log's own
    /// `edge` contract.
    pub fn assign(trace: &CapTrace) -> ClockedTrace {
        let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, e) in trace.events.iter().enumerate() {
            index_of.insert(e.seq, i);
        }
        let mut incoming: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(from, to) in &trace.edges {
            if let (Some(&f), Some(&t)) = (index_of.get(&from), index_of.get(&to)) {
                incoming.entry(t).or_default().push(f);
            }
        }
        let mut state: BTreeMap<&str, VClock> = BTreeMap::new();
        let mut clocks = Vec::with_capacity(trace.events.len());
        let mut subjects = Vec::with_capacity(trace.events.len());
        for (i, e) in trace.events.iter().enumerate() {
            let mut c = state.get(e.subject.as_str()).cloned().unwrap_or_default();
            if let Some(srcs) = incoming.get(&i) {
                for &s in srcs {
                    // Edge sources always precede their targets in any
                    // valid linearization (the kernel records the send
                    // side first), so the source clock is final here.
                    let src: &VClock = &clocks[s];
                    c.join(src);
                }
            }
            c.tick(&e.subject);
            clocks.push(c.clone());
            subjects.push(e.subject.clone());
            state.insert(&trace.events[i].subject, c);
        }
        ClockedTrace { clocks, subjects }
    }

    /// The assigned clock of the event at index `i`.
    pub fn clock(&self, i: usize) -> &VClock {
        &self.clocks[i]
    }

    /// Happens-before between event *indices*: `a → b` iff `a`'s tick is
    /// visible in `b`'s clock (Fidge/Mattern component test).
    pub fn hb(&self, a: usize, b: usize) -> bool {
        a != b && self.clocks[a].get(&self.subjects[a]) <= self.clocks[b].get(&self.subjects[a])
    }

    /// Neither `a → b` nor `b → a`.
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        a != b && !self.hb(a, b) && !self.hb(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sim::caps::{CapEvent, CapOp};
    use bas_sim::time::SimTime;

    fn ev(seq: u64, subject: &str, op: CapOp) -> CapEvent {
        CapEvent {
            seq,
            at: SimTime::ZERO,
            subject: subject.into(),
            op,
            cap: "c".into(),
            object: "o".into(),
            ok: true,
        }
    }

    #[test]
    fn program_order_is_happens_before() {
        let trace = CapTrace {
            events: vec![ev(0, "a", CapOp::Check), ev(1, "a", CapOp::Use)],
            edges: vec![],
        };
        let ct = ClockedTrace::assign(&trace);
        assert!(ct.hb(0, 1));
        assert!(!ct.hb(1, 0));
    }

    #[test]
    fn different_subjects_without_edges_are_concurrent() {
        let trace = CapTrace {
            events: vec![ev(0, "a", CapOp::Use), ev(1, "b", CapOp::Revoke)],
            edges: vec![],
        };
        let ct = ClockedTrace::assign(&trace);
        assert!(ct.concurrent(0, 1));
    }

    #[test]
    fn ipc_edges_order_across_subjects() {
        // a: Use(0) — edge → b: Recv(1) — program order → b: Use(2).
        let trace = CapTrace {
            events: vec![
                ev(0, "a", CapOp::Use),
                ev(1, "b", CapOp::Recv),
                ev(2, "b", CapOp::Use),
            ],
            edges: vec![(0, 1)],
        };
        let ct = ClockedTrace::assign(&trace);
        assert!(ct.hb(0, 1));
        assert!(ct.hb(0, 2), "hb is transitive through the edge");
        assert!(!ct.hb(2, 0));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick("x");
        a.tick("x");
        let mut b = VClock::new();
        b.tick("y");
        a.join(&b);
        assert_eq!(a.get("x"), 2);
        assert_eq!(a.get("y"), 1);
        assert!(b.leq(&a));
    }
}
