//! The capability-churn race detector.
//!
//! Consumes a kernel's [`CapTrace`] and reports three race shapes, all
//! defined purely over the happens-before closure (never over wall
//! order, so the report is invariant under trace-equivalent
//! reorderings):
//!
//! * **TOCTOU** — a stale use (`Use` with `ok = false`: the kernel
//!   honored a handle the current policy no longer authorizes) whose
//!   invalidating write is *concurrent* with it. The admission check the
//!   kernel did perform (`Check`, `ok = true`, same subject and
//!   capability, program-order prior) is attached as the opening edge of
//!   the window when one exists.
//! * **Use-after-revoke** — a stale use the invalidating write
//!   *happens-before*: the revocation was fully ordered before the use
//!   and the kernel still honored the handle (stale descriptor, parked
//!   send, cached translation).
//! * **Write-write** — two effective policy writes on the same
//!   capability by different actors, unordered by happens-before:
//!   last-writer-wins administration with no synchronization.
//!
//! Only *effective* writes (`ok = true` — the policy actually changed)
//! invalidate or conflict; a no-op revoke cannot race anything. With no
//! churn there are no write events and the detector is structurally
//! silent — the zero-false-positive claim `exp_cap_races` checks across
//! the whole attack matrix.

use std::collections::BTreeMap;

use bas_sim::caps::{CapOp, CapTrace};

use super::clock::ClockedTrace;

/// The shape of a detected race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceKind {
    /// Check passed, right revoked concurrently, stale use observed.
    Toctou,
    /// Right revoked strictly before a use the kernel still honored.
    UseAfterRevoke,
    /// Two unordered effective writes by different actors.
    WriteWrite,
}

impl RaceKind {
    /// Stable report code.
    pub fn code(self) -> &'static str {
        match self {
            RaceKind::Toctou => "toctou",
            RaceKind::UseAfterRevoke => "use-after-revoke",
            RaceKind::WriteWrite => "write-write",
        }
    }
}

impl std::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One detected race, anchored to trace event sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The race shape.
    pub kind: RaceKind,
    /// The capability both sides touch.
    pub cap: String,
    /// The object the capability governs.
    pub object: String,
    /// The victim subject (the stale user), or the first writer for
    /// write-write conflicts.
    pub subject: String,
    /// The actor whose write races (the second writer for write-write).
    pub write_actor: String,
    /// The racing write's operation.
    pub write_op: CapOp,
    /// The racing write's event seq.
    pub write_seq: u64,
    /// The representative stale use — minimal by (subject, program
    /// order) so the choice is reorder-invariant (None for write-write).
    pub use_seq: Option<u64>,
    /// The admission check that opened the window, when recorded.
    pub check_seq: Option<u64>,
    /// The first writer's event seq (write-write only).
    pub other_write_seq: Option<u64>,
}

impl Race {
    /// Reorder-invariant identity: what the race *is*, independent of
    /// the seq numbers a particular linearization assigned.
    pub fn key(&self) -> (RaceKind, String, String, String) {
        (
            self.kind,
            self.cap.clone(),
            self.subject.clone(),
            self.write_actor.clone(),
        )
    }
}

/// Runs the detector over one trace. Deterministic, and — because every
/// dedup key and representative choice is made on *linearization-
/// invariant* event identity (subject name + per-subject occurrence
/// index, never raw seq) — the multiset of [`Race::key`]s is identical
/// for every trace-equivalent reordering. The output is sorted by
/// `(cap, kind, write identity)`.
pub fn detect(trace: &CapTrace) -> Vec<Race> {
    let ct = ClockedTrace::assign(trace);
    let ev = &trace.events;

    // Per-subject occurrence index: stable across reorderings because
    // every valid linearization preserves each subject's program order.
    let mut next: BTreeMap<&str, u64> = BTreeMap::new();
    let psi: Vec<u64> = ev
        .iter()
        .map(|e| {
            let n = next.entry(e.subject.as_str()).or_insert(0);
            *n += 1;
            *n - 1
        })
        .collect();
    // The invariant identity of event `i`.
    let ident = |i: usize| (ev[i].subject.clone(), psi[i]);

    let mut by_cap: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, e) in ev.iter().enumerate() {
        by_cap.entry(e.cap.as_str()).or_default().push(i);
    }

    // Keyed dedup: stale races by (cap, kind, invalidating write); write-
    // write conflicts by (cap, both writes, canonically ordered).
    type Key = (String, RaceKind, (String, u64), (String, u64));
    let mut races: BTreeMap<Key, Race> = BTreeMap::new();

    for idxs in by_cap.values() {
        let writes: Vec<usize> = idxs
            .iter()
            .copied()
            .filter(|&i| ev[i].op.is_write() && ev[i].ok)
            .collect();
        if writes.is_empty() {
            continue;
        }
        let invalidating: Vec<usize> = writes
            .iter()
            .copied()
            .filter(|&i| matches!(ev[i].op, CapOp::Revoke | CapOp::Attenuate))
            .collect();

        // Stale uses against each invalidating write: one race per
        // (write, kind), represented by the identity-minimal stale use.
        for &w in &invalidating {
            let mut per_kind: BTreeMap<RaceKind, Vec<usize>> = BTreeMap::new();
            for &u in idxs
                .iter()
                .filter(|&&i| ev[i].op == CapOp::Use && !ev[i].ok)
            {
                if ct.hb(u, w) {
                    // The write is ordered after this use: it cannot be
                    // what invalidated it.
                    continue;
                }
                let kind = if ct.hb(w, u) {
                    RaceKind::UseAfterRevoke
                } else {
                    RaceKind::Toctou
                };
                per_kind.entry(kind).or_default().push(u);
            }
            for (kind, uses) in per_kind {
                let u = uses
                    .into_iter()
                    .min_by_key(|&u| ident(u))
                    .expect("non-empty by construction");
                // The latest program-order-prior passing admission check
                // by the same subject opens the window, when recorded.
                let check = idxs
                    .iter()
                    .copied()
                    .filter(|&c| {
                        ev[c].op == CapOp::Check
                            && ev[c].ok
                            && ev[c].subject == ev[u].subject
                            && psi[c] < psi[u]
                    })
                    .max_by_key(|&c| psi[c]);
                races
                    .entry((ev[u].cap.clone(), kind, ident(w), (String::new(), 0)))
                    .or_insert_with(|| Race {
                        kind,
                        cap: ev[u].cap.clone(),
                        object: ev[u].object.clone(),
                        subject: ev[u].subject.clone(),
                        write_actor: ev[w].subject.clone(),
                        write_op: ev[w].op,
                        write_seq: ev[w].seq,
                        use_seq: Some(ev[u].seq),
                        check_seq: check.map(|c| ev[c].seq),
                        other_write_seq: None,
                    });
            }
        }

        // Unordered effective writes by different actors, the pair
        // ordered canonically by identity (not by seq).
        for (a, &wa) in writes.iter().enumerate() {
            for &wb in writes.iter().skip(a + 1) {
                if ev[wa].subject != ev[wb].subject && ct.concurrent(wa, wb) {
                    let (first, second) = if ident(wa) < ident(wb) {
                        (wa, wb)
                    } else {
                        (wb, wa)
                    };
                    races
                        .entry((
                            ev[first].cap.clone(),
                            RaceKind::WriteWrite,
                            ident(first),
                            ident(second),
                        ))
                        .or_insert_with(|| Race {
                            kind: RaceKind::WriteWrite,
                            cap: ev[first].cap.clone(),
                            object: ev[first].object.clone(),
                            subject: ev[first].subject.clone(),
                            write_actor: ev[second].subject.clone(),
                            write_op: ev[second].op,
                            write_seq: ev[second].seq,
                            use_seq: None,
                            check_seq: None,
                            other_write_seq: Some(ev[first].seq),
                        });
                }
            }
        }
    }

    races.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sim::caps::CapEvent;
    use bas_sim::time::SimTime;

    fn ev(seq: u64, subject: &str, op: CapOp, cap: &str, ok: bool) -> CapEvent {
        CapEvent {
            seq,
            at: SimTime::ZERO,
            subject: subject.into(),
            op,
            cap: cap.into(),
            object: "obj".into(),
            ok,
        }
    }

    #[test]
    fn concurrent_revoke_in_the_window_is_toctou() {
        let trace = CapTrace {
            events: vec![
                ev(0, "sensor", CapOp::Check, "c", true),
                ev(1, "sched", CapOp::Revoke, "c", true),
                ev(2, "sensor", CapOp::Use, "c", false),
            ],
            edges: vec![],
        };
        let races = detect(&trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::Toctou);
        assert_eq!(races[0].check_seq, Some(0));
        assert_eq!(races[0].use_seq, Some(2));
        assert_eq!(races[0].write_actor, "sched");
    }

    #[test]
    fn ordered_revoke_before_use_is_use_after_revoke() {
        // The victim itself performed the revoke: program order makes
        // the write happen-before the stale use.
        let trace = CapTrace {
            events: vec![
                ev(0, "sensor", CapOp::Revoke, "c", true),
                ev(1, "sensor", CapOp::Use, "c", false),
            ],
            edges: vec![],
        };
        let races = detect(&trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::UseAfterRevoke);
        assert_eq!(races[0].check_seq, None);
    }

    #[test]
    fn edge_ordered_revoke_is_use_after_revoke() {
        // The revoke reaches the victim through an IPC edge before the
        // stale use: ordered, not concurrent.
        let trace = CapTrace {
            events: vec![
                ev(0, "admin", CapOp::Revoke, "c", true),
                ev(1, "admin", CapOp::Use, "n", true),
                ev(2, "sensor", CapOp::Recv, "n", true),
                ev(3, "sensor", CapOp::Use, "c", false),
            ],
            edges: vec![(1, 2)],
        };
        let races = detect(&trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::UseAfterRevoke);
    }

    #[test]
    fn unordered_writes_by_distinct_actors_conflict() {
        let trace = CapTrace {
            events: vec![
                ev(0, "admin", CapOp::Revoke, "c", true),
                ev(1, "tenant", CapOp::Grant, "c", true),
            ],
            edges: vec![],
        };
        let races = detect(&trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteWrite);
        assert_eq!(races[0].subject, "admin");
        assert_eq!(races[0].write_actor, "tenant");
    }

    #[test]
    fn noop_writes_and_clean_traces_are_silent() {
        // A no-op revoke (ok = false) invalidates nothing; same-actor
        // writes are program-ordered; checks and uses that stay ok are
        // not races.
        let trace = CapTrace {
            events: vec![
                ev(0, "sensor", CapOp::Check, "c", true),
                ev(1, "sensor", CapOp::Use, "c", true),
                ev(2, "sched", CapOp::Revoke, "c", false),
                ev(3, "sched", CapOp::Grant, "c", true),
                ev(4, "sched", CapOp::Revoke, "c", true),
            ],
            edges: vec![],
        };
        assert!(detect(&trace).is_empty());
    }

    #[test]
    fn stale_uses_deduplicate_onto_the_earliest() {
        let trace = CapTrace {
            events: vec![
                ev(0, "web", CapOp::Check, "c", true),
                ev(1, "sched", CapOp::Revoke, "c", true),
                ev(2, "web", CapOp::Use, "c", false),
                ev(3, "web", CapOp::Use, "c", false),
                ev(4, "web", CapOp::Use, "c", false),
            ],
            edges: vec![],
        };
        let races = detect(&trace);
        assert_eq!(races.len(), 1, "one race per (cap, write, kind)");
        assert_eq!(races[0].use_seq, Some(2), "earliest stale use");
    }
}
