//! Static ↔ dynamic cross-validation for revocation races.
//!
//! The PR-6 fixpoint ([`crate::flow::closure`]) flags **revocation-leak**
//! findings statically: a derivation chain whose root was revoked
//! node-locally, leaving descendants usable. The race detector observes
//! the same hazard dynamically, as a revoke racing a stale use on a live
//! kernel. This module closes the loop: every static revocation-leak
//! must either map to a demonstrated dynamic race on the same platform
//! (untrusted holder — the leak is an exploitable window) or carry an
//! explicit suppression justification (trusted holder — churn among
//! trusted administrative subjects is ordered administration, not an
//! attack surface; the hygiene finding stands, the race escalation does
//! not). `exp_cap_races` (E19) asserts the mapping is total: no static
//! finding may be left unmapped.

use bas_core::scenario::Platform;

use crate::flow::{closure, derivation_scenarios, FlowKind};
use crate::ir::Trust;

/// How one static revocation-leak finding was discharged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakMapping {
    /// The seeded derivation scenario the finding came from.
    pub scenario: String,
    /// The platform whose lowered IR carried the leak.
    pub platform: Platform,
    /// The leaked capability's holder.
    pub holder: String,
    /// Whether the holder is untrusted in the scenario's Policy IR.
    pub untrusted: bool,
    /// `"dynamic-race"` or `"suppressed"`.
    pub disposition: &'static str,
    /// For `"dynamic-race"`: the churn-scenario name whose detector
    /// output demonstrates the window on this platform.
    pub dynamic_scenario: Option<String>,
    /// The justification line the report carries.
    pub justification: String,
}

fn platform_key(platform: Platform) -> &'static str {
    match platform {
        Platform::Linux => "linux",
        Platform::Minix => "minix",
        Platform::Sel4 => "sel4",
    }
}

/// Maps every static revocation-leak finding from the seeded derivation
/// scenarios to its dynamic disposition. Total by construction: each
/// finding yields exactly one mapping; the caller (E19) verifies that
/// each referenced dynamic scenario really produced a revoke-raced
/// stale use.
pub fn map_revocation_leaks() -> Vec<LeakMapping> {
    let mut out = Vec::new();
    for ds in derivation_scenarios() {
        for f in closure_leaks(&ds.model) {
            let untrusted = ds
                .model
                .subjects
                .get(&f)
                .is_some_and(|s| s.trust == Trust::Untrusted);
            let k = platform_key(ds.platform);
            if untrusted {
                out.push(LeakMapping {
                    scenario: ds.name.clone(),
                    platform: ds.platform,
                    holder: f.clone(),
                    untrusted,
                    disposition: "dynamic-race",
                    dynamic_scenario: Some(format!("{k}/armed-revoke-toctou")),
                    justification: format!(
                        "holder {f} is untrusted: the statically-leaked right is a live \
                         TOCTOU window, demonstrated by the armed-revoke schedule"
                    ),
                });
            } else {
                out.push(LeakMapping {
                    scenario: ds.name.clone(),
                    platform: ds.platform,
                    holder: f.clone(),
                    untrusted,
                    disposition: "suppressed",
                    dynamic_scenario: None,
                    justification: format!(
                        "holder {f} is trusted: revocation churn among trusted subjects \
                         is ordered administration; hygiene finding stands, race \
                         escalation suppressed"
                    ),
                });
            }
        }
    }
    out
}

/// Holders of revocation-leak findings in one seeded model, in finding
/// order.
fn closure_leaks(model: &crate::ir::PolicyModel) -> Vec<String> {
    closure(&model.caps)
        .findings
        .into_iter()
        .filter(|f| f.kind == FlowKind::RevocationLeak)
        .map(|f| f.holder)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_leak_is_mapped_and_dispositions_split_by_trust() {
        let maps = map_revocation_leaks();
        // 3 platforms × 1 revocation-leak scenario × 2 leaked holders.
        assert_eq!(maps.len(), 6);
        for m in &maps {
            match m.disposition {
                "dynamic-race" => {
                    assert!(m.untrusted, "{}: only untrusted holders escalate", m.holder);
                    assert!(m.dynamic_scenario.is_some());
                }
                "suppressed" => {
                    assert!(!m.untrusted);
                    assert!(m.dynamic_scenario.is_none());
                }
                other => panic!("unknown disposition {other}"),
            }
        }
        assert_eq!(
            maps.iter()
                .filter(|m| m.disposition == "dynamic-race")
                .count(),
            3,
            "one untrusted (web) holder per platform"
        );
    }
}
