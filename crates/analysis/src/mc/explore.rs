//! Bounded explicit-state exploration with ample-set reduction.
//!
//! The explorer is generic over [`StepSemantics`]: breadth-first search
//! with fingerprint-interned state deduplication, so the first trace
//! reaching any fact is a shortest one. A `classify` callback maps each
//! discovered state to a bitmask of facts; the explorer records the
//! first hit of every bit together with its action trace.
//!
//! # State store
//!
//! Storage per discovered state is O(1), independent of depth: one
//! arena node `(parent_idx, action)` — traces are reconstructed on
//! demand by walking parent pointers — plus one 64-bit fingerprint in a
//! pre-sized hash set. Full state values live only in the current BFS
//! frontier; the layer behind it is dropped wholesale. Deduplicating on
//! fingerprints rather than full states is the classic hash-compaction
//! trade: two distinct states colliding on all 64 bits would alias, with
//! probability ~n²/2⁶⁵ (< 10⁻⁹ at the 82k-state cells explored here) —
//! and the dynamic counterexample replay would catch a miscarried
//! verdict downstream.
//!
//! # Parallel exploration
//!
//! With [`ExploreOpts::workers`] > 1, each BFS layer is expanded by
//! scoped worker threads claiming frontier chunks from an atomic ticket.
//! Successor fingerprints are raced into a sharded seen-set (one mutex
//! per shard, sharded by fingerprint high bits) keyed by a *deterministic
//! order key* — the successor's (frontier position, action index) in
//! sequential exploration order. Racing inserts resolve by min-key, so
//! whichever thread wins the lock, the surviving parent/action for every
//! state is the one sequential exploration would have picked. A commit
//! pass at the layer barrier then admits candidates in ascending key
//! order, making node numbering, first-hit traces, counters, and
//! truncation byte-identical to the sequential explorer at any worker
//! count. (See DESIGN §5 for why the layer barrier also preserves the
//! ample-set conditions C1–C3 and the shortest-trace guarantee.)
//!
//! # Partial-order reduction
//!
//! At each state the explorer looks for a *singleton ample set*: one
//! process whose only enabled action is invisible and independent of
//! every co-enabled action of other processes. If found, only that
//! action is expanded; otherwise the state is fully expanded. The three
//! classic soundness conditions hold as follows for the scenario model
//! (and are assumed of any other semantics passed in):
//!
//! * **C1** (no dependent action first): the candidate's independence is
//!   checked against all *currently* enabled actions; the round barrier
//!   guarantees no new dependent action can become enabled before the
//!   deferred process moves, because the environment tick — the only
//!   enabler of fresh actions — waits on every living process's own bit.
//! * **C2** (invisibility): enforced via [`StepSemantics::is_visible`].
//! * **C3** (no cycle starves an action): vacuous on a DAG; the scenario
//!   state strictly grows `(round, moved)` on every transition.
//!
//! Correctness is additionally validated empirically: the verdict layer
//! runs reduced and unreduced explorations at equal depth and asserts
//! identical verdicts (see `exp_model_check` and the crate tests).

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bas_core::semantics::{replay_trace, StepSemantics};

/// Exploration limits and switches.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOpts {
    /// Enable ample-set partial-order reduction.
    pub use_por: bool,
    /// Hard cap on stored states; hitting it sets
    /// [`ExploreStats::truncated`] (the run is then *not* exhaustive).
    pub state_budget: usize,
    /// Worker threads expanding each BFS layer; `0` and `1` both mean
    /// sequential in-thread exploration. Results are byte-identical at
    /// every worker count.
    pub workers: usize,
}

impl Default for ExploreOpts {
    fn default() -> ExploreOpts {
        ExploreOpts {
            use_por: true,
            state_budget: 2_000_000,
            workers: 1,
        }
    }
}

/// Counters for one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states stored.
    pub states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// Longest trace depth reached.
    pub max_depth: usize,
    /// States whose successor set was reduced to an ample singleton.
    pub ample_states: usize,
    /// The state budget was exhausted; coverage is incomplete.
    pub truncated: bool,
}

impl ExploreStats {
    /// Bytes of long-lived store per state: one arena node plus one
    /// interned fingerprint. Depth-independent by construction (traces
    /// are parent-pointer walks, not per-state vectors).
    pub fn bytes_per_state<A>() -> usize {
        std::mem::size_of::<Node<A>>() + std::mem::size_of::<u64>()
    }
}

/// The result of one exploration.
pub struct Exploration<A> {
    /// Exploration counters.
    pub stats: ExploreStats,
    /// Shortest witness trace for each fact bit that was reached,
    /// indexed by bit position.
    pub first_hits: Vec<Option<Vec<A>>>,
}

impl<A> Exploration<A> {
    /// Whether fact `bit` was reached.
    pub fn reached(&self, bit: u32) -> bool {
        self.first_hits
            .get(bit.trailing_zeros() as usize)
            .is_some_and(Option::is_some)
    }

    /// The witness trace for fact `bit`, if reached.
    pub fn witness(&self, bit: u32) -> Option<&[A]> {
        self.first_hits
            .get(bit.trailing_zeros() as usize)?
            .as_deref()
    }
}

/// One arena entry: the parent index and the action that produced the
/// state. Depth is implicit in the BFS layer, so the node carries no
/// per-state trace and no depth field.
pub struct Node<A> {
    parent: u32,
    action: Option<A>,
}

fn trace_of<A: Clone>(nodes: &[Node<A>], mut idx: usize) -> Vec<A> {
    let mut trace = Vec::new();
    while let Some(a) = &nodes[idx].action {
        trace.push(a.clone());
        idx = nodes[idx].parent as usize;
    }
    trace.reverse();
    trace
}

/// 64-bit state fingerprint for interned deduplication. Built on the
/// std SipHash with zeroed keys, so it is stable across runs and
/// threads.
fn fingerprint<T: Hash>(value: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Initial capacity for the seen-set and arena: enough for every cell
/// of the scenario matrix without rehashing, without committing the
/// full `state_budget` upfront.
fn presize(budget: usize) -> usize {
    budget.min(1 << 17)
}

/// Picks a singleton ample action, if any process qualifies.
fn ample_action<S: StepSemantics>(
    sem: &S,
    state: &S::State,
    enabled: &[S::Action],
) -> Option<S::Action> {
    for candidate in enabled {
        let owner = sem.owner(candidate);
        if enabled.iter().filter(|a| sem.owner(a) == owner).count() != 1 {
            continue; // only singleton ample sets are attempted
        }
        if sem.is_visible(state, candidate) {
            continue;
        }
        if enabled
            .iter()
            .filter(|a| sem.owner(a) != owner)
            .all(|other| sem.independent(candidate, other))
        {
            return Some(candidate.clone());
        }
    }
    None
}

/// The POR-or-full successor action set for one state.
fn expansion<S: StepSemantics>(
    sem: &S,
    state: &S::State,
    use_por: bool,
    ample_states: &mut usize,
) -> Vec<S::Action> {
    let enabled = sem.enabled_actions(state);
    if enabled.is_empty() {
        return enabled;
    }
    if use_por {
        if let Some(a) = ample_action(sem, state, &enabled) {
            *ample_states += 1;
            return vec![a];
        }
    }
    enabled
}

/// Explores the reachable state space of `sem` breadth-first, calling
/// `classify` on every discovered state. Fact bit 0..32 first-hits are
/// recorded with shortest witness traces. Dispatches to the layer-
/// parallel explorer when `opts.workers > 1`.
pub fn explore<S, F>(sem: &S, opts: &ExploreOpts, classify: F) -> Exploration<S::Action>
where
    S: StepSemantics + Sync,
    S::State: Send + Sync,
    S::Action: Send,
    F: Fn(&S::State) -> u32 + Sync,
{
    if opts.workers > 1 {
        explore_parallel(sem, opts, classify)
    } else {
        explore_sequential(sem, opts, classify)
    }
}

/// Shared root handling: seeds the arena, frontier, and first-hit table
/// with the initial state.
struct Base<S: StepSemantics> {
    stats: ExploreStats,
    first_hits: Vec<Option<Vec<S::Action>>>,
    hit_mask: u32,
    nodes: Vec<Node<S::Action>>,
    frontier: Vec<(u32, S::State)>,
}

fn seed_root<S, F>(sem: &S, opts: &ExploreOpts, classify: &F) -> (Base<S>, u64)
where
    S: StepSemantics,
    F: Fn(&S::State) -> u32,
{
    let mut base = Base {
        stats: ExploreStats {
            states: 1,
            ..ExploreStats::default()
        },
        first_hits: (0..32).map(|_| None).collect(),
        hit_mask: 0,
        nodes: Vec::with_capacity(presize(opts.state_budget)),
        frontier: Vec::new(),
    };
    let initial = sem.initial_state();
    let facts = classify(&initial);
    base.nodes.push(Node {
        parent: 0,
        action: None,
    });
    for (bit, hit) in base.first_hits.iter_mut().enumerate() {
        if facts & (1 << bit) != 0 {
            *hit = Some(Vec::new());
            base.hit_mask |= 1 << bit;
        }
    }
    let fp = fingerprint(&initial);
    base.frontier.push((0, initial));
    (base, fp)
}

/// Records a freshly committed state's facts against the first-hit
/// table (the node must already be in the arena).
fn record_hits<A: Clone>(
    first_hits: &mut [Option<Vec<A>>],
    hit_mask: &mut u32,
    nodes: &[Node<A>],
    node: usize,
    facts: u32,
) {
    let fresh = facts & !*hit_mask;
    if fresh == 0 {
        return;
    }
    for (bit, hit) in first_hits.iter_mut().enumerate() {
        if fresh & (1 << bit) != 0 {
            *hit = Some(trace_of(nodes, node));
        }
    }
    *hit_mask |= fresh;
}

fn explore_sequential<S, F>(sem: &S, opts: &ExploreOpts, classify: F) -> Exploration<S::Action>
where
    S: StepSemantics,
    F: Fn(&S::State) -> u32,
{
    let (mut base, root_fp) = seed_root(sem, opts, &classify);
    let mut seen: HashSet<u64> =
        HashSet::with_capacity(presize(opts.state_budget).saturating_add(1));
    seen.insert(root_fp);
    let mut depth = 0usize;

    while !base.frontier.is_empty() && !base.stats.truncated {
        depth += 1;
        let mut next: Vec<(u32, S::State)> = Vec::new();
        'frontier: for (idx, state) in &base.frontier {
            for action in expansion(sem, state, opts.use_por, &mut base.stats.ample_states) {
                let succ = sem.apply(state, &action);
                base.stats.transitions += 1;
                if !seen.insert(fingerprint(&succ)) {
                    continue;
                }
                if base.stats.states >= opts.state_budget {
                    base.stats.truncated = true;
                    break 'frontier;
                }
                let node = base.nodes.len();
                base.nodes.push(Node {
                    parent: *idx,
                    action: Some(action),
                });
                base.stats.max_depth = base.stats.max_depth.max(depth);
                let facts = classify(&succ);
                record_hits(
                    &mut base.first_hits,
                    &mut base.hit_mask,
                    &base.nodes,
                    node,
                    facts,
                );
                next.push((node as u32, succ));
                base.stats.states += 1;
            }
        }
        base.frontier = next;
    }

    Exploration {
        stats: base.stats,
        first_hits: base.first_hits,
    }
}

// ---------------------------------------------------------------------
// Layer-parallel exploration.
// ---------------------------------------------------------------------

/// Shard count for the parallel seen-set (power of two).
const SHARDS: usize = 64;

/// A shard entry: the deterministic order key of the best candidate so
/// far this layer, or [`COMMITTED`] once the state is admitted.
const COMMITTED: u64 = 0;

/// A successor produced during parallel layer expansion, not yet
/// admitted to the store.
struct Candidate<S: StepSemantics> {
    /// `(frontier position << 16 | action index) + 1` — the order the
    /// sequential explorer would have tried this insertion (`+1` keeps
    /// [`COMMITTED`] = 0 distinct).
    key: u64,
    fp: u64,
    parent: u32,
    action: S::Action,
    state: S::State,
    facts: u32,
}

fn order_key(frontier_pos: usize, action_idx: usize) -> u64 {
    ((frontier_pos as u64) << 16 | action_idx as u64) + 1
}

fn shard_of(fp: u64) -> usize {
    // High bits: the low bits feed the intra-shard hash map.
    (fp >> (64 - SHARDS.trailing_zeros())) as usize
}

/// Frontier chunk size: two claims per worker per layer. Coarse chunks
/// keep each worker on one contiguous frontier slice (one ticket fetch,
/// sequential parent reads) — profiling showed the old fine-grained
/// chunks (frontier/8·workers, capped at 1024) spent the layer in
/// ticket and shard-lock ping-pong once expansion per state got cheap.
/// The floor of 64 stops tiny early layers from being split at all.
fn chunk_size(frontier: usize, workers: usize) -> usize {
    (frontier / (workers * 2)).clamp(64, 16384)
}

fn explore_parallel<S, F>(sem: &S, opts: &ExploreOpts, classify: F) -> Exploration<S::Action>
where
    S: StepSemantics + Sync,
    S::State: Send + Sync,
    S::Action: Send,
    F: Fn(&S::State) -> u32 + Sync,
{
    let workers = opts.workers;
    let (mut base, root_fp) = seed_root(sem, opts, &classify);
    let shard_cap = presize(opts.state_budget) / SHARDS + 1;
    let seen: Vec<Mutex<HashMap<u64, u64>>> = (0..SHARDS)
        .map(|_| Mutex::new(HashMap::with_capacity(shard_cap)))
        .collect();
    seen[shard_of(root_fp)]
        .lock()
        .expect("seen shard poisoned")
        .insert(root_fp, COMMITTED);
    let mut depth = 0usize;

    while !base.frontier.is_empty() && !base.stats.truncated {
        depth += 1;
        let frontier = &base.frontier;
        let ticket = AtomicUsize::new(0);
        let chunk = chunk_size(frontier.len(), workers);
        let use_por = opts.use_por;

        // Expansion phase: workers claim frontier chunks, apply every
        // expansion action, and race fingerprints into the sharded
        // seen-set under min-order-key semantics. Each worker returns
        // its surviving candidates plus local counters.
        let mut worker_out: Vec<(Vec<Candidate<S>>, usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<Candidate<S>> = Vec::new();
                        let mut transitions = 0usize;
                        let mut ample = 0usize;
                        loop {
                            let start = ticket.fetch_add(chunk, Ordering::Relaxed);
                            if start >= frontier.len() {
                                break;
                            }
                            let end = (start + chunk).min(frontier.len());
                            for (pos, (parent, state)) in frontier[start..end]
                                .iter()
                                .enumerate()
                                .map(|(o, f)| (start + o, f))
                            {
                                let expand = expansion(sem, state, use_por, &mut ample);
                                for (aidx, action) in expand.into_iter().enumerate() {
                                    let succ = sem.apply(state, &action);
                                    transitions += 1;
                                    let fp = fingerprint(&succ);
                                    let key = order_key(pos, aidx);
                                    let mut shard =
                                        seen[shard_of(fp)].lock().expect("seen shard poisoned");
                                    match shard.entry(fp) {
                                        std::collections::hash_map::Entry::Occupied(mut e) => {
                                            // Committed (0) or an earlier-in-
                                            // order candidate wins; otherwise
                                            // we displace the later one (its
                                            // buffered candidate dies at
                                            // commit time).
                                            if *e.get() <= key {
                                                continue;
                                            }
                                            e.insert(key);
                                        }
                                        std::collections::hash_map::Entry::Vacant(v) => {
                                            v.insert(key);
                                        }
                                    }
                                    drop(shard);
                                    let facts = classify(&succ);
                                    out.push(Candidate {
                                        key,
                                        fp,
                                        parent: *parent,
                                        action,
                                        state: succ,
                                        facts,
                                    });
                                }
                            }
                        }
                        (out, transitions, ample)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("layer worker panicked"))
                .collect()
        });

        // Commit phase (single-threaded): admit candidates in sequential
        // exploration order; a candidate whose shard entry no longer
        // bears its key lost the dedup race to an earlier-ordered one.
        let mut candidates: Vec<Candidate<S>> = Vec::new();
        for (out, transitions, ample) in worker_out.drain(..) {
            candidates.extend(out);
            base.stats.transitions += transitions;
            base.stats.ample_states += ample;
        }
        candidates.sort_unstable_by_key(|c| c.key);

        // Resolve dedup survivors one shard lock at a time instead of
        // one lock per candidate: survival (`entry == key`) is fixed
        // once the expansion barrier passes, so the survivor set is
        // independent of visit order, and marking a past-budget
        // survivor COMMITTED is moot — truncation ends the exploration.
        let mut survivor = vec![false; candidates.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); SHARDS];
        for (i, cand) in candidates.iter().enumerate() {
            by_shard[shard_of(cand.fp)].push(i);
        }
        for (s, members) in by_shard.into_iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let mut shard = seen[s].lock().expect("seen shard poisoned");
            for i in members {
                let cand = &candidates[i];
                let entry = shard.get_mut(&cand.fp).expect("candidate was inserted");
                if *entry == cand.key {
                    survivor[i] = true;
                    *entry = COMMITTED;
                }
            }
        }

        let mut next: Vec<(u32, S::State)> = Vec::new();
        for (cand, live) in candidates.into_iter().zip(survivor) {
            if !live {
                continue; // displaced by an earlier-ordered candidate
            }
            if base.stats.states >= opts.state_budget {
                base.stats.truncated = true;
                break;
            }
            let node = base.nodes.len();
            base.nodes.push(Node {
                parent: cand.parent,
                action: Some(cand.action),
            });
            base.stats.max_depth = base.stats.max_depth.max(depth);
            record_hits(
                &mut base.first_hits,
                &mut base.hit_mask,
                &base.nodes,
                node,
                cand.facts,
            );
            next.push((node as u32, cand.state));
            base.stats.states += 1;
        }
        base.frontier = next;
    }

    Exploration {
        stats: base.stats,
        first_hits: base.first_hits,
    }
}

/// Greedily shrinks a witness trace: repeatedly drops any single action
/// whose removal leaves the trace feasible *and* still reaching a state
/// where `violates` holds (facts are monotone in the scenario model, so
/// any visited state may witness). The result is 1-minimal: no single
/// action can be removed.
pub fn minimize_trace<S, F>(sem: &S, trace: &[S::Action], violates: F) -> Vec<S::Action>
where
    S: StepSemantics,
    F: Fn(&S::State) -> bool,
{
    let still_violates =
        |t: &[S::Action]| replay_trace(sem, t).is_some_and(|states| states.iter().any(&violates));
    debug_assert!(still_violates(trace), "input trace must witness");
    let mut current: Vec<S::Action> = trace.to_vec();
    let mut shrunk = true;
    while shrunk {
        shrunk = false;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if still_violates(&candidate) {
                current = candidate;
                shrunk = true;
                break;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three independent counters, each stepping 0 → 2. Counter 0
    /// reaching 2 is the observed fact; the others are invisible noise.
    struct Counters;

    const N: usize = 3;
    const GOAL: u32 = 1 << 0;

    impl StepSemantics for Counters {
        type State = [u8; N];
        type Action = usize;

        fn initial_state(&self) -> [u8; N] {
            [0; N]
        }

        fn enabled_actions(&self, s: &[u8; N]) -> Vec<usize> {
            (0..N).filter(|&i| s[i] < 2).collect()
        }

        fn apply(&self, s: &[u8; N], a: &usize) -> [u8; N] {
            let mut t = *s;
            t[*a] += 1;
            t
        }

        fn is_visible(&self, _s: &[u8; N], a: &usize) -> bool {
            *a == 0
        }

        fn independent(&self, a: &usize, b: &usize) -> bool {
            a != b
        }

        fn owner(&self, a: &usize) -> usize {
            *a
        }
    }

    fn classify(s: &[u8; N]) -> u32 {
        u32::from(s[0] == 2)
    }

    #[test]
    fn bfs_finds_the_shortest_witness() {
        let opts = ExploreOpts {
            use_por: false,
            state_budget: 10_000,
            workers: 1,
        };
        let ex = explore(&Counters, &opts, classify);
        assert_eq!(ex.stats.states, 27, "full product space");
        assert!(ex.reached(GOAL));
        assert_eq!(
            ex.witness(GOAL).expect("goal was reached"),
            &[0, 0],
            "two steps, no noise"
        );
    }

    #[test]
    fn por_reduces_states_with_identical_verdicts() {
        let full = explore(
            &Counters,
            &ExploreOpts {
                use_por: false,
                state_budget: 10_000,
                workers: 1,
            },
            classify,
        );
        let reduced = explore(
            &Counters,
            &ExploreOpts {
                use_por: true,
                state_budget: 10_000,
                workers: 1,
            },
            classify,
        );
        assert!(
            reduced.stats.states < full.stats.states,
            "{} !< {}",
            reduced.stats.states,
            full.stats.states
        );
        assert!(reduced.stats.ample_states > 0);
        assert_eq!(reduced.reached(GOAL), full.reached(GOAL));
    }

    #[test]
    fn state_budget_truncates() {
        let ex = explore(
            &Counters,
            &ExploreOpts {
                use_por: false,
                state_budget: 5,
                workers: 1,
            },
            classify,
        );
        assert!(ex.stats.truncated);
        assert!(ex.stats.states <= 5);
    }

    #[test]
    fn parallel_exploration_is_byte_identical() {
        for use_por in [false, true] {
            let seq = explore(
                &Counters,
                &ExploreOpts {
                    use_por,
                    state_budget: 10_000,
                    workers: 1,
                },
                classify,
            );
            for workers in [2, 4] {
                let par = explore(
                    &Counters,
                    &ExploreOpts {
                        use_por,
                        state_budget: 10_000,
                        workers,
                    },
                    classify,
                );
                assert_eq!(par.stats, seq.stats, "por={use_por} workers={workers}");
                assert_eq!(
                    par.first_hits, seq.first_hits,
                    "por={use_por} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_truncation_respects_the_budget() {
        let ex = explore(
            &Counters,
            &ExploreOpts {
                use_por: false,
                state_budget: 5,
                workers: 4,
            },
            classify,
        );
        assert!(ex.stats.truncated);
        assert!(ex.stats.states <= 5);
    }

    #[test]
    fn node_storage_is_depth_independent() {
        // One node + one fingerprint, no embedded trace vector.
        assert!(ExploreStats::bytes_per_state::<usize>() <= 32);
    }

    #[test]
    fn minimization_drops_noise_actions() {
        let sem = Counters;
        let noisy = vec![1, 2, 0, 1, 2, 0];
        let min = minimize_trace(&sem, &noisy, |s| s[0] == 2);
        assert_eq!(min, vec![0, 0]);
    }
}
