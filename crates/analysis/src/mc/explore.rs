//! Bounded explicit-state exploration with ample-set reduction.
//!
//! The explorer is generic over [`StepSemantics`]: breadth-first search
//! with hashed-state deduplication, so the first trace reaching any fact
//! is a shortest one. A `classify` callback maps each discovered state
//! to a bitmask of facts; the explorer records the first hit of every
//! bit together with its action trace.
//!
//! # Partial-order reduction
//!
//! At each state the explorer looks for a *singleton ample set*: one
//! process whose only enabled action is invisible and independent of
//! every co-enabled action of other processes. If found, only that
//! action is expanded; otherwise the state is fully expanded. The three
//! classic soundness conditions hold as follows for the scenario model
//! (and are assumed of any other semantics passed in):
//!
//! * **C1** (no dependent action first): the candidate's independence is
//!   checked against all *currently* enabled actions; the round barrier
//!   guarantees no new dependent action can become enabled before the
//!   deferred process moves, because the environment tick — the only
//!   enabler of fresh actions — waits on every living process's own bit.
//! * **C2** (invisibility): enforced via [`StepSemantics::is_visible`].
//! * **C3** (no cycle starves an action): vacuous on a DAG; the scenario
//!   state strictly grows `(round, moved)` on every transition.
//!
//! Correctness is additionally validated empirically: the verdict layer
//! runs reduced and unreduced explorations at equal depth and asserts
//! identical verdicts (see `exp_model_check` and the crate tests).

use std::collections::HashMap;

use bas_core::semantics::{replay_trace, StepSemantics};

/// Exploration limits and switches.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOpts {
    /// Enable ample-set partial-order reduction.
    pub use_por: bool,
    /// Hard cap on stored states; hitting it sets
    /// [`ExploreStats::truncated`] (the run is then *not* exhaustive).
    pub state_budget: usize,
}

impl Default for ExploreOpts {
    fn default() -> ExploreOpts {
        ExploreOpts {
            use_por: true,
            state_budget: 2_000_000,
        }
    }
}

/// Counters for one exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Distinct states stored.
    pub states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// Longest trace depth reached.
    pub max_depth: usize,
    /// States whose successor set was reduced to an ample singleton.
    pub ample_states: usize,
    /// The state budget was exhausted; coverage is incomplete.
    pub truncated: bool,
}

/// The result of one exploration.
pub struct Exploration<A> {
    /// Exploration counters.
    pub stats: ExploreStats,
    /// Shortest witness trace for each fact bit that was reached,
    /// indexed by bit position.
    pub first_hits: Vec<Option<Vec<A>>>,
}

impl<A> Exploration<A> {
    /// Whether fact `bit` was reached.
    pub fn reached(&self, bit: u32) -> bool {
        self.first_hits
            .get(bit.trailing_zeros() as usize)
            .is_some_and(Option::is_some)
    }

    /// The witness trace for fact `bit`, if reached.
    pub fn witness(&self, bit: u32) -> Option<&[A]> {
        self.first_hits
            .get(bit.trailing_zeros() as usize)?
            .as_deref()
    }
}

struct Node<A> {
    parent: usize,
    action: Option<A>,
    depth: usize,
}

fn trace_of<A: Clone>(nodes: &[Node<A>], mut idx: usize) -> Vec<A> {
    let mut trace = Vec::with_capacity(nodes[idx].depth);
    while let Some(a) = &nodes[idx].action {
        trace.push(a.clone());
        idx = nodes[idx].parent;
    }
    trace.reverse();
    trace
}

/// Picks a singleton ample action, if any process qualifies.
fn ample_action<S: StepSemantics>(
    sem: &S,
    state: &S::State,
    enabled: &[S::Action],
) -> Option<S::Action> {
    for candidate in enabled {
        let owner = sem.owner(candidate);
        if enabled.iter().filter(|a| sem.owner(a) == owner).count() != 1 {
            continue; // only singleton ample sets are attempted
        }
        if sem.is_visible(state, candidate) {
            continue;
        }
        if enabled
            .iter()
            .filter(|a| sem.owner(a) != owner)
            .all(|other| sem.independent(candidate, other))
        {
            return Some(candidate.clone());
        }
    }
    None
}

/// Explores the reachable state space of `sem` breadth-first, calling
/// `classify` on every discovered state. Fact bit 0..32 first-hits are
/// recorded with shortest witness traces.
pub fn explore<S, F>(sem: &S, opts: &ExploreOpts, classify: F) -> Exploration<S::Action>
where
    S: StepSemantics,
    F: Fn(&S::State) -> u32,
{
    let mut stats = ExploreStats::default();
    let mut first_hits: Vec<Option<Vec<S::Action>>> = (0..32).map(|_| None).collect();
    let mut hit_mask: u32 = 0;

    let mut nodes: Vec<Node<S::Action>> = Vec::new();
    let mut seen: HashMap<S::State, usize> = HashMap::new();
    let mut frontier: Vec<usize> = Vec::new();
    let mut states: Vec<S::State> = Vec::new();

    let initial = sem.initial_state();
    let facts = classify(&initial);
    nodes.push(Node {
        parent: 0,
        action: None,
        depth: 0,
    });
    for (bit, hit) in first_hits.iter_mut().enumerate() {
        if facts & (1 << bit) != 0 {
            *hit = Some(Vec::new());
            hit_mask |= 1 << bit;
        }
    }
    seen.insert(initial.clone(), 0);
    states.push(initial);
    frontier.push(0);
    stats.states = 1;

    while !frontier.is_empty() && !stats.truncated {
        let mut next = Vec::new();
        for &idx in &frontier {
            let state = states[idx].clone();
            let enabled = sem.enabled_actions(&state);
            if enabled.is_empty() {
                continue;
            }
            let expand: Vec<S::Action> = if opts.use_por {
                match ample_action(sem, &state, &enabled) {
                    Some(a) => {
                        stats.ample_states += 1;
                        vec![a]
                    }
                    None => enabled,
                }
            } else {
                enabled
            };
            for action in expand {
                let succ = sem.apply(&state, &action);
                stats.transitions += 1;
                if seen.contains_key(&succ) {
                    continue;
                }
                if stats.states >= opts.state_budget {
                    stats.truncated = true;
                    break;
                }
                let depth = nodes[idx].depth + 1;
                let node = nodes.len();
                nodes.push(Node {
                    parent: idx,
                    action: Some(action),
                    depth,
                });
                stats.max_depth = stats.max_depth.max(depth);
                let facts = classify(&succ);
                let fresh = facts & !hit_mask;
                if fresh != 0 {
                    for (bit, hit) in first_hits.iter_mut().enumerate() {
                        if fresh & (1 << bit) != 0 {
                            *hit = Some(trace_of(&nodes, node));
                        }
                    }
                    hit_mask |= fresh;
                }
                seen.insert(succ.clone(), node);
                states.push(succ);
                next.push(node);
                stats.states += 1;
            }
            if stats.truncated {
                break;
            }
        }
        frontier = next;
    }

    Exploration { stats, first_hits }
}

/// Greedily shrinks a witness trace: repeatedly drops any single action
/// whose removal leaves the trace feasible *and* still reaching a state
/// where `violates` holds (facts are monotone in the scenario model, so
/// any visited state may witness). The result is 1-minimal: no single
/// action can be removed.
pub fn minimize_trace<S, F>(sem: &S, trace: &[S::Action], violates: F) -> Vec<S::Action>
where
    S: StepSemantics,
    F: Fn(&S::State) -> bool,
{
    let still_violates =
        |t: &[S::Action]| replay_trace(sem, t).is_some_and(|states| states.iter().any(&violates));
    debug_assert!(still_violates(trace), "input trace must witness");
    let mut current: Vec<S::Action> = trace.to_vec();
    let mut shrunk = true;
    while shrunk {
        shrunk = false;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if still_violates(&candidate) {
                current = candidate;
                shrunk = true;
                break;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three independent counters, each stepping 0 → 2. Counter 0
    /// reaching 2 is the observed fact; the others are invisible noise.
    struct Counters;

    const N: usize = 3;
    const GOAL: u32 = 1 << 0;

    impl StepSemantics for Counters {
        type State = [u8; N];
        type Action = usize;

        fn initial_state(&self) -> [u8; N] {
            [0; N]
        }

        fn enabled_actions(&self, s: &[u8; N]) -> Vec<usize> {
            (0..N).filter(|&i| s[i] < 2).collect()
        }

        fn apply(&self, s: &[u8; N], a: &usize) -> [u8; N] {
            let mut t = *s;
            t[*a] += 1;
            t
        }

        fn is_visible(&self, _s: &[u8; N], a: &usize) -> bool {
            *a == 0
        }

        fn independent(&self, a: &usize, b: &usize) -> bool {
            a != b
        }

        fn owner(&self, a: &usize) -> usize {
            *a
        }
    }

    fn classify(s: &[u8; N]) -> u32 {
        u32::from(s[0] == 2)
    }

    #[test]
    fn bfs_finds_the_shortest_witness() {
        let opts = ExploreOpts {
            use_por: false,
            state_budget: 10_000,
        };
        let ex = explore(&Counters, &opts, classify);
        assert_eq!(ex.stats.states, 27, "full product space");
        assert!(ex.reached(GOAL));
        assert_eq!(ex.witness(GOAL).unwrap(), &[0, 0], "two steps, no noise");
    }

    #[test]
    fn por_reduces_states_with_identical_verdicts() {
        let full = explore(
            &Counters,
            &ExploreOpts {
                use_por: false,
                state_budget: 10_000,
            },
            classify,
        );
        let reduced = explore(
            &Counters,
            &ExploreOpts {
                use_por: true,
                state_budget: 10_000,
            },
            classify,
        );
        assert!(
            reduced.stats.states < full.stats.states,
            "{} !< {}",
            reduced.stats.states,
            full.stats.states
        );
        assert!(reduced.stats.ample_states > 0);
        assert_eq!(reduced.reached(GOAL), full.reached(GOAL));
    }

    #[test]
    fn state_budget_truncates() {
        let ex = explore(
            &Counters,
            &ExploreOpts {
                use_por: false,
                state_budget: 5,
            },
            classify,
        );
        assert!(ex.stats.truncated);
        assert!(ex.stats.states <= 5);
    }

    #[test]
    fn minimization_drops_noise_actions() {
        let sem = Counters;
        let noisy = vec![1, 2, 0, 1, 2, 0];
        let min = minimize_trace(&sem, &noisy, |s| s[0] == 2);
        assert_eq!(min, vec![0, 0]);
    }
}
