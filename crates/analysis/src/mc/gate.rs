//! The kernel-artifact adjudicator the checker cross-validates against.
//!
//! Property (a) of the model checker is *analyzer vs kernel-at-runtime*:
//! every operation attempted during exploration is adjudicated twice —
//! once by the Policy IR ([`crate::ir::PolicyModel`], the analyzer's
//! lowered view) and once by this gate, which consults the same primitive
//! artifacts the dynamic kernel stacks enforce: the MINIX ACM via
//! [`AccessControlMatrix::check`], the compiled CapDL capability
//! distribution via possession lookups, and the Linux mq/device DAC via
//! [`Mode::allows_with_group`] with the root bypass. Any disagreement is
//! a violation state, so bounded exploration proves the IR lowering
//! faithful along every reachable interleaving — not just the one
//! schedule the dynamic engine happens to run.

use std::collections::{BTreeMap, BTreeSet};

use bas_acm::{AcId, AccessControlMatrix, MsgType};
use bas_attack::AttackerModel;
use bas_capdl::spec::{CapTargetSpec, SpecObjKind};
use bas_core::platform::linux::UidScheme;
use bas_core::policy::{queues, scenario_acm, scenario_assembly, scenario_device_owners};
use bas_core::proto::{
    names, AC_ALARM, AC_CONTROL, AC_HEATER, AC_SENSOR, AC_WEB, MT_ALARM_CMD, MT_FAN_CMD,
    MT_SENSOR_READING, MT_SETPOINT, MT_STATUS_QUERY,
};
use bas_core::scenario::Platform;
use bas_linux::cred::{Mode, Uid};
use bas_minix::pm;
use bas_sel4::rights::CapRights;
use bas_sim::device::DeviceId;

/// One Linux queue ACL as the loader creates it.
pub struct QueueAcl {
    owner: Uid,
    group: Option<Uid>,
    mode: Mode,
}

/// The per-platform kernel adjudicator.
pub enum KernelGate {
    /// MINIX 3: the kernel checks the ACM at every send; devices have
    /// exactly one owning identity.
    Minix {
        /// The scenario access-control matrix.
        acm: AccessControlMatrix,
        /// Device → owning `ac_id`.
        device_owners: BTreeMap<DeviceId, AcId>,
    },
    /// seL4: admission is capability possession in the compiled CapDL
    /// spec; there is no user identity and no fork/kill surface.
    Sel4 {
        /// `(holder, endpoint object)` pairs with write authority.
        endpoint_caps: BTreeSet<(String, String)>,
        /// `(holder, device, write?)` device-frame capabilities.
        device_caps: BTreeSet<(String, DeviceId, bool)>,
    },
    /// Linux: discretionary access control over queue and device nodes,
    /// same-uid signals, ambient fork.
    Linux {
        /// Subject → effective uid (the attacker's uid already applied).
        uid_of: BTreeMap<String, Uid>,
        /// Queue name → its ACL.
        queue_acls: BTreeMap<String, QueueAcl>,
        /// Device → (owner, mode).
        device_acls: BTreeMap<DeviceId, (Uid, Mode)>,
    },
}

fn minix_ac(subject: &str) -> Option<AcId> {
    match subject {
        x if x == names::SENSOR => Some(AC_SENSOR),
        x if x == names::CONTROL => Some(AC_CONTROL),
        x if x == names::HEATER => Some(AC_HEATER),
        x if x == names::ALARM => Some(AC_ALARM),
        x if x == names::WEB => Some(AC_WEB),
        _ => None,
    }
}

/// The queue a `(receiver, msg type)` delivery goes through, and its
/// intended single writer — fixed by the loader's deployment plan.
fn linux_route(receiver: &str, mtype: u32) -> Option<(&'static str, &'static str)> {
    match (receiver, mtype) {
        (r, MT_SENSOR_READING) if r == names::CONTROL => Some((queues::SENSOR_IN, names::SENSOR)),
        (r, MT_SETPOINT) if r == names::CONTROL => Some((queues::SETPOINT_IN, names::WEB)),
        (r, MT_STATUS_QUERY) if r == names::CONTROL => Some((queues::STATUS_IN, names::WEB)),
        (r, MT_FAN_CMD) if r == names::HEATER => Some((queues::HEATER_CMD, names::CONTROL)),
        (r, MT_ALARM_CMD) if r == names::ALARM => Some((queues::ALARM_CMD, names::CONTROL)),
        _ => None,
    }
}

/// The controller/driver endpoint admitting a `(receiver, msg type)`
/// RPC, by compiled object name.
fn sel4_endpoint(receiver: &str, mtype: u32) -> Option<String> {
    match (receiver, mtype) {
        (r, MT_SENSOR_READING | MT_SETPOINT | MT_STATUS_QUERY) if r == names::CONTROL => {
            Some(format!("ep_{}_ctrl", names::CONTROL))
        }
        (r, MT_FAN_CMD) if r == names::HEATER => Some(format!("ep_{}_cmd", names::HEATER)),
        (r, MT_ALARM_CMD) if r == names::ALARM => Some(format!("ep_{}_cmd", names::ALARM)),
        _ => None,
    }
}

impl KernelGate {
    /// Builds the gate for one matrix cell from the platform's primitive
    /// policy artifacts (not from the Policy IR).
    pub fn for_cell(platform: Platform, attacker: AttackerModel, scheme: UidScheme) -> KernelGate {
        match platform {
            Platform::Minix => KernelGate::Minix {
                acm: scenario_acm(),
                device_owners: scenario_device_owners(),
            },
            Platform::Sel4 => {
                let (spec, _glue) = bas_camkes::codegen::compile(&scenario_assembly())
                    .expect("scenario assembly compiles");
                let device_of: BTreeMap<String, DeviceId> = spec
                    .objects
                    .iter()
                    .filter_map(|o| match o.kind {
                        SpecObjKind::Device(dev) => Some((o.name.clone(), dev)),
                        _ => None,
                    })
                    .collect();
                let mut endpoint_caps = BTreeSet::new();
                let mut device_caps = BTreeSet::new();
                for cap in &spec.caps {
                    let CapTargetSpec::Object(obj) = &cap.target else {
                        continue;
                    };
                    if let Some(&dev) = device_of.get(obj) {
                        device_caps.insert((
                            cap.holder.clone(),
                            dev,
                            cap.rights.covers(CapRights::WRITE),
                        ));
                    } else if cap.rights.covers(CapRights::WRITE) {
                        endpoint_caps.insert((cap.holder.clone(), obj.clone()));
                    }
                }
                KernelGate::Sel4 {
                    endpoint_caps,
                    device_caps,
                }
            }
            Platform::Linux => {
                let uid = |process: &str| {
                    if process == names::WEB && attacker == AttackerModel::Root {
                        Uid::ROOT
                    } else {
                        Uid::new(scheme.uid_of(process))
                    }
                };
                let mut uid_of = BTreeMap::new();
                for p in [
                    names::SENSOR,
                    names::CONTROL,
                    names::HEATER,
                    names::ALARM,
                    names::WEB,
                ] {
                    uid_of.insert(p.to_string(), uid(p));
                }
                // The loader's queue ACLs: shared scheme puts every queue
                // under the shared account at 0600; the hardened scheme
                // makes the reader the owner and the single intended
                // writer the (one-member) group, at 0620.
                let routes = [
                    (queues::SENSOR_IN, names::CONTROL, names::SENSOR),
                    (queues::SETPOINT_IN, names::CONTROL, names::WEB),
                    (queues::STATUS_IN, names::CONTROL, names::WEB),
                    (queues::HEATER_CMD, names::HEATER, names::CONTROL),
                    (queues::ALARM_CMD, names::ALARM, names::CONTROL),
                    (queues::WEB_REPLY, names::WEB, names::CONTROL),
                ];
                let mut queue_acls = BTreeMap::new();
                for (q, reader, writer) in routes {
                    let acl = match scheme {
                        UidScheme::SharedAccount => QueueAcl {
                            owner: Uid::new(bas_core::platform::linux::uids::SHARED),
                            group: None,
                            mode: Mode::new(0o600),
                        },
                        UidScheme::PerProcessHardened => QueueAcl {
                            owner: Uid::new(scheme.uid_of(reader)),
                            group: Some(Uid::new(scheme.uid_of(writer))),
                            mode: Mode::new(0o620),
                        },
                    };
                    queue_acls.insert(q.to_string(), acl);
                }
                let mut device_acls = BTreeMap::new();
                for (dev, driver) in [
                    (DeviceId::TEMP_SENSOR, names::SENSOR),
                    (DeviceId::FAN, names::HEATER),
                    (DeviceId::ALARM, names::ALARM),
                ] {
                    device_acls.insert(dev, (Uid::new(scheme.uid_of(driver)), Mode::new(0o600)));
                }
                KernelGate::Linux {
                    uid_of,
                    queue_acls,
                    device_acls,
                }
            }
        }
    }

    /// May `sender` deliver a message of `mtype` into `receiver`'s input
    /// handling, as the kernel adjudicates it? (Application acceptance is
    /// a separate, later question.)
    pub fn allows_send(&self, sender: &str, receiver: &str, mtype: u32) -> bool {
        match self {
            KernelGate::Minix { acm, .. } => {
                let (Some(s), Some(r)) = (minix_ac(sender), minix_ac(receiver)) else {
                    return false;
                };
                acm.check(s, r, MsgType::new(mtype)).is_allowed()
            }
            KernelGate::Sel4 { endpoint_caps, .. } => sel4_endpoint(receiver, mtype)
                .is_some_and(|ep| endpoint_caps.contains(&(sender.to_string(), ep))),
            KernelGate::Linux {
                uid_of, queue_acls, ..
            } => {
                let Some((q, _writer)) = linux_route(receiver, mtype) else {
                    return false;
                };
                let (Some(&who), Some(acl)) = (uid_of.get(sender), queue_acls.get(q)) else {
                    return false;
                };
                acl.mode
                    .allows_with_group(who, acl.owner, acl.group, false, true)
            }
        }
    }

    /// May `subject` terminate `victim`?
    pub fn allows_kill(&self, subject: &str, victim: &str) -> bool {
        match self {
            KernelGate::Minix { acm, .. } => minix_ac(subject).is_some_and(|s| {
                acm.check(s, pm::PM_AC_ID, MsgType::new(pm::PM_KILL))
                    .is_allowed()
            }),
            // No TCB capabilities are distributed in the scenario spec.
            KernelGate::Sel4 { .. } => false,
            KernelGate::Linux { uid_of, .. } => {
                let (Some(&s), Some(&v)) = (uid_of.get(subject), uid_of.get(victim)) else {
                    return false;
                };
                s.is_root() || s == v
            }
        }
    }

    /// May `subject` create a new process/thread?
    pub fn allows_fork(&self, subject: &str) -> bool {
        match self {
            KernelGate::Minix { acm, .. } => minix_ac(subject).is_some_and(|s| {
                acm.check(s, pm::PM_AC_ID, MsgType::new(pm::PM_FORK2))
                    .is_allowed()
            }),
            // CAmkES distributes no thread-creation authority.
            KernelGate::Sel4 { .. } => false,
            // fork(2) is ambient on a monolithic kernel.
            KernelGate::Linux { .. } => true,
        }
    }

    /// May `subject` access device `dev` (write or read)?
    pub fn allows_device(&self, subject: &str, dev: DeviceId, write: bool) -> bool {
        match self {
            KernelGate::Minix { device_owners, .. } => minix_ac(subject)
                .is_some_and(|s| device_owners.get(&dev).is_some_and(|&owner| owner == s)),
            KernelGate::Sel4 { device_caps, .. } => {
                device_caps.contains(&(subject.to_string(), dev, write))
                    || (!write && device_caps.contains(&(subject.to_string(), dev, true)))
            }
            KernelGate::Linux {
                uid_of,
                device_acls,
                ..
            } => {
                let (Some(&who), Some(&(owner, mode))) =
                    (uid_of.get(subject), device_acls.get(&dev))
                else {
                    return false;
                };
                mode.allows(who, owner, !write, write)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minix_gate_enforces_the_acm() {
        let g = KernelGate::for_cell(
            Platform::Minix,
            AttackerModel::ArbitraryCode,
            UidScheme::SharedAccount,
        );
        assert!(g.allows_send(names::WEB, names::CONTROL, MT_SETPOINT));
        assert!(!g.allows_send(names::WEB, names::CONTROL, MT_SENSOR_READING));
        assert!(!g.allows_send(names::WEB, names::HEATER, MT_FAN_CMD));
        assert!(!g.allows_kill(names::WEB, names::CONTROL));
        assert!(g.allows_fork(names::WEB), "the paper leaves fork open");
        assert!(!g.allows_device(names::WEB, DeviceId::FAN, true));
        assert!(g.allows_device(names::HEATER, DeviceId::FAN, true));
    }

    #[test]
    fn sel4_gate_is_capability_possession() {
        let g = KernelGate::for_cell(
            Platform::Sel4,
            AttackerModel::Root,
            UidScheme::SharedAccount,
        );
        // Web holds the controller endpoint cap — the kernel admits all
        // three labels; the server's reply sorts them out in-band.
        assert!(g.allows_send(names::WEB, names::CONTROL, MT_SENSOR_READING));
        assert!(!g.allows_send(names::WEB, names::HEATER, MT_FAN_CMD));
        assert!(
            !g.allows_kill(names::WEB, names::CONTROL),
            "root is meaningless"
        );
        assert!(!g.allows_fork(names::WEB));
        assert!(!g.allows_device(names::WEB, DeviceId::ALARM, true));
        assert!(g.allows_device(names::ALARM, DeviceId::ALARM, true));
        assert!(g.allows_device(names::SENSOR, DeviceId::TEMP_SENSOR, false));
    }

    #[test]
    fn linux_shared_account_falls_root_bypasses_hardened() {
        let shared = KernelGate::for_cell(
            Platform::Linux,
            AttackerModel::ArbitraryCode,
            UidScheme::SharedAccount,
        );
        assert!(shared.allows_send(names::WEB, names::CONTROL, MT_SENSOR_READING));
        assert!(shared.allows_send(names::WEB, names::HEATER, MT_FAN_CMD));
        assert!(shared.allows_kill(names::WEB, names::CONTROL), "same uid");
        assert!(shared.allows_device(names::WEB, DeviceId::ALARM, true));

        let hardened = KernelGate::for_cell(
            Platform::Linux,
            AttackerModel::ArbitraryCode,
            UidScheme::PerProcessHardened,
        );
        assert!(!hardened.allows_send(names::WEB, names::CONTROL, MT_SENSOR_READING));
        assert!(hardened.allows_send(names::WEB, names::CONTROL, MT_SETPOINT));
        assert!(!hardened.allows_kill(names::WEB, names::CONTROL));
        assert!(!hardened.allows_device(names::WEB, DeviceId::ALARM, true));

        let root = KernelGate::for_cell(
            Platform::Linux,
            AttackerModel::Root,
            UidScheme::PerProcessHardened,
        );
        assert!(root.allows_send(names::WEB, names::CONTROL, MT_SENSOR_READING));
        assert!(root.allows_kill(names::WEB, names::CONTROL));
        assert!(root.allows_device(names::WEB, DeviceId::ALARM, true));
    }
}
