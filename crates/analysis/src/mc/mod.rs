//! # bas-mc — bounded explicit-state model checking of the scenario
//!
//! The taint analyzer ([`crate::taint`]) predicts the attack matrix by
//! graph reachability; the dynamic harness executes it on one schedule.
//! This module closes the remaining gap: it *enumerates every
//! interleaving* of the five scenario processes and the attacker's
//! primitives up to a bounded horizon, adjudicating each operation
//! simultaneously against the Policy IR and the platform's raw kernel
//! artifacts, and checks:
//!
//! * **safety** — no IPC delivery the Policy IR forbids is admitted by
//!   the kernel artifact (and vice versa: `gate-mismatch`), no
//!   non-driver subject writes a device register
//!   (`unauthorized-device-write`), no fork is admitted beyond its quota
//!   (`quota-breach`);
//! * **bounded response** — once the plant crosses the alarm threshold,
//!   the alarm asserts within `k` environment ticks *under every
//!   interleaving* (`bounded-response`), and no critical process dies
//!   (`critical-killed`), and no unauthorized setpoint is accepted
//!   (`reference-divergence`).
//!
//! The module tree: [`state`] (the explored value type), [`gate`] (the
//! kernel-artifact adjudicator), [`model`] (the
//! [`bas_core::semantics::StepSemantics`] implementation), [`explore`]
//! (BFS + ample-set partial-order reduction + counterexample
//! minimization), [`verdict`] (per-cell three-valued outcomes and the
//! 54-cell matrix), and [`replay`] (feeding minimized counterexamples
//! back through the real attack harness).

pub mod explore;
pub mod gate;
pub mod model;
pub mod replay;
pub mod state;
pub mod verdict;

pub use explore::{explore, minimize_trace, Exploration, ExploreOpts, ExploreStats};
pub use gate::KernelGate;
pub use model::{attack_ops, McBounds, ScenarioModel};
pub use replay::{property_manifested, replay_counterexample, ReplayResult};
pub use state::{flags, AttackOp, McAction, McState, Proc};
pub use verdict::{
    check_cell, check_cells, check_matrix, classify, matrix_cells, CellReport, Counterexample,
    McProperty,
};
