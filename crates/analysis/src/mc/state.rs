//! The abstract scenario state the model checker explores.
//!
//! The state is a small value type: channel contents are capacity-1
//! slots (a fresh write overwrites a pending message, so "who wins the
//! race" is decided by the interleaving, which is exactly what the
//! checker enumerates), temperature is a two-valued abstraction of the
//! plant (in band / above the alarm threshold), and all counters are
//! saturating small integers. Everything derives `Hash + Eq` for
//! hashed-state deduplication.

/// The five scenario processes, in lockstep order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proc {
    /// Temperature sensor driver.
    Sensor,
    /// The control-loop process.
    Ctrl,
    /// Heater/fan driver.
    Heater,
    /// Alarm driver.
    Alarm,
    /// The web interface — the attacker's position.
    Web,
}

impl Proc {
    /// The four critical processes whose moves gate the environment tick.
    pub const CRITICAL: [Proc; 4] = [Proc::Sensor, Proc::Ctrl, Proc::Heater, Proc::Alarm];

    /// Bit index for `alive` / `moved` masks.
    pub fn bit(self) -> u8 {
        match self {
            Proc::Sensor => 1 << 0,
            Proc::Ctrl => 1 << 1,
            Proc::Heater => 1 << 2,
            Proc::Alarm => 1 << 3,
            Proc::Web => 1 << 4,
        }
    }

    /// Owner index for ample-set grouping (env = 5).
    pub fn index(self) -> usize {
        match self {
            Proc::Sensor => 0,
            Proc::Ctrl => 1,
            Proc::Heater => 2,
            Proc::Alarm => 3,
            Proc::Web => 4,
        }
    }
}

/// Who a pending sensor reading claims to be from. The kernel stamps the
/// true origin where the platform supports it; the controller's
/// authentication check consumes this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadingOrigin {
    /// The real sensor driver.
    Sensor,
    /// Injected by the web interface.
    Web,
}

/// A pending web → controller message (capacity-1 slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WebMsg {
    /// Junk flood traffic (malformed; the controller discards it).
    Junk,
    /// An out-of-range setpoint (the tamper payload).
    TamperSetpoint,
    /// A replayed in-range but unauthorized setpoint.
    ReplaySetpoint,
}

/// An attacker primitive. Which ones are offered depends on the attack
/// under analysis; each costs one unit of the attacker's action budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackOp {
    /// Inject an "everything is normal" sensor reading.
    InjectReading,
    /// Forge a fan-off command to the heater driver.
    ForgeFanOff,
    /// Forge an alarm-off command to the alarm driver.
    ForgeAlarmOff,
    /// Kill a critical process.
    Kill(Proc),
    /// Fork one child (the fork-bomb primitive).
    Fork,
    /// Enumerate reachable IPC handles (one-shot probe).
    Probe,
    /// Flood the legitimate setpoint channel with junk.
    Flood,
    /// Send an out-of-range setpoint.
    Tamper,
    /// Replay a captured in-range setpoint.
    Replay,
    /// Write the fan device register directly (force off).
    DevForceFan,
    /// Write the alarm device register directly (force off).
    DevForceAlarm,
    /// Invoke a type-confused handle (kernel-object masquerading).
    Masquerade,
    /// Invoke a derivation-breached capability (amplified, leaked past
    /// a revoke, or expired-but-live).
    UseDerived,
    /// Revoke the sensor→controller send right mid-run (capability
    /// churn, the race-detector cross-validation).
    Revoke,
    /// Re-grant the previously revoked sensor→controller right.
    Regrant,
}

/// One atomic transition of the abstract scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum McAction {
    /// A benign process takes its (deterministic) local step.
    Step(Proc),
    /// The attacker executes one primitive from the web position.
    Attack(AttackOp),
    /// The environment advances: plant physics + the round barrier.
    EnvTick,
}

impl std::fmt::Display for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Proc::Sensor => "sensor",
            Proc::Ctrl => "ctrl",
            Proc::Heater => "heater",
            Proc::Alarm => "alarm",
            Proc::Web => "web",
        })
    }
}

impl std::fmt::Display for AttackOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackOp::InjectReading => f.write_str("inject-reading"),
            AttackOp::ForgeFanOff => f.write_str("forge-fan-off"),
            AttackOp::ForgeAlarmOff => f.write_str("forge-alarm-off"),
            AttackOp::Kill(p) => write!(f, "kill({p})"),
            AttackOp::Fork => f.write_str("fork"),
            AttackOp::Probe => f.write_str("probe"),
            AttackOp::Flood => f.write_str("flood"),
            AttackOp::Tamper => f.write_str("tamper"),
            AttackOp::Replay => f.write_str("replay"),
            AttackOp::DevForceFan => f.write_str("dev-force-fan"),
            AttackOp::DevForceAlarm => f.write_str("dev-force-alarm"),
            AttackOp::Masquerade => f.write_str("masquerade"),
            AttackOp::UseDerived => f.write_str("use-derived"),
            AttackOp::Revoke => f.write_str("revoke"),
            AttackOp::Regrant => f.write_str("regrant"),
        }
    }
}

impl std::fmt::Display for McAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McAction::Step(p) => write!(f, "step:{p}"),
            McAction::Attack(op) => write!(f, "attack:{op}"),
            McAction::EnvTick => f.write_str("tick"),
        }
    }
}

/// Violation/fact flags accumulated monotonically in the state.
pub mod flags {
    /// The attack mechanism got past its enforcement point at least once.
    pub const DELIVERED: u8 = 1 << 0;
    /// The Policy-IR verdict and the kernel-artifact verdict disagreed
    /// on some operation — the cross-validation property.
    pub const GATE_MISMATCH: u8 = 1 << 1;
    /// A fork was admitted beyond the configured quota.
    pub const QUOTA_BREACH: u8 = 1 << 2;
    /// A device register was written by a subject that is not its driver.
    pub const UNAUTH_DEV_WRITE: u8 = 1 << 3;
    /// A kernel object was reached through a type-confused handle.
    pub const MASQUERADE: u8 = 1 << 4;
    /// A derivation-breached capability (amplified / revocation-leaked /
    /// expired-but-live) was honored.
    pub const DERIVATION_BREACH: u8 = 1 << 5;
    /// A message admitted before a revoke was consumed after it — the
    /// kernel honored a stale delivery (capability TOCTOU race).
    pub const CAP_RACE: u8 = 1 << 6;
}

/// The explored state. Field order matters only for derived `Hash`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct McState {
    /// Liveness bits (see [`Proc::bit`]; web liveness is not tracked —
    /// the attacker never dies).
    pub alive: u8,
    /// Which processes have taken their action this round.
    pub moved: u8,
    /// Environment ticks so far.
    pub round: u8,
    /// Plant temperature above the alarm threshold.
    pub temp_hot: bool,
    /// Consecutive env ticks with `temp_hot` and the alarm device off —
    /// the bounded-response counter.
    pub hot_unalarmed: u8,
    /// Fan device register.
    pub fan_dev: bool,
    /// Alarm device register.
    pub alarm_dev: bool,
    /// Pending sensor reading: (claims hot?, origin).
    pub reading: Option<(bool, ReadingOrigin)>,
    /// Pending web → controller message.
    pub web_msg: Option<WebMsg>,
    /// Pending fan command (on?).
    pub fan_cmd: Option<bool>,
    /// Pending alarm command (on?).
    pub alarm_cmd: Option<bool>,
    /// The controller's accepted belief about the temperature.
    pub believes_hot: bool,
    /// An unauthorized setpoint was accepted: the plant reference has
    /// diverged from the authorized one (the replay compromise).
    pub diverged: bool,
    /// Whether the sensor→controller send right currently stands (the
    /// churn attacker flips this with [`AttackOp::Revoke`] /
    /// [`AttackOp::Regrant`]).
    pub cap_ok: bool,
    /// Children forked by the attacker (saturating).
    pub forks: u8,
    /// Remaining attacker actions.
    pub budget: u8,
    /// Monotone fact flags (see [`flags`]).
    pub flags: u8,
}

impl McState {
    /// The initial state: everyone alive, plant in band, channels empty.
    pub fn initial(budget: u8) -> McState {
        McState {
            alive: Proc::CRITICAL.iter().map(|p| p.bit()).sum(),
            moved: 0,
            round: 0,
            temp_hot: false,
            hot_unalarmed: 0,
            fan_dev: false,
            alarm_dev: false,
            reading: None,
            web_msg: None,
            fan_cmd: None,
            alarm_cmd: None,
            believes_hot: false,
            diverged: false,
            cap_ok: true,
            forks: 0,
            budget,
            flags: 0,
        }
    }

    /// Whether `p` is alive.
    pub fn is_alive(&self, p: Proc) -> bool {
        self.alive & p.bit() != 0
    }

    /// Whether `p` has moved this round.
    pub fn has_moved(&self, p: Proc) -> bool {
        self.moved & p.bit() != 0
    }

    /// Whether every living critical process has taken its turn.
    pub fn round_complete(&self) -> bool {
        let required = self.alive & (Proc::CRITICAL.iter().map(|p| p.bit()).sum::<u8>());
        self.moved & required == required
    }

    /// Whether any critical process has been lost.
    pub fn critical_lost(&self) -> bool {
        Proc::CRITICAL.iter().any(|p| !self.is_alive(*p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_healthy() {
        let s = McState::initial(6);
        assert!(!s.critical_lost());
        assert!(!s.round_complete());
        assert!(s.is_alive(Proc::Ctrl));
        assert!(!s.has_moved(Proc::Ctrl));
    }

    #[test]
    fn round_completes_without_dead_processes() {
        let mut s = McState::initial(6);
        s.alive &= !Proc::Ctrl.bit();
        s.moved = Proc::Sensor.bit() | Proc::Heater.bit() | Proc::Alarm.bit();
        assert!(s.round_complete(), "dead processes are not awaited");
        assert!(s.critical_lost());
    }

    #[test]
    fn proc_bits_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for p in [
            Proc::Sensor,
            Proc::Ctrl,
            Proc::Heater,
            Proc::Alarm,
            Proc::Web,
        ] {
            assert!(seen.insert(p.bit()));
        }
    }
}
