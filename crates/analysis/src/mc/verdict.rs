//! Per-cell model-checking verdicts over the attack matrix.
//!
//! [`check_cell`] explores one `(platform, attacker, attack)` cell and
//! reduces reachability facts to the paper's three-valued outcome:
//! a reachable compromise state ⇒ `Compromised`, reachable mechanism
//! delivery without compromise ⇒ `ResourceExhaustionOnly`, neither ⇒
//! `Stopped`. Because exploration is exhaustive at the bounded horizon
//! (unless truncated), a `Stopped` verdict is a *proof over every
//! interleaving* at that depth — strictly stronger than the single
//! schedule the dynamic harness runs.

use bas_attack::expectations::{paper_expectation, Expectation};
use bas_attack::{AttackId, AttackerModel};
use bas_core::platform::linux::UidScheme;
use bas_core::scenario::Platform;

use super::explore::{explore, minimize_trace, ExploreOpts, ExploreStats};
use super::model::{McBounds, ScenarioModel};
use super::state::{McAction, McState};
use crate::taint;

/// Fact bits produced by [`classify`]. Bits 0–5 coincide with the
/// monotone state flags; the rest are derived from state shape.
pub mod props {
    use super::super::state::flags;

    /// The attack mechanism delivered (a fact, not a violation).
    pub const DELIVERED: u32 = flags::DELIVERED as u32;
    /// Policy IR vs kernel artifact disagreement.
    pub const GATE_MISMATCH: u32 = flags::GATE_MISMATCH as u32;
    /// Fork admitted beyond quota.
    pub const QUOTA_BREACH: u32 = flags::QUOTA_BREACH as u32;
    /// Device register written by a non-driver.
    pub const UNAUTH_DEV_WRITE: u32 = flags::UNAUTH_DEV_WRITE as u32;
    /// A kernel object was reached through a type-confused handle.
    pub const OBJECT_MASQUERADE: u32 = flags::MASQUERADE as u32;
    /// A derivation-breached capability was honored.
    pub const DERIVATION_BREACH: u32 = flags::DERIVATION_BREACH as u32;
    /// `hot_unalarmed` exceeded the bounded-response bound `k`.
    pub const BOUNDED_RESPONSE: u32 = 1 << 6;
    /// A critical process is dead.
    pub const CRITICAL_KILLED: u32 = 1 << 7;
    /// The plant reference diverged from the authorized setpoint.
    pub const REF_DIVERGENCE: u32 = 1 << 8;
    /// A stale (revoked-then-consumed) delivery was honored. The state
    /// flag lives at bit 6 of the `u8`, which this mask space already
    /// spends on `BOUNDED_RESPONSE` — [`classify`](super::classify)
    /// relocates it here.
    pub const CAPABILITY_RACE: u32 = 1 << 9;

    /// Facts that constitute a compromise. `CAPABILITY_RACE` is
    /// deliberately excluded: a stale delivery is an enforcement
    /// *window*, not by itself a plant compromise. (A churn-enabled
    /// cell can still be `Compromised` — sustained revocation starves
    /// the alarm path into a `BOUNDED_RESPONSE` violation — but that
    /// verdict comes from the starvation, never from the race bit.)
    pub const COMPROMISE: u32 = UNAUTH_DEV_WRITE
        | OBJECT_MASQUERADE
        | DERIVATION_BREACH
        | BOUNDED_RESPONSE
        | CRITICAL_KILLED
        | REF_DIVERGENCE;
    /// Internal invariants expected unreachable in every healthy config.
    pub const INVARIANT: u32 = GATE_MISMATCH | QUOTA_BREACH;
}

/// The property a counterexample witnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McProperty {
    /// The alarm stayed off more than `k` ticks past the threshold.
    BoundedResponse,
    /// A critical process was terminated.
    CriticalKilled,
    /// An unauthorized setpoint was accepted.
    ReferenceDivergence,
    /// A non-driver subject wrote a device register.
    UnauthorizedDeviceWrite,
    /// Policy IR and kernel artifact disagreed on an operation.
    GateMismatch,
    /// A fork was admitted beyond its quota.
    QuotaBreach,
    /// A kernel object was reached through a type-confused handle.
    ObjectMasquerade,
    /// A derivation-breached capability was honored by the kernel.
    DerivationBreach,
    /// A message admitted before a revoke was consumed after it.
    CapabilityRace,
}

impl McProperty {
    /// The fact bit this property corresponds to.
    pub fn bit(self) -> u32 {
        match self {
            McProperty::BoundedResponse => props::BOUNDED_RESPONSE,
            McProperty::CriticalKilled => props::CRITICAL_KILLED,
            McProperty::ReferenceDivergence => props::REF_DIVERGENCE,
            McProperty::UnauthorizedDeviceWrite => props::UNAUTH_DEV_WRITE,
            McProperty::GateMismatch => props::GATE_MISMATCH,
            McProperty::QuotaBreach => props::QUOTA_BREACH,
            McProperty::ObjectMasquerade => props::OBJECT_MASQUERADE,
            McProperty::DerivationBreach => props::DERIVATION_BREACH,
            McProperty::CapabilityRace => props::CAPABILITY_RACE,
        }
    }

    /// All properties, counterexample-priority first (process loss and
    /// divergence replay most directly; invariants last).
    pub const ALL: [McProperty; 9] = [
        McProperty::CriticalKilled,
        McProperty::ReferenceDivergence,
        McProperty::UnauthorizedDeviceWrite,
        // Before BoundedResponse: in churn-enabled cells a sustained
        // revoke also starves the alarm path (a bounded-response
        // compromise), but the race is the property those cells exist
        // to witness. Unreachable in plain cells, so their priority
        // order is unchanged.
        McProperty::CapabilityRace,
        McProperty::BoundedResponse,
        McProperty::ObjectMasquerade,
        McProperty::DerivationBreach,
        McProperty::GateMismatch,
        McProperty::QuotaBreach,
    ];
}

impl std::fmt::Display for McProperty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            McProperty::BoundedResponse => "bounded-response",
            McProperty::CriticalKilled => "critical-killed",
            McProperty::ReferenceDivergence => "reference-divergence",
            McProperty::UnauthorizedDeviceWrite => "unauthorized-device-write",
            McProperty::GateMismatch => "gate-mismatch",
            McProperty::QuotaBreach => "quota-breach",
            McProperty::ObjectMasquerade => "object-masquerade",
            McProperty::DerivationBreach => "derivation-breach",
            McProperty::CapabilityRace => "capability-race",
        };
        f.write_str(s)
    }
}

/// Maps a state to its fact bitmask.
pub fn classify(bounds: &McBounds, s: &McState) -> u32 {
    // Flag bits 0..5 map through unchanged; CAP_RACE (bit 6 of the u8)
    // is relocated past the derived-fact bits.
    let mut f = u32::from(s.flags) & 0x3f;
    if s.flags & super::state::flags::CAP_RACE != 0 {
        f |= props::CAPABILITY_RACE;
    }
    if s.hot_unalarmed > bounds.response_bound {
        f |= props::BOUNDED_RESPONSE;
    }
    if s.critical_lost() {
        f |= props::CRITICAL_KILLED;
    }
    if s.diverged {
        f |= props::REF_DIVERGENCE;
    }
    f
}

/// A minimized violation witness.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated property.
    pub property: McProperty,
    /// A 1-minimal action trace from the initial state to a violating
    /// state (every action is enabled where it is taken).
    pub trace: Vec<McAction>,
}

/// The model-checking result for one matrix cell.
pub struct CellReport {
    /// Platform of the cell.
    pub platform: Platform,
    /// Attacker model of the cell.
    pub attacker: AttackerModel,
    /// Attack of the cell.
    pub attack: AttackId,
    /// The checker's verdict over all interleavings at the bound.
    pub mc: Expectation,
    /// The paper's ground-truth expectation.
    pub paper: Expectation,
    /// The static analyzer's (PR 1 taint) verdict for the same policy.
    pub taint: Expectation,
    /// Exploration counters (reduced run).
    pub stats: ExploreStats,
    /// Which properties were reachable (bitmask over [`props`]).
    pub reached: u32,
    /// The highest-priority compromise counterexample, minimized.
    pub counterexample: Option<Counterexample>,
}

impl CellReport {
    /// Three-way agreement: checker == paper == static analyzer.
    pub fn agrees(&self) -> bool {
        self.mc == self.paper && self.mc == self.taint
    }

    /// Whether an internal invariant (gate mismatch / quota breach) was
    /// reachable — expected false in every healthy configuration.
    pub fn invariant_violated(&self) -> bool {
        self.reached & props::INVARIANT != 0
    }
}

/// Collapses reachability to the three-valued outcome.
fn to_expectation(reached: u32) -> Expectation {
    if reached & props::COMPROMISE != 0 {
        Expectation::Compromised
    } else if reached & props::DELIVERED != 0 {
        Expectation::ResourceExhaustionOnly
    } else {
        Expectation::Stopped
    }
}

/// Model-checks one cell. `opts` controls POR and the state budget.
pub fn check_cell(model: &ScenarioModel, opts: &ExploreOpts) -> CellReport {
    let bounds = model.bounds;
    let ex = explore(model, opts, |s| classify(&bounds, s));

    let mut reached = 0;
    for bit in 0..32 {
        if ex.reached(1 << bit) {
            reached |= 1 << bit;
        }
    }

    let counterexample = McProperty::ALL
        .iter()
        .find(|p| ex.reached(p.bit()))
        .map(|&property| {
            let witness = ex.witness(property.bit()).expect("reached");
            let trace = minimize_trace(model, witness, |s| {
                classify(&bounds, s) & property.bit() != 0
            });
            Counterexample { property, trace }
        });

    CellReport {
        platform: model.platform,
        attacker: model.attacker,
        attack: model.attack,
        mc: to_expectation(reached),
        paper: paper_expectation(model.platform, model.attacker, model.attack),
        taint: taint::expectation(&taint::predict(model.ir(), model.attack)),
        stats: ex.stats,
        reached,
        counterexample,
    }
}

/// The `(platform, attacker, attack)` tuples of the full matrix for
/// `platforms`, platform-major — the same order as `predicted_matrix` /
/// `exp_attack_matrix`.
pub fn matrix_cells(platforms: &[Platform]) -> Vec<(Platform, AttackerModel, AttackId)> {
    let mut cells = Vec::new();
    for &platform in platforms {
        for attack in AttackId::ALL {
            for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
                cells.push((platform, attacker, attack));
            }
        }
    }
    cells
}

/// Model-checks the full 54-cell matrix (platform-major, the same order
/// as `predicted_matrix` / `exp_attack_matrix`).
pub fn check_matrix(scheme: UidScheme, opts: &ExploreOpts) -> Vec<CellReport> {
    check_cells(
        &matrix_cells(&[Platform::Linux, Platform::Minix, Platform::Sel4]),
        scheme,
        opts,
        1,
    )
}

/// Model-checks `cells` across `sweep_workers` threads, preserving input
/// order in the result. Cells are independent explorations, so this
/// parallelizes at the cell boundary; per-cell layer parallelism
/// (`opts.workers`) composes with it, but a sweep normally wants
/// `opts.workers == 1` — cell-level parallelism already saturates the
/// cores without oversubscription. Reports are identical at any
/// `sweep_workers` (each cell is a pure function of its inputs).
pub fn check_cells(
    cells: &[(Platform, AttackerModel, AttackId)],
    scheme: UidScheme,
    opts: &ExploreOpts,
    sweep_workers: usize,
) -> Vec<CellReport> {
    let workers = sweep_workers.clamp(1, cells.len().max(1));
    if workers <= 1 {
        return cells
            .iter()
            .map(|&(platform, attacker, attack)| {
                let model = ScenarioModel::new(platform, attacker, attack, scheme);
                check_cell(&model, opts)
            })
            .collect();
    }
    let ticket = std::sync::atomic::AtomicUsize::new(0);
    let mut indexed: Vec<(usize, CellReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let idx = ticket.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&(platform, attacker, attack)) = cells.get(idx) else {
                            break;
                        };
                        let model = ScenarioModel::new(platform, attacker, attack, scheme);
                        out.push((idx, check_cell(&model, opts)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    // Completion order depends on scheduling; report order must not.
    indexed.sort_by_key(|(idx, _)| *idx);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_core::semantics::replay_trace;

    fn quick_opts() -> ExploreOpts {
        ExploreOpts {
            use_por: true,
            state_budget: 2_000_000,
            workers: 1,
        }
    }

    #[test]
    fn minix_kill_is_proved_stopped() {
        let m = ScenarioModel::new(
            Platform::Minix,
            AttackerModel::ArbitraryCode,
            AttackId::KillCritical,
            UidScheme::SharedAccount,
        );
        let r = check_cell(&m, &quick_opts());
        assert!(!r.stats.truncated, "must be exhaustive to prove");
        assert_eq!(r.mc, Expectation::Stopped);
        assert!(r.agrees());
        assert!(!r.invariant_violated());
        assert!(r.counterexample.is_none());
    }

    #[test]
    fn linux_shared_kill_yields_a_replayable_counterexample() {
        let m = ScenarioModel::new(
            Platform::Linux,
            AttackerModel::ArbitraryCode,
            AttackId::KillCritical,
            UidScheme::SharedAccount,
        );
        let r = check_cell(&m, &quick_opts());
        assert_eq!(r.mc, Expectation::Compromised);
        assert!(r.agrees());
        let cx = r.counterexample.expect("compromise ⇒ witness");
        assert_eq!(cx.property, McProperty::CriticalKilled);
        let states = replay_trace(&m, &cx.trace).expect("minimized trace stays feasible");
        let bounds = m.bounds;
        assert!(states
            .iter()
            .any(|s| classify(&bounds, s) & cx.property.bit() != 0));
    }

    #[test]
    fn sel4_spoof_is_stopped_despite_kernel_admission() {
        let m = ScenarioModel::new(
            Platform::Sel4,
            AttackerModel::Root,
            AttackId::SpoofSensorData,
            UidScheme::SharedAccount,
        );
        let r = check_cell(&m, &quick_opts());
        assert!(!r.stats.truncated);
        assert_eq!(r.mc, Expectation::Stopped);
        assert!(r.agrees());
    }

    #[test]
    fn churn_cell_reaches_the_capability_race_by_interleaving() {
        // MINIX + kill is proved Stopped without churn; adding the
        // revoke/regrant primitives must surface the race — an admitted
        // reading consumed after the revoke. The cell also turns
        // Compromised, but through BOUNDED_RESPONSE (sustained
        // revocation starves the alarm path), never through the race
        // bit itself.
        let m = ScenarioModel::new(
            Platform::Minix,
            AttackerModel::ArbitraryCode,
            AttackId::KillCritical,
            UidScheme::SharedAccount,
        )
        .with_churn();
        let r = check_cell(&m, &quick_opts());
        assert!(!r.stats.truncated, "churn cell stays exhaustive");
        assert_ne!(r.reached & props::CAPABILITY_RACE, 0, "race reachable");
        assert_ne!(
            r.reached & props::BOUNDED_RESPONSE,
            0,
            "revocation starvation is a DoS vector"
        );
        assert_eq!(r.mc, Expectation::Compromised, "starvation compromises");
        assert!(!r.invariant_violated());
        let cx = r.counterexample.expect("reached property ⇒ witness");
        assert_eq!(cx.property, McProperty::CapabilityRace);
        let states = replay_trace(&m, &cx.trace).expect("witness stays feasible");
        let bounds = m.bounds;
        assert!(states
            .iter()
            .any(|s| classify(&bounds, s) & props::CAPABILITY_RACE != 0));
    }

    #[test]
    fn plain_cells_never_reach_the_capability_race() {
        // Without the churn primitives the cap_ok bit never flips, so
        // the matrix verdicts are untouched by the new property.
        for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
            let m = ScenarioModel::new(
                platform,
                AttackerModel::Root,
                AttackId::SpoofSensorData,
                UidScheme::PerProcessHardened,
            );
            let r = check_cell(&m, &quick_opts());
            assert_eq!(
                r.reached & props::CAPABILITY_RACE,
                0,
                "{platform}: no churn, no race"
            );
        }
    }

    #[test]
    fn por_preserves_verdicts_while_reducing_states() {
        let cell = |use_por: bool| {
            let m = ScenarioModel::new(
                Platform::Minix,
                AttackerModel::ArbitraryCode,
                AttackId::FloodLegitChannel,
                UidScheme::SharedAccount,
            );
            check_cell(
                &m,
                &ExploreOpts {
                    use_por,
                    state_budget: 2_000_000,
                    workers: 1,
                },
            )
        };
        let reduced = cell(true);
        let full = cell(false);
        assert!(!reduced.stats.truncated && !full.stats.truncated);
        assert_eq!(reduced.mc, full.mc);
        assert_eq!(reduced.reached, full.reached);
        assert!(
            reduced.stats.states < full.stats.states,
            "POR ineffective: {} !< {}",
            reduced.stats.states,
            full.stats.states
        );
    }
}
