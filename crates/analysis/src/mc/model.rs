//! The scenario transition relation the checker explores.
//!
//! [`ScenarioModel`] implements [`StepSemantics`] for one matrix cell
//! `(platform, attacker, attack)`: the four critical processes take one
//! deterministic step per round, the attacker interleaves up to one
//! primitive per round from the web position, and an environment tick
//! closes the round with plant physics. Every IPC send, kill, fork and
//! device access is adjudicated **twice** — by the Policy IR and by the
//! kernel-artifact [`KernelGate`] — and any disagreement raises the
//! [`flags::GATE_MISMATCH`] violation, so exploration cross-validates
//! the static lowering against the enforcement artifacts on every
//! reachable interleaving.
//!
//! Channel slots hold the *last admitted-and-acceptable* message
//! (mailbox semantics: the real servers drain their queues each
//! activation, so a message the application would reject in-band cannot
//! mask a valid one — but two acceptable writes race, and the
//! interleaving decides the winner; that race is exactly what the
//! checker enumerates).
//!
//! The transition graph is a DAG: within a round the `moved` mask grows
//! strictly, and the tick strictly increases `round`. This is what makes
//! the ample-set cycle condition (C3) vacuous — see [`super::explore`].

use bas_attack::{AttackId, AttackerModel};
use bas_core::platform::linux::UidScheme;
use bas_core::proto::{MT_ALARM_CMD, MT_FAN_CMD, MT_SENSOR_READING, MT_SETPOINT};
use bas_core::scenario::Platform;
use bas_core::semantics::StepSemantics;
use bas_sim::device::DeviceId;

use super::gate::KernelGate;
use super::state::{flags, AttackOp, McAction, McState, Proc, ReadingOrigin, WebMsg};
use crate::flow::{self, CapId};
use crate::ir::{ChannelKind, ObjectId, PolicyModel};
use crate::scenario::model_for;

/// Exploration bounds for one cell.
#[derive(Debug, Clone, Copy)]
pub struct McBounds {
    /// Rounds explored (environment ticks).
    pub max_rounds: u8,
    /// Bounded-response bound `k`: the alarm must be on within `k` ticks
    /// of the plant crossing the threshold; `hot_unalarmed > k` violates.
    pub response_bound: u8,
    /// Attacker actions available across the whole run.
    pub attacker_budget: u8,
    /// The tick at which the plant crosses the alarm threshold (a heat
    /// burst beyond the fan's authority, as in the dynamic harness).
    pub burst_round: u8,
    /// Saturation cap on attacker children (bounds the fork-bomb state).
    pub fork_cap: u8,
}

impl Default for McBounds {
    fn default() -> McBounds {
        // Healthy worst-case propagation sensor → controller → driver
        // holds the alarm off for 3 ticks after the burst; k = 4 gives
        // one tick of slack, so only attacker interference can violate.
        // Budget 6 > k + 1 lets the attacker sustain a masking campaign
        // long enough to cross the bound within 7 rounds.
        McBounds {
            max_rounds: 7,
            response_bound: 4,
            attacker_budget: 6,
            burst_round: 2,
            fork_cap: 3,
        }
    }
}

/// The attacker primitives each attack of the catalogue offers.
pub fn attack_ops(attack: AttackId) -> &'static [AttackOp] {
    match attack {
        AttackId::SpoofSensorData => &[AttackOp::InjectReading],
        AttackId::SpoofActuatorCommands => &[AttackOp::ForgeFanOff, AttackOp::ForgeAlarmOff],
        AttackId::KillCritical => &[AttackOp::Kill(Proc::Ctrl), AttackOp::Kill(Proc::Alarm)],
        AttackId::ForkBomb => &[AttackOp::Fork],
        AttackId::BruteForceHandles => &[AttackOp::Probe],
        AttackId::FloodLegitChannel => &[AttackOp::Flood],
        AttackId::DirectDeviceWrite => &[AttackOp::DevForceFan, AttackOp::DevForceAlarm],
        AttackId::SetpointTamper => &[AttackOp::Tamper],
        AttackId::ReplaySetpoint => &[AttackOp::Replay],
    }
}

/// What exercising a seeded (breached or masquerading) capability does
/// to the plant, determined by the object it reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapEffect {
    /// Force the fan device register off.
    ForceFan,
    /// Force the alarm device register off.
    ForceAlarm,
    /// Corrupt controller state (the reference diverges).
    Corrupt,
}

/// A capability the derivation graph hands the attacker: the flow
/// analysis found it anomalous, and the checker offers one attacker
/// primitive that exercises it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededCap {
    /// Whether the kernel would actually honor the handle (masquerading
    /// is stopped where handles are unguessable).
    pub exploitable: bool,
    /// The plant effect if honored.
    pub effect: CapEffect,
}

/// One matrix cell as an explicit transition relation.
pub struct ScenarioModel {
    /// The platform under analysis.
    pub platform: Platform,
    /// The attacker model (A1 code-exec / A2 root).
    pub attacker: AttackerModel,
    /// The attack mounted from the web position.
    pub attack: AttackId,
    /// The Linux uid scheme (ignored elsewhere).
    pub scheme: UidScheme,
    /// Exploration bounds.
    pub bounds: McBounds,
    ir: PolicyModel,
    gate: KernelGate,
    /// A type-confused handle in the attacker's possession, if any.
    masq: Option<SeededCap>,
    /// A derivation-breached capability in the attacker's possession.
    derived: Option<SeededCap>,
    /// Whether the attacker may churn the sensor→controller right
    /// ([`AttackOp::Revoke`] / [`AttackOp::Regrant`]). Off in the
    /// 54-cell matrix, so its verdicts are unchanged.
    churn: bool,
}

impl ScenarioModel {
    /// Builds the cell model with default bounds.
    pub fn new(
        platform: Platform,
        attacker: AttackerModel,
        attack: AttackId,
        scheme: UidScheme,
    ) -> ScenarioModel {
        Self::with_ir(
            platform,
            attacker,
            attack,
            scheme,
            model_for(platform, attacker, scheme),
        )
    }

    /// Builds the cell model over an explicit Policy IR — the derivation
    /// scenarios seed `ir.caps` with anomalous capabilities, and the
    /// flow closure decides here which attacker primitives they unlock.
    pub fn with_ir(
        platform: Platform,
        attacker: AttackerModel,
        attack: AttackId,
        scheme: UidScheme,
        ir: PolicyModel,
    ) -> ScenarioModel {
        let (masq, derived) = seeded_caps(&ir);
        ScenarioModel {
            platform,
            attacker,
            attack,
            scheme,
            bounds: McBounds::default(),
            ir,
            gate: KernelGate::for_cell(platform, attacker, scheme),
            masq,
            derived,
            churn: false,
        }
    }

    /// Adds the capability-churn primitives to the attacker's menu: the
    /// checker then interleaves revoke/regrant against the control loop
    /// and searches for a stale delivery ([`flags::CAP_RACE`]) — the
    /// exhaustive-interleaving cross-validation of the dynamic race
    /// detector.
    pub fn with_churn(mut self) -> ScenarioModel {
        self.churn = true;
        self
    }

    /// The Policy IR this cell is adjudicated against.
    pub fn ir(&self) -> &PolicyModel {
        &self.ir
    }

    fn name(&self, p: Proc) -> &str {
        match p {
            Proc::Sensor => &self.ir.roles.sensor,
            Proc::Ctrl => &self.ir.roles.controller,
            Proc::Heater => &self.ir.roles.heater,
            Proc::Alarm => &self.ir.roles.alarm,
            Proc::Web => &self.ir.roles.web,
        }
    }

    /// Dual-adjudicated send: Policy IR vs kernel artifact. Returns the
    /// kernel's verdict; a disagreement raises `GATE_MISMATCH`.
    fn send(&self, st: &mut McState, sender: Proc, receiver: Proc, mtype: u32) -> bool {
        let (s, r) = (self.name(sender), self.name(receiver));
        let ir_ok = self.ir.delivery_channel(s, r, mtype).is_some();
        let kernel_ok = self.gate.allows_send(s, r, mtype);
        if ir_ok != kernel_ok {
            st.flags |= flags::GATE_MISMATCH;
        }
        kernel_ok
    }

    /// Dual-adjudicated device access.
    fn device(&self, st: &mut McState, subject: Proc, dev: DeviceId, write: bool) -> bool {
        let s = self.name(subject);
        let ir_ok = self.ir.device_channel(s, dev, write).is_some();
        let kernel_ok = self.gate.allows_device(s, dev, write);
        if ir_ok != kernel_ok {
            st.flags |= flags::GATE_MISMATCH;
        }
        kernel_ok
    }

    /// The mechanism-delivery judgment of `taint::predict`, applied to a
    /// single channel: on an RPC channel the server's in-band reply *is*
    /// the verdict; elsewhere kernel admission is.
    fn mech_delivers(&self, receiver: Proc, mtype: u32, in_range: bool) -> bool {
        let (w, r) = (self.name(Proc::Web), self.name(receiver));
        match self.ir.delivery_channel(w, r, mtype) {
            Some(ch) if ch.kind == ChannelKind::RpcCall => {
                self.ir.app_accepts(w, r, mtype, in_range)
            }
            Some(_) => true,
            None => false,
        }
    }

    fn apply_step(&self, t: &mut McState, p: Proc) {
        t.moved |= p.bit();
        match p {
            Proc::Sensor => {
                // Read the plant, report to the controller. The sensor is
                // in the controller's authenticated set, so an admitted
                // reading always enters the mailbox slot.
                if self.device(t, Proc::Sensor, DeviceId::TEMP_SENSOR, false)
                    && self.send(t, Proc::Sensor, Proc::Ctrl, MT_SENSOR_READING)
                    // The admission-time recheck: a revoked send right
                    // denies *new* messages. Anything already sitting in
                    // the slot is past the check — that window is the
                    // race the churn cells search for.
                    && t.cap_ok
                {
                    t.reading = Some((t.temp_hot, ReadingOrigin::Sensor));
                }
            }
            Proc::Ctrl => {
                // Drain the mailbox: the reading slot holds only messages
                // that pass authentication (enforced at insertion), so
                // consumption is unconditional belief update.
                if let Some((hot, origin)) = t.reading.take() {
                    // A sensor message admitted before a revoke but
                    // consumed after it: the kernel honored a delivery
                    // current policy no longer authorizes.
                    if origin == ReadingOrigin::Sensor && !t.cap_ok {
                        t.flags |= flags::CAP_RACE;
                    }
                    t.believes_hot = hot;
                }
                if let Some(msg) = t.web_msg.take() {
                    let (w, c) = (self.name(Proc::Web), self.name(Proc::Ctrl));
                    match msg {
                        WebMsg::Junk => {} // malformed; discarded
                        WebMsg::TamperSetpoint => {
                            // Range validation holds on every platform.
                            if self.ir.app_accepts(w, c, MT_SETPOINT, false) {
                                t.diverged = true;
                            }
                        }
                        WebMsg::ReplaySetpoint => {
                            if self.ir.app_accepts(w, c, MT_SETPOINT, true) {
                                t.diverged = true;
                            }
                        }
                    }
                }
                // Re-assert actuation levels every round.
                let want = t.believes_hot;
                if self.send(t, Proc::Ctrl, Proc::Heater, MT_FAN_CMD) {
                    t.fan_cmd = Some(want);
                }
                if self.send(t, Proc::Ctrl, Proc::Alarm, MT_ALARM_CMD) {
                    t.alarm_cmd = Some(want);
                }
            }
            Proc::Heater => {
                if let Some(on) = t.fan_cmd.take() {
                    if self.device(t, Proc::Heater, DeviceId::FAN, true) {
                        t.fan_dev = on;
                    }
                }
            }
            Proc::Alarm => {
                if let Some(on) = t.alarm_cmd.take() {
                    if self.device(t, Proc::Alarm, DeviceId::ALARM, true) {
                        t.alarm_dev = on;
                    }
                }
            }
            Proc::Web => unreachable!("the web position acts via Attack"),
        }
    }

    fn apply_attack(&self, t: &mut McState, op: AttackOp) {
        t.moved |= Proc::Web.bit();
        t.budget = t.budget.saturating_sub(1);
        let web = self.name(Proc::Web).to_string();
        match op {
            AttackOp::InjectReading => {
                if self.mech_delivers(Proc::Ctrl, MT_SENSOR_READING, true) {
                    t.flags |= flags::DELIVERED;
                }
                // A forged reading enters the mailbox slot only where the
                // controller cannot authenticate it away — a rejected
                // message is answered in-band and cannot mask real
                // traffic; an accepted one races the sensor's.
                if self.send(t, Proc::Web, Proc::Ctrl, MT_SENSOR_READING)
                    && self
                        .ir
                        .app_accepts(&web, self.name(Proc::Ctrl), MT_SENSOR_READING, true)
                {
                    t.reading = Some((false, ReadingOrigin::Web));
                }
            }
            AttackOp::ForgeFanOff => {
                if self.mech_delivers(Proc::Heater, MT_FAN_CMD, true) {
                    t.flags |= flags::DELIVERED;
                }
                if self.send(t, Proc::Web, Proc::Heater, MT_FAN_CMD) {
                    t.fan_cmd = Some(false);
                }
            }
            AttackOp::ForgeAlarmOff => {
                if self.mech_delivers(Proc::Alarm, MT_ALARM_CMD, true) {
                    t.flags |= flags::DELIVERED;
                }
                if self.send(t, Proc::Web, Proc::Alarm, MT_ALARM_CMD) {
                    t.alarm_cmd = Some(false);
                }
            }
            AttackOp::Kill(victim) => {
                let v = self.name(victim);
                let ir_ok = self.ir.can_kill(&web, v);
                let kernel_ok = self.gate.allows_kill(&web, v);
                if ir_ok != kernel_ok {
                    t.flags |= flags::GATE_MISMATCH;
                }
                if kernel_ok {
                    t.alive &= !victim.bit();
                    t.flags |= flags::DELIVERED;
                }
            }
            AttackOp::Fork => {
                let ir_ok = self.ir.can_fork(&web);
                let kernel_ok = self.gate.allows_fork(&web);
                if ir_ok != kernel_ok {
                    t.flags |= flags::GATE_MISMATCH;
                }
                let quota = self.ir.fork_quota.get(&web).copied();
                if kernel_ok && quota != Some(0) {
                    if quota.is_some_and(|q| u64::from(t.forks) >= q) {
                        // The process manager's quota denies the child.
                    } else {
                        t.forks = (t.forks + 1).min(self.bounds.fork_cap);
                        t.flags |= flags::DELIVERED;
                        if quota.is_some_and(|q| u64::from(t.forks) > q) {
                            t.flags |= flags::QUOTA_BREACH;
                        }
                    }
                }
            }
            AttackOp::Probe => {
                // Handle enumeration is a static property of the handle
                // space; no kernel gate is consulted per probe.
                let reach = self.ir.enumerable_handles.get(&web).copied().unwrap_or(0);
                let legit = self.ir.legitimate_handles.get(&web).copied().unwrap_or(0);
                if reach > legit {
                    t.flags |= flags::DELIVERED;
                }
            }
            AttackOp::Flood => {
                if self.mech_delivers(Proc::Ctrl, MT_SETPOINT, false) {
                    t.flags |= flags::DELIVERED;
                }
                if self.send(t, Proc::Web, Proc::Ctrl, MT_SETPOINT) {
                    t.web_msg = Some(WebMsg::Junk);
                }
            }
            AttackOp::Tamper => {
                let accepted = self
                    .ir
                    .delivery_channel(&web, self.name(Proc::Ctrl), MT_SETPOINT)
                    .is_some()
                    && self
                        .ir
                        .app_accepts(&web, self.name(Proc::Ctrl), MT_SETPOINT, false);
                if accepted {
                    t.flags |= flags::DELIVERED;
                }
                if self.send(t, Proc::Web, Proc::Ctrl, MT_SETPOINT) {
                    t.web_msg = Some(WebMsg::TamperSetpoint);
                }
            }
            AttackOp::Replay => {
                let accepted = self
                    .ir
                    .delivery_channel(&web, self.name(Proc::Ctrl), MT_SETPOINT)
                    .is_some()
                    && self
                        .ir
                        .app_accepts(&web, self.name(Proc::Ctrl), MT_SETPOINT, true);
                if accepted {
                    t.flags |= flags::DELIVERED;
                }
                if self.send(t, Proc::Web, Proc::Ctrl, MT_SETPOINT) {
                    t.web_msg = Some(WebMsg::ReplaySetpoint);
                }
            }
            AttackOp::DevForceFan => {
                if self.device(t, Proc::Web, DeviceId::FAN, true) {
                    t.fan_dev = false;
                    t.flags |= flags::DELIVERED | flags::UNAUTH_DEV_WRITE;
                }
            }
            AttackOp::DevForceAlarm => {
                if self.device(t, Proc::Web, DeviceId::ALARM, true) {
                    t.alarm_dev = false;
                    t.flags |= flags::DELIVERED | flags::UNAUTH_DEV_WRITE;
                }
            }
            AttackOp::Masquerade => {
                // A kernel honoring the asserted handle type acts on the
                // confused object; one re-validating at translation
                // rejects the invocation outright (no flags at all).
                if let Some(cap) = self.masq.filter(|c| c.exploitable) {
                    t.flags |= flags::DELIVERED | flags::MASQUERADE;
                    self.apply_cap_effect(t, cap.effect);
                }
            }
            AttackOp::UseDerived => {
                // The slot reads usable to the kernel by construction —
                // that is exactly the derivation breach.
                if let Some(cap) = self.derived {
                    t.flags |= flags::DELIVERED | flags::DERIVATION_BREACH;
                    self.apply_cap_effect(t, cap.effect);
                }
            }
            // Churn is administrative policy motion, not a delivery
            // mechanism: neither op sets DELIVERED. The violation, if
            // any, is raised where the controller consumes a stale
            // message.
            AttackOp::Revoke => t.cap_ok = false,
            AttackOp::Regrant => t.cap_ok = true,
        }
    }

    fn apply_cap_effect(&self, t: &mut McState, effect: CapEffect) {
        match effect {
            CapEffect::ForceFan => t.fan_dev = false,
            CapEffect::ForceAlarm => t.alarm_dev = false,
            CapEffect::Corrupt => t.diverged = true,
        }
    }
}

/// Scans the IR's derivation graph for anomalous capabilities in the
/// attacker's (web) possession: the lowest-id masquerading handle and
/// the lowest-id derivation-breach cap whose slot still reads usable.
/// Cleanly lowered graphs yield neither, so the 54-cell matrix is
/// unaffected.
fn seeded_caps(ir: &PolicyModel) -> (Option<SeededCap>, Option<SeededCap>) {
    if ir.caps.is_empty() {
        return (None, None);
    }
    let cl = flow::closure(&ir.caps);
    let effect_of = |id: CapId| match &ir.caps.node(id).object {
        ObjectId::Device(d) if *d == DeviceId::FAN => CapEffect::ForceFan,
        ObjectId::Device(d) if *d == DeviceId::ALARM => CapEffect::ForceAlarm,
        _ => CapEffect::Corrupt,
    };
    let held_usable = |id: &CapId| -> bool {
        ir.caps.node(*id).holder == ir.roles.web && ir.caps.stored_usable(*id)
    };
    let masq = cl
        .masquerade_caps()
        .into_iter()
        .find(held_usable)
        .map(|id| SeededCap {
            // Unguessable handles are re-validated at translation; raw
            // enumerable handles are honored as asserted.
            exploitable: !ir.traits.unguessable_handles,
            effect: effect_of(id),
        });
    let derived = cl
        .breach_caps()
        .into_iter()
        .find(held_usable)
        .map(|id| SeededCap {
            // A slot the kernel's own bookkeeping says is usable.
            exploitable: true,
            effect: effect_of(id),
        });
    (masq, derived)
}

// ---------------------------------------------------------------------
// Footprints for the independence relation.
// ---------------------------------------------------------------------

mod field {
    pub const TEMP: u32 = 1 << 0;
    pub const READING: u32 = 1 << 1;
    pub const WEB_MSG: u32 = 1 << 2;
    pub const FAN_CMD: u32 = 1 << 3;
    pub const ALARM_CMD: u32 = 1 << 4;
    pub const FAN_DEV: u32 = 1 << 5;
    pub const ALARM_DEV: u32 = 1 << 6;
    pub const BELIEF: u32 = 1 << 7;
    pub const DIVERGED: u32 = 1 << 8;
    pub const FORKS: u32 = 1 << 9;
    pub const BUDGET: u32 = 1 << 10;
    pub const ROUND: u32 = 1 << 11;
    pub const COUNTER: u32 = 1 << 12;
    pub const CAP_OK: u32 = 1 << 13;
    /// Per-process liveness bits, `ALIVE << index`.
    pub const ALIVE: u32 = 1 << 16;
    /// Per-process moved bits, `MOVED << index`.
    pub const MOVED: u32 = 1 << 24;
}

fn alive(p: Proc) -> u32 {
    field::ALIVE << p.index()
}

fn moved(p: Proc) -> u32 {
    field::MOVED << p.index()
}

const MOVED_ALL: u32 = field::MOVED * 0b1_1111;
const ALIVE_ALL: u32 = field::ALIVE * 0b1111;

/// `(reads, writes)` over the field bitmask, *including* enabledness
/// reads. The monotone `flags` ORs are deliberately excluded: OR-writes
/// commute and nothing reads the flags during exploration; actions that
/// set flags are caught by visibility instead.
fn footprint(action: &McAction) -> (u32, u32) {
    match action {
        McAction::Step(p) => {
            let base_r = alive(*p) | moved(*p) | field::ROUND;
            match p {
                Proc::Sensor => (
                    base_r | field::TEMP | field::CAP_OK,
                    field::READING | moved(*p),
                ),
                Proc::Ctrl => (
                    base_r | field::READING | field::WEB_MSG | field::BELIEF | field::CAP_OK,
                    field::READING
                        | field::WEB_MSG
                        | field::BELIEF
                        | field::DIVERGED
                        | field::FAN_CMD
                        | field::ALARM_CMD
                        | moved(*p),
                ),
                Proc::Heater => (
                    base_r | field::FAN_CMD,
                    field::FAN_CMD | field::FAN_DEV | moved(*p),
                ),
                Proc::Alarm => (
                    base_r | field::ALARM_CMD,
                    field::ALARM_CMD | field::ALARM_DEV | moved(*p),
                ),
                Proc::Web => (base_r, moved(*p)),
            }
        }
        McAction::Attack(op) => {
            let r = moved(Proc::Web) | field::BUDGET | field::ROUND;
            let w = moved(Proc::Web) | field::BUDGET;
            let extra = match op {
                AttackOp::InjectReading => field::READING,
                AttackOp::ForgeFanOff => field::FAN_CMD,
                AttackOp::ForgeAlarmOff => field::ALARM_CMD,
                AttackOp::Kill(v) => alive(*v),
                AttackOp::Fork => field::FORKS,
                AttackOp::Probe => 0,
                AttackOp::Flood | AttackOp::Tamper | AttackOp::Replay => field::WEB_MSG,
                AttackOp::DevForceFan => field::FAN_DEV,
                AttackOp::DevForceAlarm => field::ALARM_DEV,
                // Seeded-cap invocations may touch either device register
                // or corrupt controller state; over-approximate.
                AttackOp::Masquerade | AttackOp::UseDerived => {
                    field::FAN_DEV | field::ALARM_DEV | field::DIVERGED
                }
                AttackOp::Revoke | AttackOp::Regrant => field::CAP_OK,
            };
            (r | extra, w | extra)
        }
        McAction::EnvTick => (
            MOVED_ALL | ALIVE_ALL | field::ROUND | field::TEMP | field::ALARM_DEV | field::COUNTER,
            MOVED_ALL | field::ROUND | field::TEMP | field::COUNTER,
        ),
    }
}

impl StepSemantics for ScenarioModel {
    type State = McState;
    type Action = McAction;

    fn initial_state(&self) -> McState {
        McState::initial(self.bounds.attacker_budget)
    }

    fn enabled_actions(&self, s: &McState) -> Vec<McAction> {
        let mut acts = Vec::new();
        if s.round >= self.bounds.max_rounds {
            return acts; // bounded horizon reached
        }
        for p in Proc::CRITICAL {
            if s.is_alive(p) && !s.has_moved(p) {
                acts.push(McAction::Step(p));
            }
        }
        if !s.has_moved(Proc::Web) && s.budget > 0 {
            for &op in attack_ops(self.attack) {
                let available = match op {
                    AttackOp::Kill(v) => s.is_alive(v),
                    AttackOp::Fork => s.forks < self.bounds.fork_cap,
                    _ => true,
                };
                if available {
                    acts.push(McAction::Attack(op));
                }
            }
            // Seeded anomalous capabilities extend the attacker's menu
            // regardless of the background attack.
            if self.masq.is_some() {
                acts.push(McAction::Attack(AttackOp::Masquerade));
            }
            if self.derived.is_some() {
                acts.push(McAction::Attack(AttackOp::UseDerived));
            }
            // Churn ops flip a single bit, so only the state-changing
            // direction is ever offered.
            if self.churn {
                acts.push(McAction::Attack(if s.cap_ok {
                    AttackOp::Revoke
                } else {
                    AttackOp::Regrant
                }));
            }
        }
        // The attacker does not gate the round: the tick competing with
        // the pending attack actions is the "attacker sits out" branch.
        if s.round_complete() {
            acts.push(McAction::EnvTick);
        }
        acts
    }

    fn apply(&self, s: &McState, a: &McAction) -> McState {
        let mut t = s.clone();
        match a {
            McAction::Step(p) => self.apply_step(&mut t, *p),
            McAction::Attack(op) => self.apply_attack(&mut t, *op),
            McAction::EnvTick => {
                t.moved = 0;
                t.round += 1;
                if t.round == self.bounds.burst_round {
                    t.temp_hot = true; // burst beyond the fan's authority
                }
                if t.temp_hot && !t.alarm_dev {
                    t.hot_unalarmed = t.hot_unalarmed.saturating_add(1);
                } else {
                    t.hot_unalarmed = 0;
                }
            }
        }
        t
    }

    fn is_visible(&self, s: &McState, a: &McAction) -> bool {
        match a {
            // Ticks advance the bounded-response counter; attacker
            // actions set verdict flags — both property-relevant.
            McAction::EnvTick | McAction::Attack(_) => true,
            McAction::Step(_) => {
                let t = self.apply(s, a);
                t.flags != s.flags || t.alive != s.alive || t.diverged != s.diverged
            }
        }
    }

    fn independent(&self, a: &McAction, b: &McAction) -> bool {
        let (ra, wa) = footprint(a);
        let (rb, wb) = footprint(b);
        wa & (rb | wb) == 0 && wb & (ra | wa) == 0
    }

    fn owner(&self, a: &McAction) -> usize {
        match a {
            McAction::Step(p) => p.index(),
            McAction::Attack(_) => Proc::Web.index(),
            McAction::EnvTick => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_core::semantics::replay_trace;

    fn model(platform: Platform, attack: AttackId) -> ScenarioModel {
        ScenarioModel::new(
            platform,
            AttackerModel::ArbitraryCode,
            attack,
            UidScheme::SharedAccount,
        )
    }

    /// One full healthy round in schedule order, then the tick.
    fn healthy_round(m: &ScenarioModel, s: &McState) -> McState {
        let mut cur = s.clone();
        for p in Proc::CRITICAL {
            cur = m.apply(&cur, &McAction::Step(p));
        }
        assert!(cur.round_complete());
        m.apply(&cur, &McAction::EnvTick)
    }

    #[test]
    fn healthy_rounds_raise_the_alarm_and_stay_clean() {
        let m = model(Platform::Minix, AttackId::SetpointTamper);
        let mut s = m.initial_state();
        for _ in 0..m.bounds.max_rounds {
            s = healthy_round(&m, &s);
        }
        assert!(s.temp_hot, "the burst fired");
        assert!(s.alarm_dev, "alarm asserted once the burst propagated");
        assert!(s.fan_dev);
        assert_eq!(s.flags, 0, "no flags on the healthy schedule");
        assert!(u32::from(s.hot_unalarmed) <= u32::from(m.bounds.response_bound));
    }

    #[test]
    fn minix_acm_stops_injected_readings() {
        let m = model(Platform::Minix, AttackId::SpoofSensorData);
        let s = m.initial_state();
        let t = m.apply(&s, &McAction::Attack(AttackOp::InjectReading));
        assert_eq!(t.reading, None, "kernel denies the send");
        assert_eq!(t.flags, 0, "no delivery, no mismatch");
    }

    #[test]
    fn linux_shared_account_admits_injected_readings() {
        let m = model(Platform::Linux, AttackId::SpoofSensorData);
        let s = m.initial_state();
        let t = m.apply(&s, &McAction::Attack(AttackOp::InjectReading));
        assert_eq!(t.reading, Some((false, ReadingOrigin::Web)));
        assert_eq!(t.flags, flags::DELIVERED);
    }

    #[test]
    fn sel4_kernel_admits_but_server_rejects_injected_readings() {
        let m = model(Platform::Sel4, AttackId::SpoofSensorData);
        let s = m.initial_state();
        let t = m.apply(&s, &McAction::Attack(AttackOp::InjectReading));
        assert_eq!(t.reading, None, "badge authentication rejects in-band");
        assert_eq!(t.flags, 0, "RPC mechanism verdict is the reply");
    }

    #[test]
    fn replayed_setpoint_diverges_on_every_platform() {
        for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
            let m = model(platform, AttackId::ReplaySetpoint);
            let s = m.initial_state();
            let t = m.apply(&s, &McAction::Attack(AttackOp::Replay));
            assert_eq!(t.flags, flags::DELIVERED, "{platform:?}");
            let u = m.apply(&t, &McAction::Step(Proc::Ctrl));
            assert!(u.diverged, "{platform:?}: controller accepts the replay");
        }
    }

    #[test]
    fn tampered_setpoint_is_rejected_everywhere() {
        for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
            let m = model(platform, AttackId::SetpointTamper);
            let s = m.initial_state();
            let t = m.apply(&s, &McAction::Attack(AttackOp::Tamper));
            assert_eq!(t.flags, 0, "{platform:?}: no delivery credit");
            let u = m.apply(&t, &McAction::Step(Proc::Ctrl));
            assert!(!u.diverged, "{platform:?}: range validation holds");
        }
    }

    #[test]
    fn drivers_commute_with_each_other_but_not_with_the_controller() {
        let m = model(Platform::Minix, AttackId::SetpointTamper);
        let heater = McAction::Step(Proc::Heater);
        let alarm = McAction::Step(Proc::Alarm);
        let ctrl = McAction::Step(Proc::Ctrl);
        assert!(m.independent(&heater, &alarm));
        assert!(!m.independent(&heater, &ctrl), "ctrl writes fan_cmd");
        assert!(!m.independent(&alarm, &McAction::Attack(AttackOp::ForgeAlarmOff)));
        assert!(m.independent(&heater, &McAction::Attack(AttackOp::Replay)));
        assert!(!m.independent(&ctrl, &McAction::EnvTick));
    }

    #[test]
    fn enabled_actions_follow_the_round_barrier() {
        let m = model(Platform::Minix, AttackId::KillCritical);
        let s = m.initial_state();
        let acts = m.enabled_actions(&s);
        assert!(acts.contains(&McAction::Step(Proc::Sensor)));
        assert!(acts.contains(&McAction::Attack(AttackOp::Kill(Proc::Ctrl))));
        assert!(!acts.contains(&McAction::EnvTick), "round incomplete");
        let trace: Vec<McAction> = Proc::CRITICAL.iter().map(|p| McAction::Step(*p)).collect();
        let states = replay_trace(&m, &trace).expect("schedule order is feasible");
        let last = states.last().expect("replay yields at least one state");
        assert!(m.enabled_actions(last).contains(&McAction::EnvTick));
    }
}
