//! Counterexample replay into the dynamic engine.
//!
//! A model-checking counterexample is an *abstract* schedule; this
//! bridge closes the loop by mounting the same cell's attack through the
//! real `ScenarioEngine` stacks ([`bas_attack::run_attack`]) and
//! asserting that the violated property manifests dynamically — dead
//! critical processes for a kill witness, a physical safety violation
//! for bounded-response/divergence/device witnesses. The dynamic
//! scheduler runs *one* interleaving, and the abstract witness proves a
//! violating interleaving exists; for the scenario's attacks the two
//! coincide (the attack harness drives the adversarial schedule), which
//! is exactly what this bridge verifies.

use bas_attack::{run_attack, AttackOutcome, AttackRunConfig};
use bas_core::platform::linux::UidScheme;

use super::verdict::{CellReport, McProperty};

/// The result of replaying one counterexample dynamically.
pub struct ReplayResult {
    /// The property the abstract witness violated.
    pub property: McProperty,
    /// Whether the dynamic run manifests the same violation.
    pub confirmed: bool,
    /// One-line evidence summary from the dynamic outcome.
    pub evidence: String,
    /// The full dynamic outcome.
    pub outcome: AttackOutcome,
}

/// Whether `outcome` manifests `property` dynamically.
pub fn property_manifested(property: McProperty, outcome: &AttackOutcome) -> bool {
    match property {
        McProperty::CriticalKilled => !outcome.critical_alive,
        // The plant-level compromises all surface as a physical safety
        // violation in the dynamic engine (the alarm window, reference
        // divergence and forced actuators are folded into one safety
        // report there).
        McProperty::BoundedResponse
        | McProperty::ReferenceDivergence
        | McProperty::UnauthorizedDeviceWrite => outcome.physical.safety_violated,
        // Internal invariants have no dynamic analogue to confirm, and
        // the seeded-capability properties exist only in the abstract
        // derivation graph (the dynamic stacks never mint bad caps).
        McProperty::GateMismatch
        | McProperty::QuotaBreach
        | McProperty::ObjectMasquerade
        | McProperty::DerivationBreach => false,
        // The capability race has a dynamic analogue, but it lives in
        // the churn harness (`crate::races`), not the attack harness
        // this replay drives — `exp_cap_races` closes that loop.
        McProperty::CapabilityRace => false,
    }
}

/// Replays `report`'s counterexample through the dynamic attack harness
/// under `scheme`. Returns `None` if the report carries no witness.
pub fn replay_counterexample(report: &CellReport, scheme: UidScheme) -> Option<ReplayResult> {
    let cx = report.counterexample.as_ref()?;
    let config = AttackRunConfig {
        linux_uid_scheme: scheme,
        ..AttackRunConfig::default()
    };
    let outcome = run_attack(report.platform, report.attacker, report.attack, &config);
    let confirmed = property_manifested(cx.property, &outcome) && outcome.compromised();
    let evidence = format!(
        "critical_alive={} safety_violated={} max_deviation={:.2}C",
        outcome.critical_alive, outcome.physical.safety_violated, outcome.physical.max_deviation_c,
    );
    Some(ReplayResult {
        property: cx.property,
        confirmed,
        evidence,
        outcome,
    })
}
