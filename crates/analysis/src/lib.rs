//! # bas-analysis — static IPC-policy analysis
//!
//! The repo's dynamic half *runs* the paper's attack matrix (§IV-D); this
//! crate *predicts* it from policy alone. All three platform policies —
//! the MINIX access-control matrix, the CAmkES-compiled CapDL spec, and
//! the Linux loader's message-queue ACL plan — lower into one
//! platform-neutral **Policy IR** ([`ir::PolicyModel`]): a channel graph
//! of `(subject, object, operation, message types)` edges annotated with
//! the enforcement mechanism that admits each edge.
//!
//! On top of the IR:
//!
//! * [`taint`] — reachability/taint analysis from untrusted subjects,
//!   yielding a predicted attack-outcome matrix per platform × attacker
//!   model. Cross-validated against the dynamic harness: the
//!   `static_vs_dynamic` tests assert prediction == execution for every
//!   cell, including both policy ablations.
//! * [`lint`] — a policy linter diffing the effective policy against the
//!   AADL-minimal justification: over-granted capabilities, ambient
//!   queue authority, dangling identities, unused message types,
//!   untrusted→actuator paths, and a least-privilege summary.
//! * [`scenario`] — the paper's temperature-control scenario bound into
//!   the IR (identity bindings, endpoint message types, uid schemes,
//!   contracts), plus the predicted matrix in deterministic order.
//! * [`mc`] — a bounded explicit-state model checker over the scenario
//!   transition relation: every interleaving of the five processes and
//!   the attacker, dual-adjudicated by the Policy IR *and* the kernel
//!   artifacts, with partial-order reduction and counterexample replay
//!   into the dynamic engine.
//! * [`flow`] — capability-flow analysis over the IR's derivation
//!   forest: a worklist fixpoint under a permission lattice checking
//!   attenuation monotonicity, transitive revocation and expiry, a
//!   kernel-object-masquerading detector, and shortest escalation-path
//!   witnesses cross-validated against [`mc`] in both directions.
//! * [`races`] — the dynamic complement of [`flow`]: vector-clock
//!   happens-before analysis of capability-churn event streams from
//!   the live kernels, detecting TOCTOU windows, use-after-revoke and
//!   write-write conflicts with 1-minimal replayed schedule witnesses,
//!   cross-validated against both the static fixpoint and [`mc`].

pub mod flow;
pub mod ir;
pub mod lint;
pub mod lower;
pub mod mc;
pub mod races;
pub mod scenario;
pub mod taint;

pub use flow::{closure, escalation_witnesses, CapGraph, Perms, Witness};
pub use ir::{Channel, ChannelKind, ObjectId, Operation, PolicyModel, Trust};
pub use lint::{findings_report_json, findings_to_json, lint, Finding, Justification, Severity};
pub use races::{churn_scenarios, detect as detect_races, Race, RaceKind};
pub use taint::{expectation, predict, untrusted_actuator_paths, StaticVerdict};
