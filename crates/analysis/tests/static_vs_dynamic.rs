//! Cross-validation: the static predictor against the dynamic harness.
//!
//! For every cell of the E6 attack matrix — attack × platform × attacker
//! model — the statically predicted `(mechanism delivers, compromised)`
//! pair must equal what actually happens when the attack runs in the
//! simulator. The same must hold under the hardened Linux uid scheme and
//! under both policy ablations (permissive ACM, stray seL4 capabilities),
//! where the *verdicts themselves flip* — so agreement is not vacuous.

use std::cell::RefCell;
use std::rc::Rc;

use bas_acm::AccessControlMatrix;
use bas_analysis::scenario::{minix_model, scenario_justification, sel4_model};
use bas_analysis::taint::predict;
use bas_analysis::{lint, Severity};
use bas_attack::evidence::new_evidence;
use bas_attack::harness::{run_attack, AttackRunConfig};
use bas_attack::library;
use bas_attack::model::{AttackId, AttackerModel};
use bas_attack::procs::{AttackScript, AttackStep, MinixAttacker, Sel4Attacker};
use bas_core::platform::linux::UidScheme;
use bas_core::platform::minix::{build_minix, MinixOverrides};
use bas_core::platform::sel4::{build_sel4, ExtraCap, Sel4Overrides};
use bas_core::policy::{actuator_rpc, instances};
use bas_core::scenario::{critical_alive, Platform, Scenario, ScenarioConfig};
use bas_minix::pm;
use bas_sel4::cap::CPtr;
use bas_sel4::message::IpcMessage;
use bas_sel4::rights::CapRights;
use bas_sim::time::SimDuration;

fn scenario_model(
    platform: Platform,
    attacker: AttackerModel,
    scheme: UidScheme,
) -> bas_analysis::PolicyModel {
    bas_analysis::scenario::model_for(platform, attacker, scheme)
}

fn assert_cell_agrees(
    platform: Platform,
    attacker: AttackerModel,
    attack: AttackId,
    scheme: UidScheme,
    config: &AttackRunConfig,
) {
    let model = scenario_model(platform, attacker, scheme);
    let predicted = predict(&model, attack);
    let outcome = run_attack(platform, attacker, attack, config);
    assert_eq!(
        predicted.mechanism_delivers,
        outcome.mechanism.succeeded(),
        "mechanism mismatch: {platform} / {attacker} / {attack} ({})",
        predicted.rationale
    );
    assert_eq!(
        predicted.compromised,
        outcome.compromised(),
        "compromise mismatch: {platform} / {attacker} / {attack} ({})",
        predicted.rationale
    );
}

/// Every cell of the E6 matrix: static prediction == dynamic outcome.
#[test]
fn full_matrix_static_equals_dynamic() {
    let config = AttackRunConfig::default();
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        for attack in AttackId::ALL {
            for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
                assert_cell_agrees(
                    platform,
                    attacker,
                    attack,
                    UidScheme::SharedAccount,
                    &config,
                );
            }
        }
    }
}

/// The hardened-Linux column (per-process uids, 0620 grouped queues):
/// static prediction == dynamic outcome for both attacker models.
#[test]
fn hardened_linux_static_equals_dynamic() {
    let config = AttackRunConfig {
        linux_uid_scheme: UidScheme::PerProcessHardened,
        ..AttackRunConfig::default()
    };
    for attack in AttackId::ALL {
        for attacker in [AttackerModel::ArbitraryCode, AttackerModel::Root] {
            assert_cell_agrees(
                Platform::Linux,
                attacker,
                attack,
                UidScheme::PerProcessHardened,
                &config,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// ACM ablation (mirrors exp_ablation_acm's dynamic setup)
// ---------------------------------------------------------------------------

fn permissive_acm() -> AccessControlMatrix {
    use bas_core::proto::{AC_ALARM, AC_CONTROL, AC_HEATER, AC_SCENARIO, AC_SENSOR, AC_WEB};
    let ids = [AC_SENSOR, AC_CONTROL, AC_HEATER, AC_ALARM, AC_WEB];
    let mut b = AccessControlMatrix::builder();
    for s in ids {
        for r in ids {
            if s != r {
                b = b.allow_all_types(s, r);
            }
        }
    }
    b = pm::allow_pm_ops(b, AC_WEB, [pm::PM_FORK2, pm::PM_GETPID]);
    for ac in [AC_SENSOR, AC_CONTROL, AC_HEATER, AC_ALARM] {
        b = pm::allow_pm_ops(b, ac, [pm::PM_GETPID]);
    }
    b = pm::allow_pm_ops(
        b,
        AC_SCENARIO,
        [
            pm::PM_FORK2,
            pm::PM_SRV_FORK2,
            pm::PM_KILL,
            pm::PM_EXIT,
            pm::PM_GETPID,
        ],
    );
    b.build()
}

/// Dynamic MINIX run with an overridden ACM / fork quota, as in
/// `exp_ablation_acm`. Returns `(mechanism delivered, compromised)`.
fn run_minix_ablation(
    attack: AttackId,
    acm: Option<AccessControlMatrix>,
    fork_quota: Option<u64>,
) -> (bool, bool) {
    let warmup = SimDuration::from_secs(600);
    let mut scenario_cfg = ScenarioConfig::quiet();
    scenario_cfg.web_fork_limit = fork_quota;
    scenario_cfg.plant.heat_schedule = vec![(warmup + SimDuration::from_secs(300), 600.0)];

    let evidence = new_evidence();
    let (lookups, builder) = library::minix_script(attack, warmup);
    let cell = Rc::new(RefCell::new(Some((lookups, builder))));
    let ev = evidence.clone();
    let overrides = MinixOverrides {
        web_factory: Some(Box::new(move || {
            let (lookups, builder) = cell.borrow_mut().take().expect("spawned once");
            Box::new(MinixAttacker::new(lookups, builder, ev.clone()))
        })),
        web_uid: 1000,
        acm: acm.map(std::sync::Arc::new),
        ..MinixOverrides::default()
    };
    let mut s = build_minix(&scenario_cfg, overrides);
    s.run_for(warmup + SimDuration::from_secs(1_020));
    let plant = s.plant();
    let safe = plant.borrow().safety_report().is_safe();
    let alive = critical_alive(&s);
    let delivered = evidence.borrow().successes > 0;
    (delivered, !safe || !alive)
}

/// The ACM ablation: static verdicts flip exactly where the dynamic ones
/// do, cell by cell.
#[test]
fn ablation_acm_static_equals_dynamic() {
    let attacks = [
        AttackId::SpoofSensorData,
        AttackId::SpoofActuatorCommands,
        AttackId::KillCritical,
        AttackId::ForkBomb,
    ];
    for attack in attacks {
        for (label, acm, quota) in [
            ("scenario", None, None),
            ("permissive", Some(permissive_acm()), None),
            ("quota", None, Some(2u64)),
        ] {
            let model = minix_model(AttackerModel::ArbitraryCode, acm.as_ref(), quota);
            let predicted = predict(&model, attack);
            let (delivered, compromised) = run_minix_ablation(attack, acm, quota);
            assert_eq!(
                predicted.mechanism_delivers, delivered,
                "mechanism mismatch: {attack} under {label} ACM ({})",
                predicted.rationale
            );
            assert_eq!(
                predicted.compromised, compromised,
                "compromise mismatch: {attack} under {label} ACM ({})",
                predicted.rationale
            );
        }
    }
}

/// The permissive ACM must *flip* static verdicts (agreement above would
/// be vacuous if both configurations predicted the same thing).
#[test]
fn ablation_acm_flips_static_verdicts() {
    let permissive = permissive_acm();
    let scenario = minix_model(AttackerModel::ArbitraryCode, None, None);
    let ablated = minix_model(AttackerModel::ArbitraryCode, Some(&permissive), None);

    // Actuator spoofing: Stopped → Compromised without the matrix.
    let before = predict(&scenario, AttackId::SpoofActuatorCommands);
    let after = predict(&ablated, AttackId::SpoofActuatorCommands);
    assert!(!before.mechanism_delivers && !before.compromised);
    assert!(after.mechanism_delivers && after.compromised);

    // Sensor spoofing: delivery opens up, but kernel-stamped identity
    // still protects the controller (the microkernel's own contribution).
    let before = predict(&scenario, AttackId::SpoofSensorData);
    let after = predict(&ablated, AttackId::SpoofSensorData);
    assert!(!before.mechanism_delivers);
    assert!(after.mechanism_delivers && !after.compromised);

    // Kill: PM policy unchanged, verdict must not flip.
    let after = predict(&ablated, AttackId::KillCritical);
    assert!(!after.mechanism_delivers && !after.compromised);
}

// ---------------------------------------------------------------------------
// Capability ablation (mirrors exp_ablation_caps's dynamic setup)
// ---------------------------------------------------------------------------

fn stray_caps() -> Vec<ExtraCap> {
    vec![
        ExtraCap {
            holder: instances::WEB,
            endpoint_of: (instances::HEATER, "cmd"),
            rights: CapRights::WRITE_GRANT,
            badge: 99,
        },
        ExtraCap {
            holder: instances::WEB,
            endpoint_of: (instances::ALARM, "cmd"),
            rights: CapRights::WRITE_GRANT,
            badge: 99,
        },
    ]
}

/// Dynamic seL4 actuator-spoof run with optional stray capabilities.
/// Returns `(mechanism delivered, compromised)`.
fn run_sel4_ablation(extra_caps: Vec<ExtraCap>) -> (bool, bool) {
    const WARMUP: SimDuration = SimDuration::from_secs(600);
    let with_extras = !extra_caps.is_empty();
    let mut cfg = ScenarioConfig::quiet();
    cfg.plant.heat_schedule = vec![(WARMUP + SimDuration::from_secs(300), 600.0)];

    let evidence = new_evidence();
    let ev = evidence.clone();
    let overrides = Sel4Overrides {
        web_factory: Some(Box::new(move |glue| {
            if with_extras {
                // The attacker knows the layout: the stray caps land in
                // slots 1 (heater) and 2 (alarm) after its RPC cap.
                let mut loop_body = Vec::new();
                for slot in [1u32, 2] {
                    loop_body.push(AttackStep::counted(bas_sel4::syscall::Syscall::Call {
                        ep: CPtr::new(slot),
                        msg: IpcMessage::with_data(actuator_rpc::SET, vec![0]),
                    }));
                }
                loop_body.push(AttackStep::pacing(bas_sel4::syscall::Syscall::Sleep {
                    duration: SimDuration::from_millis(200),
                }));
                Box::new(Sel4Attacker::new(
                    AttackScript {
                        delay: WARMUP,
                        setup: vec![],
                        loop_body,
                        max_loops: None,
                    },
                    ev,
                ))
            } else {
                Box::new(Sel4Attacker::new(
                    library::sel4_script(AttackId::SpoofActuatorCommands, WARMUP, glue),
                    ev,
                ))
            }
        })),
        extra_caps,
        ..Sel4Overrides::default()
    };
    let mut s = build_sel4(&cfg, overrides);
    s.run_for(WARMUP + SimDuration::from_secs(1_020));
    let plant = s.plant();
    let safe = plant.borrow().safety_report().is_safe();
    let alive = critical_alive(&s);
    let delivered = evidence.borrow().successes > 0;
    (delivered, !safe || !alive)
}

/// The capability ablation: the stray write capability flips the static
/// actuator-spoof verdict, and the flipped prediction matches execution.
#[test]
fn ablation_caps_static_equals_dynamic_and_flips() {
    // Clean distribution.
    let clean = sel4_model(AttackerModel::ArbitraryCode, &[]);
    let predicted = predict(&clean, AttackId::SpoofActuatorCommands);
    assert!(!predicted.mechanism_delivers && !predicted.compromised);
    let (delivered, compromised) = run_sel4_ablation(Vec::new());
    assert_eq!(predicted.mechanism_delivers, delivered);
    assert_eq!(predicted.compromised, compromised);

    // Over-granted distribution.
    let ablated = sel4_model(AttackerModel::ArbitraryCode, &stray_caps());
    let predicted = predict(&ablated, AttackId::SpoofActuatorCommands);
    assert!(
        predicted.mechanism_delivers && predicted.compromised,
        "stray caps must flip the static verdict: {}",
        predicted.rationale
    );
    let (delivered, compromised) = run_sel4_ablation(stray_caps());
    assert_eq!(predicted.mechanism_delivers, delivered);
    assert_eq!(predicted.compromised, compromised);
}

/// The linter flags the stray capabilities the ablation injects (the
/// static analogue of the CapDL auditor in `exp_ablation_caps`).
#[test]
fn lint_flags_stray_capabilities() {
    let justification = scenario_justification();

    let clean = sel4_model(AttackerModel::ArbitraryCode, &[]);
    let clean_highs: Vec<_> = lint(&clean, &justification)
        .into_iter()
        .filter(|f| f.severity <= Severity::High)
        .collect();
    assert!(
        clean_highs.is_empty(),
        "clean distribution must lint clean: {clean_highs:#?}"
    );

    // The stray holders are the untrusted web process, so the findings
    // escalate to `error` — the severity the exp_policy_audit gate and
    // ci.sh fail the build on.
    let ablated = sel4_model(AttackerModel::ArbitraryCode, &stray_caps());
    let findings = lint(&ablated, &justification);
    let stray = findings
        .iter()
        .filter(|f| {
            f.severity == Severity::Error
                && f.code == "over-granted-capability"
                && f.subject == instances::WEB
        })
        .count();
    assert_eq!(stray, 2, "both stray caps flagged: {findings:#?}");
}
