//! Property-based tests for the lowerings into the Policy IR.
//!
//! The headline property is the backend-isomorphism one: a random AADL
//! model compiled through the MINIX backend (ACM) and through the seL4
//! backend (CAmkES → CapDL) must lower to the *same* Policy-IR channel
//! skeleton — same subjects, same `(sender, receiver, message types)`
//! delivery edges — because both artifacts encode the same AADL intent.
//! The remaining tests are the Fig. 3 (E2) static-vs-dynamic agreement:
//! a delivery channel exists in the lowered IR exactly when the kernel's
//! `check()` would allow the transfer.

use std::collections::BTreeMap;

use bas_aadl::model::{AadlModel, Connection, Port, PortDirection, ProcessType, SystemImpl};
use bas_acm::{AcId, AccessControlMatrix, MsgType, QuotaTable};
use bas_analysis::ir::type_bits;
use bas_analysis::lower::acm::{lower as lower_acm, AcmBinding};
use bas_analysis::lower::capdl::{lower as lower_capdl, CapdlBinding};
use bas_analysis::{ObjectId, Operation, PolicyModel};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random AADL models.
// ---------------------------------------------------------------------

/// Raw connection material: `(source pick, sink pick, msg type)`. The
/// picks are reduced modulo the process count when the model is built,
/// with the sink skewed so it never equals the source.
fn arb_conns() -> impl Strategy<Value = Vec<(usize, usize, u32)>> {
    prop::collection::vec((0usize..64, 0usize..64, 1u32..7), 1..7)
}

/// Builds a valid AADL model: `n` process types `P{i}` (ac_id `100+i`),
/// one instance `inst{i}` each, and one connection per raw tuple with a
/// fresh typed out-port on the source and a fresh in-port on the sink.
fn build_model(n: usize, conns: &[(usize, usize, u32)]) -> AadlModel {
    let mut processes: Vec<ProcessType> = (0..n)
        .map(|i| ProcessType {
            name: format!("P{i}"),
            ports: vec![],
            ac_id: Some(100 + i as u32),
        })
        .collect();
    let mut connections = Vec::new();
    for (j, &(src_pick, sink_pick, mtype)) in conns.iter().enumerate() {
        let from = src_pick % n;
        let mut to = sink_pick % (n - 1);
        if to >= from {
            to += 1;
        }
        let out_name = format!("out{j}");
        let in_name = format!("in{j}");
        processes[from].ports.push(Port {
            name: out_name.clone(),
            direction: PortDirection::Out,
            msg_type: Some(mtype),
        });
        processes[to].ports.push(Port {
            name: in_name.clone(),
            direction: PortDirection::In,
            msg_type: None,
        });
        connections.push(Connection {
            name: format!("c{j}"),
            from: (format!("inst{from}"), out_name),
            to: (format!("inst{to}"), in_name),
        });
    }
    AadlModel {
        processes,
        system: Some(SystemImpl {
            name: "S.impl".into(),
            subcomponents: (0..n)
                .map(|i| (format!("inst{i}"), format!("P{i}")))
                .collect(),
            connections,
        }),
    }
}

/// ac_id → instance-name binding for a generated model (no PM, no
/// devices — pure application channels).
fn model_binding(n: usize) -> AcmBinding {
    AcmBinding {
        subjects: (0..n)
            .map(|i| (AcId::new(100 + i as u32), format!("inst{i}")))
            .collect(),
        pm_ac: None,
        device_owners: BTreeMap::new(),
    }
}

/// Message types each generated endpoint's server dispatches: the
/// from-port type of every connection landing on that endpoint.
fn model_endpoint_types(model: &AadlModel) -> BTreeMap<String, Vec<u32>> {
    let sys = model
        .system
        .as_ref()
        .expect("generated models have a system");
    let mut types: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for conn in &sys.connections {
        let mtype = model
            .process_of_instance(&conn.from.0)
            .and_then(|p| p.port(&conn.from.1))
            .and_then(|p| p.msg_type)
            .expect("generated out-ports are typed");
        types
            .entry(format!("ep_{}_port_{}", conn.to.0, conn.to.1))
            .or_default()
            .push(mtype);
    }
    types
}

/// The comparable skeleton of a lowered model: delivery edges merged per
/// `(sender, receiver)` pair with the ACK bit masked off (the ACM
/// backend grants explicit ACK replies; seL4 replies in-band).
fn skeleton(model: &PolicyModel) -> BTreeMap<(String, String), u64> {
    let mut edges = BTreeMap::new();
    for ch in &model.channels {
        let ObjectId::Process(receiver) = &ch.object else {
            continue;
        };
        if ch.op != Operation::Send {
            continue;
        }
        let bits = type_bits(ch.msg_types) & !1u64;
        if bits != 0 {
            *edges
                .entry((ch.subject.clone(), receiver.clone()))
                .or_insert(0u64) |= bits;
        }
    }
    edges
}

proptest! {
    /// Backend isomorphism: for any valid AADL model, lowering the
    /// compiled ACM and the compiled CapDL spec yields the same subject
    /// set and the same delivery-edge skeleton.
    #[test]
    fn acm_and_capdl_lowerings_are_isomorphic(
        n in 2usize..6,
        conns in arb_conns(),
    ) {
        let model = build_model(n, &conns);
        prop_assert!(model.validate().is_ok(), "generated model must validate");

        let acm = bas_aadl::backends::acm::compile(&model).expect("acm backend");
        let via_acm = lower_acm(&acm, &model_binding(n), &QuotaTable::new(), &bas_acm::DelegationLog::default());

        let assembly = bas_aadl::backends::camkes::compile(&model).expect("camkes backend");
        let (spec, _glue) = bas_camkes::codegen::compile(&assembly).expect("capdl codegen");
        let via_capdl = lower_capdl(
            &spec,
            &CapdlBinding { endpoint_types: model_endpoint_types(&model) },
        );

        let subjects_acm: Vec<&String> = via_acm.subjects.keys().collect();
        let subjects_capdl: Vec<&String> = via_capdl.subjects.keys().collect();
        prop_assert_eq!(subjects_acm, subjects_capdl, "same subjects on both backends");
        prop_assert_eq!(
            skeleton(&via_acm),
            skeleton(&via_capdl),
            "same delivery edges on both backends"
        );
    }

    /// Every AADL connection shows up as a delivery channel on both
    /// lowered models (completeness of the lowering pipeline).
    #[test]
    fn every_connection_is_a_delivery_channel(
        n in 2usize..6,
        conns in arb_conns(),
    ) {
        let model = build_model(n, &conns);
        let acm = bas_aadl::backends::acm::compile(&model).expect("acm backend");
        let via_acm = lower_acm(&acm, &model_binding(n), &QuotaTable::new(), &bas_acm::DelegationLog::default());
        let assembly = bas_aadl::backends::camkes::compile(&model).expect("camkes backend");
        let (spec, _glue) = bas_camkes::codegen::compile(&assembly).expect("capdl codegen");
        let via_capdl = lower_capdl(
            &spec,
            &CapdlBinding { endpoint_types: model_endpoint_types(&model) },
        );

        let sys = model.system.as_ref().expect("generated model has a system");
        for conn in &sys.connections {
            let mtype = model
                .process_of_instance(&conn.from.0)
                .and_then(|p| p.port(&conn.from.1))
                .and_then(|p| p.msg_type)
                .expect("generated ports carry message types");
            prop_assert!(
                via_acm.delivery_channel(&conn.from.0, &conn.to.0, mtype).is_some(),
                "{} -> {} type {} missing from ACM lowering", conn.from.0, conn.to.0, mtype
            );
            prop_assert!(
                via_capdl.delivery_channel(&conn.from.0, &conn.to.0, mtype).is_some(),
                "{} -> {} type {} missing from CapDL lowering", conn.from.0, conn.to.0, mtype
            );
        }
    }

    /// Fig. 3 / E2 agreement, generalized: for a random matrix over a
    /// bound identity set, the lowered IR has a delivery channel exactly
    /// where the kernel's dynamic `check()` allows the transfer.
    #[test]
    fn random_acm_static_matches_dynamic_check(
        rules in prop::collection::vec(
            (100u32..105, 100u32..105, 0u32..8),
            0..16,
        ),
    ) {
        let mut b = AccessControlMatrix::builder();
        for &(s, r, t) in &rules {
            b = b.allow(AcId::new(s), AcId::new(r), [MsgType::new(t)]);
        }
        let acm = b.build();
        let binding = AcmBinding {
            subjects: (100u32..105)
                .map(|id| (AcId::new(id), format!("app{}", id - 99)))
                .collect(),
            pm_ac: None,
            device_owners: BTreeMap::new(),
        };
        let lowered = lower_acm(&acm, &binding, &QuotaTable::new(), &bas_acm::DelegationLog::default());
        for s in 100u32..105 {
            for r in 100u32..105 {
                for t in 0u32..8 {
                    let statically = lowered
                        .delivery_channel(&binding.subjects[&AcId::new(s)],
                                          &binding.subjects[&AcId::new(r)], t)
                        .is_some();
                    let dynamically =
                        acm.check(AcId::new(s), AcId::new(r), MsgType::new(t)).is_allowed();
                    prop_assert_eq!(
                        statically, dynamically,
                        "ac{} -> ac{} type {}: static {} vs dynamic {}",
                        s, r, t, statically, dynamically
                    );
                }
            }
        }
    }
}

/// Fig. 3 itself (the E2 matrix): the static IR reproduces the kernel's
/// per-cell decisions for every app pair and every message type.
#[test]
fn fig3_static_matches_dynamic_check() {
    use bas_acm::fig3::{fig3_matrix, APP1, APP2, APP3};
    let acm = fig3_matrix();
    let binding = AcmBinding {
        subjects: [(APP1, "app1"), (APP2, "app2"), (APP3, "app3")]
            .into_iter()
            .map(|(id, name)| (id, name.to_string()))
            .collect(),
        pm_ac: None,
        device_owners: BTreeMap::new(),
    };
    let lowered = lower_acm(
        &acm,
        &binding,
        &QuotaTable::new(),
        &bas_acm::DelegationLog::default(),
    );
    for &s in &[APP1, APP2, APP3] {
        for &r in &[APP1, APP2, APP3] {
            if s == r {
                continue;
            }
            for t in 0u32..8 {
                let statically = lowered
                    .delivery_channel(&binding.subjects[&s], &binding.subjects[&r], t)
                    .is_some();
                let dynamically = acm.check(s, r, MsgType::new(t)).is_allowed();
                assert_eq!(
                    statically, dynamically,
                    "{s} -> {r} type {t}: static prediction disagrees with check()"
                );
            }
        }
    }
}

/// The scenario matrix (E2's production sibling): same agreement
/// property over the six scenario identities.
#[test]
fn scenario_acm_static_matches_dynamic_check() {
    use bas_core::policy::scenario_acm;
    use bas_core::proto::{names, AC_ALARM, AC_CONTROL, AC_HEATER, AC_SCENARIO, AC_SENSOR, AC_WEB};
    let acm = scenario_acm();
    let ids = [
        (AC_SENSOR, names::SENSOR),
        (AC_CONTROL, names::CONTROL),
        (AC_HEATER, names::HEATER),
        (AC_ALARM, names::ALARM),
        (AC_WEB, names::WEB),
        (AC_SCENARIO, names::SCENARIO),
    ];
    let binding = AcmBinding {
        subjects: ids
            .into_iter()
            .map(|(id, name)| (id, name.to_string()))
            .collect(),
        pm_ac: Some(bas_minix::pm::PM_AC_ID),
        device_owners: BTreeMap::new(),
    };
    let lowered = lower_acm(
        &acm,
        &binding,
        &QuotaTable::new(),
        &bas_acm::DelegationLog::default(),
    );
    for (s, s_name) in ids {
        for (r, r_name) in ids {
            if s == r {
                continue;
            }
            for t in 0u32..8 {
                let statically = lowered.delivery_channel(s_name, r_name, t).is_some();
                let dynamically = acm.check(s, r, MsgType::new(t)).is_allowed();
                assert_eq!(
                    statically, dynamically,
                    "{s_name} -> {r_name} type {t}: static prediction disagrees with check()"
                );
            }
        }
    }
}
