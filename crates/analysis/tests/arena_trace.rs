//! Parent-pointer trace reconstruction vs the `replay_trace` path.
//!
//! The explorer stores one `(parent, action)` arena node per state and
//! rebuilds witness traces on demand; these tests pin that
//! reconstruction to the independent [`replay_trace`] semantics: every
//! witness the arena produces must replay feasibly from the initial
//! state, reach the witnessed fact exactly at its final state (a BFS
//! first hit cannot pass through an earlier hit — its prefix would be a
//! shorter witness), and agree with the minimized counterexample path
//! for every compromised cell across all three platforms.

use bas_analysis::mc::{check_matrix, classify, explore, ExploreOpts, ScenarioModel};
use bas_attack::{AttackId, AttackerModel};
use bas_core::platform::linux::UidScheme;
use bas_core::scenario::Platform;
use bas_core::semantics::replay_trace;
use proptest::prelude::*;

const PLATFORMS: [Platform; 3] = [Platform::Linux, Platform::Minix, Platform::Sel4];
const ATTACKERS: [AttackerModel; 2] = [AttackerModel::ArbitraryCode, AttackerModel::Root];

fn opts(workers: usize) -> ExploreOpts {
    ExploreOpts {
        use_por: true,
        state_budget: 2_000_000,
        workers,
    }
}

/// Checks every reached fact bit of one exploration against the replay
/// path. Returns the number of witnesses checked.
fn check_witnesses(model: &ScenarioModel, workers: usize) -> usize {
    let bounds = model.bounds;
    let ex = explore(model, &opts(workers), |s| classify(&bounds, s));
    let mut checked = 0;
    for bit in 0..32u32 {
        let Some(witness) = ex.witness(1 << bit) else {
            continue;
        };
        let states = replay_trace(model, witness).unwrap_or_else(|| {
            panic!(
                "{:?}/{}/{} bit {bit}: arena trace infeasible",
                model.platform, model.attacker, model.attack
            )
        });
        assert_eq!(states.len(), witness.len() + 1);
        let hits: Vec<bool> = states
            .iter()
            .map(|s| classify(&bounds, s) & (1 << bit) != 0)
            .collect();
        assert!(
            hits.last().copied().unwrap_or(false),
            "{:?}/{}/{} bit {bit}: reconstructed trace misses its fact",
            model.platform,
            model.attacker,
            model.attack
        );
        assert!(
            hits.iter().rev().skip(1).all(|h| !h),
            "{:?}/{}/{} bit {bit}: a prefix already hits — not a first hit",
            model.platform,
            model.attacker,
            model.attack
        );
        checked += 1;
    }
    checked
}

/// Every counterexample of the full shared-account matrix replays
/// feasibly and witnesses its property — on all three platforms.
#[test]
fn matrix_counterexamples_replay_on_all_platforms() {
    let mut witnessed_platforms = std::collections::BTreeSet::new();
    for r in check_matrix(UidScheme::SharedAccount, &opts(1)) {
        let Some(cx) = &r.counterexample else {
            continue;
        };
        let model = ScenarioModel::new(r.platform, r.attacker, r.attack, UidScheme::SharedAccount);
        let bounds = model.bounds;
        let states = replay_trace(&model, &cx.trace).expect("minimized trace stays feasible");
        assert!(
            states
                .iter()
                .any(|s| classify(&bounds, s) & cx.property.bit() != 0),
            "{:?}/{}/{}: minimized trace lost its witness",
            r.platform,
            r.attacker,
            r.attack
        );
        witnessed_platforms.insert(format!("{:?}", r.platform));
    }
    assert_eq!(witnessed_platforms.len(), 3, "{witnessed_platforms:?}");
}

proptest! {
    /// Random cells, random worker counts: every first-hit witness the
    /// arena reconstructs is exactly what the replay path accepts.
    #[test]
    fn arena_witnesses_replay(
        p in 0usize..3,
        a in 0usize..9,
        m in 0usize..2,
        hardened in any::<bool>(),
        workers in 1usize..4,
    ) {
        let scheme = if hardened {
            UidScheme::PerProcessHardened
        } else {
            UidScheme::SharedAccount
        };
        let model = ScenarioModel::new(PLATFORMS[p], ATTACKERS[m], AttackId::ALL[a], scheme);
        check_witnesses(&model, workers);
    }
}

/// The seeded Linux DAC cells must actually exercise the reconstruction
/// path (at least delivery + compromise bits each).
#[test]
fn linux_dac_cells_reconstruct_nontrivial_witnesses() {
    for attack in [
        AttackId::KillCritical,
        AttackId::SpoofSensorData,
        AttackId::DirectDeviceWrite,
    ] {
        let model = ScenarioModel::new(
            Platform::Linux,
            AttackerModel::ArbitraryCode,
            attack,
            UidScheme::SharedAccount,
        );
        assert!(
            check_witnesses(&model, 1) >= 2,
            "{attack}: expected delivery + violation witnesses"
        );
    }
}
