//! Determinism of the layer-parallel explorer.
//!
//! The parallel BFS races successor discovery across worker threads but
//! commits each layer in sequential exploration order, so its results
//! must be *byte-identical* to the sequential explorer: same verdicts,
//! same state/transition/depth counters, same reachable-fact sets, and
//! the same minimized counterexamples — on every cell of the 54-cell E6
//! matrix, at 2 and at 4 workers. The sweep-level parallelism
//! (`check_cells`) must likewise not perturb reports.

use bas_analysis::mc::{check_cells, matrix_cells, ExploreOpts};
use bas_core::platform::linux::UidScheme;
use bas_core::scenario::Platform;

fn opts(workers: usize) -> ExploreOpts {
    ExploreOpts {
        use_por: true,
        state_budget: 2_000_000,
        workers,
    }
}

const ALL: [Platform; 3] = [Platform::Linux, Platform::Minix, Platform::Sel4];

#[test]
fn parallel_explorer_matches_sequential_on_all_54_cells() {
    let cells = matrix_cells(&ALL);
    assert_eq!(cells.len(), 54);
    let seq = check_cells(&cells, UidScheme::SharedAccount, &opts(1), 1);
    for workers in [2, 4] {
        let par = check_cells(&cells, UidScheme::SharedAccount, &opts(workers), 1);
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            let cell = format!("{:?}/{}/{} x{workers}", s.platform, s.attacker, s.attack);
            assert_eq!(p.mc, s.mc, "{cell}: verdict diverged");
            assert_eq!(p.stats, s.stats, "{cell}: exploration counters diverged");
            assert_eq!(p.reached, s.reached, "{cell}: reachable facts diverged");
            assert_eq!(
                p.counterexample.as_ref().map(|c| (c.property, &c.trace)),
                s.counterexample.as_ref().map(|c| (c.property, &c.trace)),
                "{cell}: minimized counterexample diverged"
            );
        }
    }
}

/// POR off must be deterministic too (the unreduced space is the larger
/// stress of the dedup race).
#[test]
fn parallel_explorer_matches_sequential_without_por() {
    // One representative cell per platform keeps the unreduced sweep
    // affordable in debug builds.
    let cells: Vec<_> = matrix_cells(&ALL)
        .into_iter()
        .filter(|(p, m, a)| {
            *m == bas_attack::AttackerModel::ArbitraryCode
                && matches!(
                    (p, a),
                    (Platform::Linux, bas_attack::AttackId::SpoofActuatorCommands)
                        | (Platform::Minix, bas_attack::AttackId::FloodLegitChannel)
                        | (Platform::Sel4, bas_attack::AttackId::ReplaySetpoint)
                )
        })
        .collect();
    assert_eq!(cells.len(), 3);
    let mk = |workers: usize| ExploreOpts {
        use_por: false,
        state_budget: 2_000_000,
        workers,
    };
    let seq = check_cells(&cells, UidScheme::SharedAccount, &mk(1), 1);
    for workers in [2, 4] {
        let par = check_cells(&cells, UidScheme::SharedAccount, &mk(workers), 1);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.mc, s.mc);
            assert_eq!(p.stats, s.stats);
            assert_eq!(p.reached, s.reached);
            assert_eq!(
                p.counterexample.as_ref().map(|c| (c.property, &c.trace)),
                s.counterexample.as_ref().map(|c| (c.property, &c.trace)),
            );
        }
    }
}

/// Sweep-level parallelism preserves report order and content.
#[test]
fn parallel_cell_sweep_preserves_reports() {
    let cells = matrix_cells(&[Platform::Minix]);
    let seq = check_cells(&cells, UidScheme::SharedAccount, &opts(1), 1);
    let par = check_cells(&cells, UidScheme::SharedAccount, &opts(1), 4);
    assert_eq!(par.len(), seq.len());
    for (p, s) in par.iter().zip(&seq) {
        assert_eq!(
            (p.platform, p.attacker, p.attack),
            (s.platform, s.attacker, s.attack)
        );
        assert_eq!(p.mc, s.mc);
        assert_eq!(p.stats, s.stats);
        assert_eq!(p.reached, s.reached);
    }
}
