//! Property-based tests for the race detector's foundations.
//!
//! Random event streams exercise the laws the unit tests spot-check:
//! vector-clock join is a semilattice, happens-before is a strict
//! partial order consistent with program order and the recorded IPC
//! edges, and the detector's verdict — the multiset of race *keys* —
//! is invariant under trace-equivalent reorderings (any linearization
//! preserving per-subject order and edge direction).

use std::collections::BTreeMap;

use bas_analysis::races::{detect, ClockedTrace, VClock};
use bas_sim::caps::{CapEvent, CapOp, CapTrace};
use bas_sim::time::SimTime;
use proptest::prelude::*;

const SUBJECTS: [&str; 4] = ["sensor", "ctrl", "sched", "admin"];
const CAPS: [&str; 2] = ["cap-a", "cap-b"];
const OPS: [CapOp; 6] = [
    CapOp::Grant,
    CapOp::Attenuate,
    CapOp::Revoke,
    CapOp::Check,
    CapOp::Use,
    CapOp::Recv,
];

/// A clock built from a bounded number of ticks over the subject pool.
fn arb_clock() -> impl Strategy<Value = VClock> {
    prop::collection::vec(0usize..SUBJECTS.len(), 0..12).prop_map(|ticks| {
        let mut c = VClock::new();
        for t in ticks {
            c.tick(SUBJECTS[t]);
        }
        c
    })
}

/// Raw trace material: per-event `(subject, op, cap, ok)` picks plus
/// edge picks resolved against the event list afterwards.
#[allow(clippy::type_complexity)]
fn arb_trace() -> impl Strategy<Value = CapTrace> {
    let events = prop::collection::vec(
        (
            0usize..SUBJECTS.len(),
            0usize..OPS.len(),
            0usize..CAPS.len(),
            any::<bool>(),
        ),
        2..24,
    );
    let edges = prop::collection::vec((any::<u64>(), any::<u64>()), 0..8);
    (events, edges).prop_map(|(raw, picks)| {
        let events: Vec<CapEvent> = raw
            .iter()
            .enumerate()
            .map(|(i, &(s, o, c, ok))| CapEvent {
                seq: i as u64,
                at: SimTime::ZERO,
                subject: SUBJECTS[s].into(),
                op: OPS[o],
                cap: CAPS[c].into(),
                object: "obj".into(),
                ok,
            })
            .collect();
        let n = events.len() as u64;
        // Resolve picks into forward edges between distinct subjects —
        // the only shape the kernels record (send side first).
        let mut edges = Vec::new();
        for (a, b) in picks {
            let (mut f, mut t) = (a % n, b % n);
            if f == t {
                continue;
            }
            if f > t {
                std::mem::swap(&mut f, &mut t);
            }
            if events[f as usize].subject != events[t as usize].subject {
                edges.push((f, t));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        CapTrace { events, edges }
    })
}

/// The precedence constraints a valid linearization must respect:
/// program order within each subject plus every recorded edge.
fn must_precede(trace: &CapTrace) -> Vec<(usize, usize)> {
    let ev = &trace.events;
    let mut prec = Vec::new();
    for i in 0..ev.len() {
        for j in (i + 1)..ev.len() {
            if ev[i].subject == ev[j].subject {
                prec.push((i, j));
            }
        }
    }
    for &(f, t) in &trace.edges {
        prec.push((f as usize, t as usize));
    }
    prec
}

/// A random linear extension of the trace's precedence order, driven by
/// `picks` (each step takes `picks[k] % ready.len()`): the reordered
/// trace with seqs renumbered and edges remapped.
fn reorder(trace: &CapTrace, picks: &[usize]) -> CapTrace {
    let n = trace.events.len();
    let prec = must_precede(trace);
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &prec {
        indegree[b] += 1;
        succs[a].push(b);
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut k = 0usize;
    while !ready.is_empty() {
        let pick = picks.get(k).copied().unwrap_or(0) % ready.len();
        k += 1;
        let i = ready.remove(pick);
        order.push(i);
        for &s in &succs[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(s);
            }
        }
    }
    assert_eq!(order.len(), n, "precedence order is acyclic");
    // old index -> new seq
    let mut new_seq = vec![0u64; n];
    for (pos, &old) in order.iter().enumerate() {
        new_seq[old] = pos as u64;
    }
    let events = order
        .iter()
        .map(|&old| CapEvent {
            seq: new_seq[old],
            ..trace.events[old].clone()
        })
        .collect();
    let mut edges: Vec<(u64, u64)> = trace
        .edges
        .iter()
        .map(|&(f, t)| (new_seq[f as usize], new_seq[t as usize]))
        .collect();
    edges.sort_unstable();
    CapTrace { events, edges }
}

/// The reorder-invariant verdict: how many times each race key appears.
fn key_multiset(trace: &CapTrace) -> BTreeMap<(String, String, String, String), usize> {
    let mut m = BTreeMap::new();
    for r in detect(trace) {
        let (kind, cap, subject, actor) = r.key();
        *m.entry((kind.code().to_string(), cap, subject, actor))
            .or_insert(0) += 1;
    }
    m
}

proptest! {
    /// `join` is a semilattice operation: commutative, associative,
    /// idempotent — and its result dominates both inputs.
    #[test]
    fn join_is_a_semilattice(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba, "commutative");

        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");

        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(&aa, &a, "idempotent");

        prop_assert!(a.leq(&ab) && b.leq(&ab), "join dominates both");
    }

    /// `leq` is a partial order; `concurrent` is exactly its
    /// incomparability relation.
    #[test]
    fn leq_is_a_partial_order(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        prop_assert!(a.leq(&a), "reflexive");
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c), "transitive");
        }
        prop_assert_eq!(
            a.concurrent(&b),
            !a.leq(&b) && !b.leq(&a),
            "concurrency = incomparability"
        );
    }

    /// Happens-before over assigned clocks is a strict partial order
    /// containing program order and the recorded edges.
    #[test]
    fn hb_is_a_strict_partial_order(trace in arb_trace()) {
        let ct = ClockedTrace::assign(&trace);
        let n = trace.events.len();
        for a in 0..n {
            prop_assert!(!ct.hb(a, a), "irreflexive");
            for b in 0..n {
                if ct.hb(a, b) {
                    prop_assert!(!ct.hb(b, a), "asymmetric ({a}, {b})");
                }
                for c in 0..n {
                    if ct.hb(a, b) && ct.hb(b, c) {
                        prop_assert!(ct.hb(a, c), "transitive ({a}, {b}, {c})");
                    }
                }
            }
        }
        // Program order and edges are contained in hb.
        for a in 0..n {
            for b in (a + 1)..n {
                if trace.events[a].subject == trace.events[b].subject {
                    prop_assert!(ct.hb(a, b), "program order ({a}, {b})");
                }
            }
        }
        for &(f, t) in &trace.edges {
            prop_assert!(ct.hb(f as usize, t as usize), "edge ({f}, {t})");
        }
    }

    /// The detector's verdict is a function of the happens-before
    /// structure alone: any trace-equivalent reordering (same per-subject
    /// order, same edges) yields the same multiset of race keys.
    #[test]
    fn detector_is_reorder_invariant(
        trace in arb_trace(),
        picks in prop::collection::vec(any::<usize>(), 0..32),
    ) {
        let reordered = reorder(&trace, &picks);
        prop_assert_eq!(
            key_multiset(&trace),
            key_multiset(&reordered),
            "trace-equivalent reorderings agree"
        );
    }
}
