//! The model checker vs the paper table vs the taint analyzer, over the
//! whole 54-cell matrix — plus the structural invariants of exploration:
//! POR-verdict equivalence, invariant unreachability, minimization.

use bas_analysis::mc::verdict::props;
use bas_analysis::mc::{
    check_cell, check_matrix, classify, minimize_trace, ExploreOpts, McProperty, ScenarioModel,
};
use bas_attack::expectations::Expectation;
use bas_attack::{AttackId, AttackerModel};
use bas_core::platform::linux::UidScheme;
use bas_core::scenario::Platform;
use bas_core::semantics::replay_trace;

fn opts() -> ExploreOpts {
    ExploreOpts {
        use_por: true,
        state_budget: 2_000_000,
        workers: 1,
    }
}

/// Tentpole acceptance: the checker proves the same 54-cell matrix the
/// dynamic harness measures and the static analyzer predicts — same
/// verdict in every cell, exhaustively at the bounded horizon.
#[test]
fn matrix_agrees_three_ways_in_all_54_cells() {
    let reports = check_matrix(UidScheme::SharedAccount, &opts());
    assert_eq!(reports.len(), 54);
    for r in &reports {
        assert!(
            !r.stats.truncated,
            "{:?}/{}/{}: exploration truncated — no proof",
            r.platform, r.attacker, r.attack
        );
        assert!(
            r.agrees(),
            "{:?}/{}/{}: mc={:?} paper={:?} taint={:?}",
            r.platform,
            r.attacker,
            r.attack,
            r.mc,
            r.paper,
            r.taint
        );
        assert!(
            !r.invariant_violated(),
            "{:?}/{}/{}: gate mismatch or quota breach reachable",
            r.platform,
            r.attacker,
            r.attack
        );
    }
    // The paper's headline split must be visible in the verdicts.
    let compromised = |p: Platform| {
        reports
            .iter()
            .filter(|r| r.platform == p && r.mc == Expectation::Compromised)
            .count()
    };
    assert!(compromised(Platform::Linux) > compromised(Platform::Minix));
    assert_eq!(compromised(Platform::Minix), compromised(Platform::Sel4));
}

/// POR soundness, validated empirically: reduced and unreduced
/// exploration at equal depth reach identical verdicts and fact sets,
/// with strictly fewer states under reduction.
#[test]
fn por_is_sound_and_effective_across_platforms() {
    let mut total_full = 0usize;
    let mut total_reduced = 0usize;
    for platform in [Platform::Linux, Platform::Minix, Platform::Sel4] {
        for attack in [
            AttackId::SpoofSensorData,
            AttackId::KillCritical,
            AttackId::ReplaySetpoint,
        ] {
            let model = ScenarioModel::new(
                platform,
                AttackerModel::ArbitraryCode,
                attack,
                UidScheme::SharedAccount,
            );
            let reduced = check_cell(&model, &opts());
            let full = check_cell(
                &model,
                &ExploreOpts {
                    use_por: false,
                    state_budget: 2_000_000,
                    workers: 1,
                },
            );
            assert!(!reduced.stats.truncated && !full.stats.truncated);
            assert_eq!(
                reduced.mc, full.mc,
                "{platform:?}/{attack}: POR changed the verdict"
            );
            assert_eq!(
                reduced.reached, full.reached,
                "{platform:?}/{attack}: POR changed reachable facts"
            );
            assert!(reduced.stats.states <= full.stats.states);
            total_full += full.stats.states;
            total_reduced += reduced.stats.states;
        }
    }
    assert!(
        total_reduced < total_full,
        "POR ineffective overall: {total_reduced} !< {total_full}"
    );
}

/// Every emitted counterexample is feasible, 1-minimal, and actually
/// witnesses its property.
#[test]
fn counterexamples_are_minimal_feasible_witnesses() {
    let mut seen_any = false;
    for r in check_matrix(UidScheme::SharedAccount, &opts()) {
        let Some(cx) = &r.counterexample else {
            assert_ne!(
                r.mc,
                Expectation::Compromised,
                "{:?}/{}/{}: compromised without witness",
                r.platform,
                r.attacker,
                r.attack
            );
            continue;
        };
        seen_any = true;
        let model = ScenarioModel::new(r.platform, r.attacker, r.attack, UidScheme::SharedAccount);
        let bounds = model.bounds;
        let hits = |t: &[_]| {
            replay_trace(&model, t).is_some_and(|states| {
                states
                    .iter()
                    .any(|s| classify(&bounds, s) & cx.property.bit() != 0)
            })
        };
        assert!(
            hits(&cx.trace),
            "{:?}/{}/{}: counterexample does not witness {}",
            r.platform,
            r.attacker,
            r.attack,
            cx.property
        );
        // 1-minimality: removing any single action breaks the witness.
        for i in 0..cx.trace.len() {
            let mut shorter = cx.trace.clone();
            shorter.remove(i);
            assert!(
                !hits(&shorter),
                "{:?}/{}/{}: action {i} of the witness is removable",
                r.platform,
                r.attacker,
                r.attack
            );
        }
        // Idempotence of the minimizer.
        let again = minimize_trace(&model, &cx.trace, |s| {
            classify(&bounds, s) & cx.property.bit() != 0
        });
        assert_eq!(again.len(), cx.trace.len());
    }
    assert!(seen_any, "the shared-account matrix must yield witnesses");
}

/// The hardened Linux scheme flips the DAC cells the paper's §V
/// hardening discussion predicts — and the checker proves the flip.
#[test]
fn hardened_linux_cells_flip_to_minix_shape() {
    let o = opts();
    for (attack, shared, hardened) in [
        (
            AttackId::SpoofSensorData,
            Expectation::Compromised,
            Expectation::Stopped,
        ),
        (
            AttackId::KillCritical,
            Expectation::Compromised,
            Expectation::Stopped,
        ),
        (
            AttackId::DirectDeviceWrite,
            Expectation::Compromised,
            Expectation::Stopped,
        ),
        (
            AttackId::ReplaySetpoint,
            Expectation::Compromised,
            Expectation::Compromised,
        ),
    ] {
        for (scheme, want) in [
            (UidScheme::SharedAccount, shared),
            (UidScheme::PerProcessHardened, hardened),
        ] {
            let model = ScenarioModel::new(
                Platform::Linux,
                AttackerModel::ArbitraryCode,
                attack,
                scheme,
            );
            let r = check_cell(&model, &o);
            assert!(!r.stats.truncated);
            assert_eq!(r.mc, want, "{attack} under {scheme:?}");
            assert!(!r.invariant_violated(), "{attack} under {scheme:?}");
        }
    }
    // A2 root bypasses the hardened DAC — the checker must find the
    // kill interleaving the hardening cannot stop.
    let model = ScenarioModel::new(
        Platform::Linux,
        AttackerModel::Root,
        AttackId::KillCritical,
        UidScheme::PerProcessHardened,
    );
    let r = check_cell(&model, &o);
    assert_eq!(r.mc, Expectation::Compromised);
    assert_eq!(
        r.counterexample.map(|c| c.property),
        Some(McProperty::CriticalKilled)
    );
}

/// The bounded-response property needs real interleaving search: the
/// forged command only matters if it lands *between* the controller's
/// re-assertion and the driver's read — the witness must win that race.
#[test]
fn bounded_response_witness_wins_an_intra_round_race() {
    let model = ScenarioModel::new(
        Platform::Linux,
        AttackerModel::ArbitraryCode,
        AttackId::SpoofActuatorCommands,
        UidScheme::SharedAccount,
    );
    let r = check_cell(&model, &opts());
    assert_eq!(r.mc, Expectation::Compromised);
    let cx = r.counterexample.expect("witness");
    assert_eq!(cx.property, McProperty::BoundedResponse);
    use bas_analysis::mc::McAction;
    let attacker_moves = cx
        .trace
        .iter()
        .filter(|a| matches!(a, McAction::Attack(_)))
        .count();
    assert!(
        attacker_moves >= 1,
        "healthy scheduling alone must not violate bounded response"
    );
    // The forge must be interleaved strictly inside the process
    // schedule (after some step, before another) — a head- or
    // tail-positioned attack cannot overwrite the controller's
    // re-asserted command before the driver reads it.
    let first_attack = cx
        .trace
        .iter()
        .position(|a| matches!(a, McAction::Attack(_)))
        .expect("compromise trace contains an attack action");
    assert!(
        cx.trace[..first_attack]
            .iter()
            .any(|a| matches!(a, McAction::Step(_)))
            && cx.trace[first_attack..]
                .iter()
                .any(|a| matches!(a, McAction::Step(_))),
        "witness does not interleave the attack inside the schedule: {:?}",
        cx.trace
    );
    assert_eq!(r.reached & props::GATE_MISMATCH, 0);
}
