//! The seeded churn catalog against the live kernels: every scenario's
//! detector outcome must match its recorded expectation exactly — the
//! positive scenarios prove detection, the negative ones prove the
//! zero-false-positive contract, and the storm scenarios prove witness
//! minimization lands on single-event causes.

use bas_analysis::races::{
    churn_scenarios, detect, minimize, run_churn_plan, run_scenario, RaceKind,
};
use bas_core::scenario::Platform;
use bas_faults::plan::FaultPlan;
use bas_sim::caps::CapOp;
use bas_sim::time::SimDuration;

#[test]
fn catalog_expectations_hold_on_every_platform() {
    for sc in churn_scenarios() {
        let trace = run_scenario(&sc);
        let races = detect(&trace);
        let mut kinds: Vec<RaceKind> = races.iter().map(|r| r.kind).collect();
        kinds.sort();
        kinds.dedup();
        let mut expect = sc.expect.clone();
        expect.sort();
        assert_eq!(kinds, expect, "{}: detected race kinds", sc.name);
        // Every reported race must be anchored to a churned capability:
        // its racing write really exists in the trace and is effective.
        for r in &races {
            let w = trace
                .events
                .iter()
                .find(|e| e.seq == r.write_seq)
                .unwrap_or_else(|| panic!("{}: write {} missing", sc.name, r.write_seq));
            assert!(
                w.op.is_write() && w.ok,
                "{}: racing write effective",
                sc.name
            );
            assert_eq!(w.cap, r.cap, "{}: write anchors the raced cap", sc.name);
        }
    }
}

#[test]
fn churn_free_runs_record_no_writes_and_no_races() {
    // The structural zero-FP argument, checked end-to-end: without a
    // churn schedule there are no write events, so the detector cannot
    // fire no matter how much IPC the scenario does.
    for platform in [Platform::Minix, Platform::Sel4, Platform::Linux] {
        let plan = FaultPlan::new("baseline", vec![]);
        let trace = run_churn_plan(platform, &plan, SimDuration::from_mins(3));
        assert!(!trace.is_empty(), "{platform}: tracing was on");
        assert!(
            trace.events.iter().all(|e| !e.op.is_write()),
            "{platform}: no churn means no policy writes"
        );
        assert!(
            trace.events.iter().all(|e| e.op != CapOp::Use || e.ok),
            "{platform}: no stale uses without churn"
        );
        assert!(detect(&trace).is_empty(), "{platform}: race-free");
    }
}

#[test]
fn storm_witnesses_minimize_to_single_event_causes() {
    for sc in churn_scenarios()
        .iter()
        .filter(|s| s.name.ends_with("churn-storm"))
    {
        let races = detect(&run_scenario(sc));
        assert!(!races.is_empty(), "{}: storm must race", sc.name);
        for r in &races {
            let w = minimize(sc, r);
            assert!(w.replay_confirmed, "{}: witness replays", sc.name);
            assert!(w.dropped > 0, "{}: storm schedules carry slack", sc.name);
            match r.kind {
                // The TOCTOU needs exactly the armed revoke.
                RaceKind::Toctou => {
                    assert_eq!(w.schedule.len(), 1, "{}: 1-minimal TOCTOU witness", sc.name)
                }
                // A write-write conflict needs both writers.
                RaceKind::WriteWrite => assert_eq!(
                    w.schedule.len(),
                    2,
                    "{}: 1-minimal write-write witness",
                    sc.name
                ),
                RaceKind::UseAfterRevoke => {
                    panic!("{}: storm plants no ordered revokes", sc.name)
                }
            }
        }
    }
}

#[test]
fn traces_and_reports_are_deterministic() {
    let sc = &churn_scenarios()[3]; // linux/armed-revoke-toctou
    let a = run_scenario(sc);
    let b = run_scenario(sc);
    assert_eq!(a, b, "same schedule, same trace");
    assert_eq!(detect(&a), detect(&b));
}
