//! Counterexample → dynamic engine replay, across all three platforms.
//!
//! For every matrix cell the checker marks compromised, the minimized
//! abstract witness must correspond to a real dynamic compromise: the
//! attack harness run for that cell manifests the same violated
//! property (dead critical process / physical safety violation) through
//! the actual kernel stacks. Cells the checker proves `Stopped` must
//! conversely stay uncompromised dynamically.

use bas_analysis::mc::{check_matrix, replay_counterexample, ExploreOpts};
use bas_attack::expectations::Expectation;
use bas_attack::{run_attack, AttackRunConfig};
use bas_core::platform::linux::UidScheme;
use bas_core::scenario::Platform;

fn opts() -> ExploreOpts {
    ExploreOpts {
        use_por: true,
        state_budget: 2_000_000,
        workers: 1,
    }
}

/// Every minimized counterexample reproduces its violation dynamically.
#[test]
fn every_counterexample_replays_into_a_dynamic_compromise() {
    let scheme = UidScheme::SharedAccount;
    let mut replayed = [0usize; 3];
    for report in check_matrix(scheme, &opts()) {
        if report.counterexample.is_none() {
            continue;
        }
        let result = replay_counterexample(&report, scheme).expect("witness present");
        assert!(
            result.confirmed,
            "{:?}/{}/{}: abstract {} not confirmed dynamically ({})",
            report.platform, report.attacker, report.attack, result.property, result.evidence
        );
        assert_eq!(result.outcome.platform, report.platform);
        assert_eq!(result.outcome.attack, report.attack);
        replayed[match report.platform {
            Platform::Linux => 0,
            Platform::Minix => 1,
            Platform::Sel4 => 2,
        }] += 1;
    }
    // Replay must have exercised the engine on all three platforms:
    // Linux DAC compromises plus the replay-setpoint cells everywhere.
    assert!(replayed[0] >= 5, "linux replays: {replayed:?}");
    assert!(replayed[1] >= 1, "minix replays: {replayed:?}");
    assert!(replayed[2] >= 1, "sel4 replays: {replayed:?}");
}

/// Soundness in the other direction: a cell the checker proves Stopped
/// must not compromise dynamically (spot-checked on the cells the paper
/// emphasizes — the microkernel stops what monolithic DAC admits).
#[test]
fn stopped_verdicts_hold_dynamically() {
    let scheme = UidScheme::SharedAccount;
    let config = AttackRunConfig::default();
    for report in check_matrix(scheme, &opts()) {
        if report.mc == Expectation::Compromised || report.platform == Platform::Linux {
            continue;
        }
        let outcome = run_attack(report.platform, report.attacker, report.attack, &config);
        assert!(
            !outcome.compromised(),
            "{:?}/{}/{}: checker proved {:?} but dynamic run compromised",
            report.platform,
            report.attacker,
            report.attack,
            report.mc
        );
    }
}
