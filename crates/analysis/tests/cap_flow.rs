//! Property-based tests for the capability-flow fixpoint.
//!
//! Random derivation forests exercise the lattice laws the hand-written
//! unit tests can only spot-check: kernel-clamped derivation (`derive`)
//! is attenuation-monotone by construction; unclamped minting
//! (`derive_raw`) is flagged *exactly* when the stored rights exceed the
//! source's effective rights; and recursively revoking the root kills
//! the entire derived closure with nothing left usable or leaking.

use bas_analysis::flow::{closure, op, CapGraph, CapId, DerivationKind, FlowKind, Perms};
use bas_analysis::ObjectId;
use bas_sim::device::DeviceId;
use proptest::prelude::*;

/// Raw tree material: one `(parent pick, ops, types)` tuple per node.
/// The pick is reduced modulo the node index so the parent always
/// precedes the child; node 0 is the root.
fn arb_tree() -> impl Strategy<Value = Vec<(usize, u8, u64)>> {
    prop::collection::vec((0usize..64, 0u8..128, any::<u64>()), 2..14)
}

fn perms(ops: u8, types: u64) -> Perms {
    Perms::sending(ops | op::SEND, types)
}

/// Builds a forest from the raw material using `build` for every
/// non-root edge; returns the graph and each node's parent.
fn build(
    raw: &[(usize, u8, u64)],
    mut edge: impl FnMut(&mut CapGraph, CapId, &str, Perms) -> CapId,
) -> (CapGraph, Vec<Option<CapId>>) {
    let mut g = CapGraph::default();
    let mut parents = Vec::with_capacity(raw.len());
    let mut ids = Vec::with_capacity(raw.len());
    for (i, &(pick, ops, types)) in raw.iter().enumerate() {
        let holder = format!("s{}", i % 5);
        if i == 0 {
            ids.push(g.root(&holder, ObjectId::Device(DeviceId::FAN), perms(ops, types)));
            parents.push(None);
        } else {
            let parent = ids[pick % i];
            ids.push(edge(&mut g, parent, &holder, perms(ops, types)));
            parents.push(Some(parent));
        }
    }
    (g, parents)
}

proptest! {
    /// Kernel-clamped derivation can never amplify: the closure finds
    /// no attenuation violation, and every child's effective rights are
    /// below its parent's.
    #[test]
    fn clamped_derivation_is_attenuation_monotone(raw in arb_tree()) {
        let (g, parents) = build(&raw, |g, p, h, r| {
            g.derive(p, h, DerivationKind::Attenuate, r)
        });
        let cl = closure(&g);
        prop_assert!(
            cl.findings.iter().all(|f| f.kind != FlowKind::AttenuationViolation),
            "derive() clamps, so no mint can amplify"
        );
        for (i, parent) in parents.iter().enumerate() {
            if let Some(p) = parent {
                prop_assert!(
                    cl.effective[i].le(cl.effective[p.0 as usize]),
                    "cap#{i} effective rights exceed its parent's"
                );
            }
        }
    }

    /// Unclamped minting is flagged exactly when the stored rights are
    /// not below the source's effective rights — no false positives, no
    /// false negatives.
    #[test]
    fn raw_minting_is_flagged_iff_amplified(raw in arb_tree()) {
        let (g, parents) = build(&raw, |g, p, h, r| {
            g.derive_raw(p, h, DerivationKind::Grant, r)
        });
        let cl = closure(&g);
        let flagged: Vec<usize> = cl
            .findings
            .iter()
            .filter(|f| f.kind == FlowKind::AttenuationViolation)
            .map(|f| f.cap.0 as usize)
            .collect();
        let expected: Vec<usize> = parents
            .iter()
            .enumerate()
            .filter_map(|(i, parent)| {
                let p = (*parent)?;
                let amplified = !g.node(CapId(i as u32))
                    .rights
                    .le(cl.effective[p.0 as usize]);
                amplified.then_some(i)
            })
            .collect();
        prop_assert_eq!(flagged, expected);
    }

    /// Recursively revoking the root empties the whole derived closure:
    /// nothing stays live, nothing reads locally usable, and the
    /// fixpoint reports no leak.
    #[test]
    fn revoking_the_root_empties_the_closure(raw in arb_tree()) {
        let (mut g, _) = build(&raw, |g, p, h, r| {
            g.derive(p, h, DerivationKind::Grant, r)
        });
        g.revoke_recursive(CapId(0));
        let cl = closure(&g);
        prop_assert!(cl.live.iter().all(|&l| !l), "no capability survives");
        prop_assert!(
            (0..g.len()).all(|i| !g.stored_usable(CapId(i as u32))),
            "every slot was swept"
        );
        prop_assert!(cl.findings.is_empty(), "transitive revocation leaks nothing");
    }

    /// Node-local root revocation leaks every still-usable descendant —
    /// one revocation-leak finding per derived node.
    #[test]
    fn local_root_revocation_leaks_every_descendant(raw in arb_tree()) {
        let (mut g, _) = build(&raw, |g, p, h, r| {
            g.derive(p, h, DerivationKind::Grant, r)
        });
        g.revoke(CapId(0));
        let cl = closure(&g);
        let leaks = cl
            .findings
            .iter()
            .filter(|f| f.kind == FlowKind::RevocationLeak)
            .count();
        prop_assert_eq!(leaks, g.len() - 1, "every derived slot still reads usable");
        prop_assert!(cl.live.iter().all(|&l| !l), "the sound view is dead");
    }
}
